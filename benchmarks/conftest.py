"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints
the series in ASCII, and persists it under ``benchmarks/results/`` so
the artifact survives output capture.  Timing uses pytest-benchmark's
pedantic mode with a single round: these are experiment regenerations,
not micro-benchmarks (micro-benchmarks of the hot kernels live in
``test_bench_micro.py``).
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a report block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def publish_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result to benchmarks/results/BENCH_<name>.json.

    The ASCII reports from :func:`publish` are for humans; this is the
    companion artifact for tooling (CI comparisons, regression diffs).
    Payloads must be JSON-serialisable as written — no coercion.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
    return path
