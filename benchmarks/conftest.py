"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints
the series in ASCII, and persists it under ``benchmarks/results/`` so
the artifact survives output capture.  Timing uses pytest-benchmark's
pedantic mode with a single round: these are experiment regenerations,
not micro-benchmarks (micro-benchmarks of the hot kernels live in
``test_bench_micro.py``).
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repository root — machine-readable benchmark artifacts are mirrored
#: here (``BENCH_<name>.json``) so CI regression gates and reviewers
#: find them without digging into the results directory.
REPO_ROOT = pathlib.Path(__file__).parent.parent


def publish(name: str, text: str) -> None:
    """Print a report block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def publish_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result to benchmarks/results/BENCH_<name>.json.

    The ASCII reports from :func:`publish` are for humans; this is the
    companion artifact for tooling (CI comparisons, regression diffs).
    Payloads must be JSON-serialisable as written — no coercion.  The
    artifact is written twice: under ``benchmarks/results/`` alongside
    the ASCII report, and mirrored at the repository root where the CI
    gates pick it up.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(text)
    root_path = REPO_ROOT / f"BENCH_{name}.json"
    root_path.write_text(text)
    print(f"\nwrote {path} (mirrored at {root_path})")
    return path
