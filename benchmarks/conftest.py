"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints
the series in ASCII, and persists it under ``benchmarks/results/`` so
the artifact survives output capture.  Timing uses pytest-benchmark's
pedantic mode with a single round: these are experiment regenerations,
not micro-benchmarks (micro-benchmarks of the hot kernels live in
``test_bench_micro.py``).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a report block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
