"""Benchmark E-T2: the Table-2 scenario itself.

Echoes every simulation parameter of Table 2 as configured in
``repro.config.paper_config`` (the single source of truth all other
benchmarks build on) and times the full 20-round reference run.
"""

from __future__ import annotations

from repro.analysis import render_kv
from repro.config import paper_config
from repro.core import QLECProtocol
from repro.simulation.engine import run_simulation

from conftest import publish


def test_table2_parameters_and_reference_run(benchmark):
    config = paper_config(seed=0)
    result = benchmark.pedantic(
        run_simulation, args=(config, QLECProtocol()), rounds=1, iterations=1
    )
    publish(
        "table2_parameters",
        render_kv(
            {
                "N (nodes)": config.deployment.n_nodes,
                "space": f"{config.deployment.side:g}^3",
                "rounds R": config.rounds,
                "k (paper's k_opt)": config.n_clusters,
                "discount rate gamma": config.qlearning.gamma,
                "eps_fs [pJ/bit/m^2]": config.radio.eps_fs * 1e12,
                "eps_mp [pJ/bit/m^4]": config.radio.eps_mp * 1e12,
                "alpha1, beta1": config.qlearning.alpha1,
                "alpha2, beta2": config.qlearning.alpha2,
                "compression ratio": config.compression_ratio,
                "initial energy [J] (calibrated)": config.deployment.initial_energy,
                "-- reference run --": "",
                "pdr": result.delivery_rate,
                "total energy [J]": result.total_energy,
                "lifespan [rounds]": result.lifespan,
                "balance (Jain)": result.energy_balance_index(),
            },
            title="Table 2 — simulation parameters + QLEC reference run",
        ),
    )
    assert config.qlearning.gamma == 0.95
    assert config.radio.eps_fs * 1e12 == 10.0
    assert config.radio.eps_mp * 1e12 == 0.0013
    assert (config.qlearning.alpha1, config.qlearning.alpha2) == (0.05, 1.05)
    assert config.compression_ratio == 0.5
