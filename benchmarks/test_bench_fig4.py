"""Benchmark E-F4: the §5.3 large-scale dataset experiment (Fig. 4).

Runs QLEC over the full 2896-node synthetic Global-Power-Plant network
with k = 272 heads (the paper's Theorem-1 value), and quantifies the
"energy consumption evenly dissipated" claim: per-quadrant consumption
ratios, Jain's balance index, the consumption/BS-distance correlation,
and the same balance index for the FCM and k-means baselines on the
*identical* network.
"""

from __future__ import annotations

from repro.analysis import render_kv
from repro.experiments import Fig4Config, run_fig4

from conftest import publish

FULL = Fig4Config(
    n_nodes=2896,
    n_clusters=272,
    rounds=10,
    mean_interarrival=16.0,
    seed=0,
    compare=("fcm", "kmeans"),
)


def test_fig4_large_scale_dataset(benchmark):
    report = benchmark.pedantic(run_fig4, args=(FULL,), rounds=1, iterations=1)
    publish("fig4_large_scale", report.render())

    # Shape assertions: QLEC spreads consumption better than the
    # geometric baseline on the identical network, and the spatial
    # structure is weak (|corr| with BS distance bounded).
    assert report.comparison["qlec"] > report.comparison["kmeans"]
    assert abs(report.distance_correlation) < 0.6
    assert report.result.packets.generated > 0


def test_fig4_quickcheck_small(benchmark):
    """A 300-node miniature, useful for fast regression tracking."""
    small = Fig4Config(n_nodes=300, n_clusters=28, rounds=5, seed=1)
    report = benchmark.pedantic(run_fig4, args=(small,), rounds=1, iterations=1)
    publish(
        "fig4_small",
        render_kv(
            {
                "nodes": 300,
                "balance index": report.balance_index,
                "corr(ratio, d_bs)": report.distance_correlation,
                "pdr": report.result.delivery_rate,
            },
            title="Fig. 4 miniature (300 nodes)",
        ),
    )
    assert 0.0 < report.balance_index <= 1.0
