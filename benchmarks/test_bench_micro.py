"""Micro-benchmarks of the hot kernels.

Profiling (per the optimisation workflow in the HPC guides: measure,
then optimise) shows the simulator's time goes to (1) the per-packet Q
backup, (2) pairwise-distance evaluations in clustering, and (3) the
improved-DEEC election.  These benchmarks pin their costs so
regressions show up in CI timing diffs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fcm import fuzzy_c_means
from repro.baselines.kmeans import kmeans
from repro.core import QLECProtocol
from repro.core.selection import ImprovedDEECSelector
from repro.energy.radio import FirstOrderRadio
from repro.network.channel import delivery_probability
from repro.network.topology import pairwise_distances
from repro.simulation.state import NetworkState
from repro.telemetry import config_fingerprint
from tests.conftest import make_config

from conftest import publish_json


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).random((500, 3)) * 200.0


def test_pairwise_distances_500x500(benchmark, points):
    d = benchmark(pairwise_distances, points, points)
    assert d.shape == (500, 500)


def test_kmeans_500pts_k8(benchmark, points):
    result = benchmark(kmeans, points, 8, 0)
    assert result.centroids.shape == (8, 3)


def test_fcm_500pts_k8(benchmark, points):
    result = benchmark(fuzzy_c_means, points, 8, 2.0, 0)
    assert result.membership.shape == (500, 8)


def test_radio_amp_vectorized(benchmark):
    radio = FirstOrderRadio()
    distances = np.random.default_rng(1).random(10_000) * 300.0
    out = benchmark(radio.amp, 4000, distances)
    assert out.shape == (10_000,)


def test_delivery_probability_vectorized(benchmark):
    distances = np.random.default_rng(2).random(10_000) * 300.0
    p = benchmark(delivery_probability, distances, 87.7)
    assert p.shape == (10_000,)


def test_deec_selection_round_n400(benchmark):
    state = NetworkState(make_config(n_nodes=400, n_clusters=10, seed=0))
    selector = ImprovedDEECSelector(10)
    result = benchmark(selector.select, state)
    assert result.k >= 1


def test_q_backup_per_packet(benchmark):
    """One Send-Data decision (Algorithm 4) — the innermost hot call."""
    state = NetworkState(make_config(n_nodes=100, n_clusters=5, seed=0))
    proto = QLECProtocol()
    proto.prepare(state)
    heads = proto.select_cluster_heads(state)
    router = proto.router
    choice = benchmark(router.choose, 0, heads)
    assert choice in set(heads.tolist()) | {state.bs_index}


# ----------------------------------------------------------------------
# Slot kernel: the batched data path at scale.
# ----------------------------------------------------------------------

def _slot_kernel_config():
    """A congested large instance: N=2896 nodes, k=272 heads, one
    packet per node per slot on average (lambda ~ 1)."""
    return make_config(
        n_nodes=2896, side=400.0, n_clusters=272,
        mean_interarrival=1.0, rounds=1, seed=0, initial_energy=2.0,
    )


def _round_aggregates(rs):
    p = rs.packets
    return (
        rs.n_heads, rs.n_alive, rs.energy_consumed, p.generated,
        p.delivered, p.dropped_channel, p.dropped_queue, p.dropped_dead,
        p.expired, p.total_latency_slots, p.total_hops, rs.mean_queue_peak,
    )


def test_slot_kernel_round_n2896(benchmark):
    """One full ``run_round`` of the batched kernel at scale."""
    from repro.simulation.engine import SimulationEngine

    cfg = _slot_kernel_config()

    def fresh_round():
        return SimulationEngine(cfg, QLECProtocol(), batched=True).run_round()

    rs = benchmark(fresh_round)
    assert rs.packets.generated > 20_000


def test_telemetry_disabled_overhead_under_2pct():
    """Disabled telemetry *and* tracing must cost < 2 % of the N=2896
    slot-kernel round.

    When no :class:`Telemetry` is attached the engine holds the NULL
    singleton, and when no tracer is attached it holds NULL_TRACER —
    every instrumented site issues one no-op call on each, so the whole
    disabled cost is their summed per-call cost.  We measure that
    directly, multiply by the number of markers one round issues, and
    compare against the measured round time — a deterministic bound
    that doesn't depend on run-to-run jitter between two full-round
    timings.
    """
    import time

    from repro.simulation.engine import SimulationEngine
    from repro.telemetry import NULL
    from repro.telemetry.trace import NULL_TRACER

    cfg = _slot_kernel_config()
    best = float("inf")
    for _ in range(2):
        engine = SimulationEngine(cfg, QLECProtocol(), batched=True)
        t0 = time.perf_counter()
        engine.run_round()
        best = min(best, time.perf_counter() - t0)

    calls = 200_000
    t0 = time.perf_counter()
    for _ in range(calls):
        NULL.lap("phase")
    per_call = (time.perf_counter() - t0) / calls
    t0 = time.perf_counter()
    for _ in range(calls):
        NULL_TRACER.lap("phase")
    per_call += (time.perf_counter() - t0) / calls

    # Markers per round: ~8 lap sites per slot x slots_per_round, plus
    # a handful of per-round hooks; 100x headroom on the count.  Each
    # site fires one telemetry hook and one tracer hook (per_call sums
    # both).
    slots = cfg.traffic.slots_per_round
    markers = (8 * slots + 20) * 100
    overhead = per_call * markers
    assert overhead < 0.02 * best, (
        f"disabled telemetry+tracer overhead {overhead * 1e6:.1f}us "
        f"vs round {best * 1e3:.1f}ms"
    )


def test_telemetry_enabled_round_n2896(benchmark):
    """One instrumented ``run_round`` at scale (for timing diffs against
    ``test_slot_kernel_round_n2896``)."""
    from repro.simulation.engine import SimulationEngine
    from repro.telemetry import Telemetry

    cfg = _slot_kernel_config()

    def fresh_round():
        return SimulationEngine(
            cfg, QLECProtocol(), batched=True, telemetry=Telemetry()
        ).run_round()

    rs = benchmark(fresh_round)
    assert rs.packets.generated > 20_000


def test_slot_kernel_speedup_and_identity():
    """The batched kernel must beat the scalar reference path by >= 3x
    on the congested instance while producing identical aggregates."""
    import time

    from repro.simulation.engine import SimulationEngine

    cfg = _slot_kernel_config()
    timings = {}
    aggregates = {}
    for batched in (True, False):
        best = float("inf")
        for _ in range(2):
            engine = SimulationEngine(cfg, QLECProtocol(), batched=batched)
            t0 = time.perf_counter()
            rs = engine.run_round()
            best = min(best, time.perf_counter() - t0)
        timings[batched] = best
        aggregates[batched] = _round_aggregates(rs)
    assert aggregates[True] == aggregates[False]
    speedup = timings[False] / timings[True]
    publish_json(
        "slot_kernel",
        {
            "bench": "slot_kernel",
            "config_fingerprint": config_fingerprint(cfg),
            "n_nodes": cfg.deployment.n_nodes,
            "rounds": 1,
            "seconds": {"batched": timings[True], "scalar": timings[False]},
            "speedup": speedup,
            "speedup_floor": 3.0,
        },
    )
    assert speedup >= 3.0, f"slot kernel speedup regressed: {speedup:.2f}x"
