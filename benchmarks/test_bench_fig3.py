"""Benchmark E-F3: regenerate all three panels of Fig. 3.

QLEC vs FCM-based vs classic k-means over four congestion levels
(Poisson mean inter-arrival lambda), five seeds per point, fanned out
over the process pool.  Prints/persists one ASCII table per panel:

* Fig. 3(a) packet delivery rate      — QLEC highest, FCM >10 % loss
  when congested, k-means collapsing from dead static heads;
* Fig. 3(b) total energy consumption  — QLEC below FCM (k-means' raw
  total is deflated by its early deaths; the energy-per-delivered-
  packet column shows QLEC cheapest per useful packet);
* Fig. 3(c) network lifespan          — QLEC longest by a wide margin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_series, render_table
from repro.experiments import DEFAULT_LAMBDAS, Fig3Config, run_fig3

from conftest import publish

CFG = Fig3Config(
    lambdas=DEFAULT_LAMBDAS,
    seeds=(0, 1, 2, 3, 4),
)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(CFG)


def test_fig3_regeneration(benchmark):
    """Timed end-to-end regeneration of the full Fig. 3 sweep."""
    small = Fig3Config(lambdas=(4.0, 16.0), seeds=(0, 1))
    result = benchmark.pedantic(run_fig3, args=(small,), rounds=1, iterations=1)
    assert set(result.pdr) == {"qlec", "fcm", "kmeans"}


def test_fig3a_packet_delivery_rate(benchmark, fig3_result):
    lams = list(CFG.lambdas)
    table = render_series(
        "lambda", lams, fig3_result.pdr,
        title="Fig. 3(a) — packet delivery rate (congested -> idle)",
    )
    publish("fig3a_packet_delivery_rate", table)
    benchmark.pedantic(lambda: fig3_result.sweep.series("pdr", CFG.protocols, lams),
                       rounds=1, iterations=1)
    # Shape assertions (who wins).
    for i, lam in enumerate(lams):
        assert fig3_result.pdr["qlec"][i] >= fig3_result.pdr["fcm"][i] - 0.03
    assert fig3_result.pdr["qlec"][0] > fig3_result.pdr["kmeans"][0]


def test_fig3b_total_energy(benchmark, fig3_result):
    lams = list(CFG.lambdas)
    series = dict(fig3_result.energy)
    # Derived column: energy per delivered packet (J), the fair metric
    # when protocols deliver different packet counts.
    epp = {}
    for proto in CFG.protocols:
        vals = []
        for lam in lams:
            rows = fig3_result.sweep.filtered(protocol=proto, **{"lambda": lam})
            vals.append(
                float(np.mean([r["energy_J"] / max(r["delivered"], 1) for r in rows]))
            )
        epp[f"{proto} J/pkt"] = [v * 1e3 for v in vals]  # mJ per packet
    table = render_series(
        "lambda", lams, series,
        title="Fig. 3(b) — total energy consumption [J] over R rounds",
    ) + "\n\n" + render_series(
        "lambda", lams, epp,
        title="Fig. 3(b') — energy per delivered packet [mJ]",
    )
    publish("fig3b_total_energy", table)
    benchmark.pedantic(
        lambda: fig3_result.sweep.series("energy_J", CFG.protocols, lams),
        rounds=1, iterations=1,
    )
    for i in range(len(lams)):
        assert fig3_result.energy["qlec"][i] < fig3_result.energy["fcm"][i] * 1.1


def test_fig3c_lifespan(benchmark, fig3_result):
    lams = list(CFG.lambdas)
    table = render_series(
        "lambda", lams, fig3_result.lifespan,
        title="Fig. 3(c) — network lifespan [rounds to first death; "
        f"{CFG.rounds} = outlived the run]",
    )
    publish("fig3c_lifespan", table)
    benchmark.pedantic(
        lambda: fig3_result.sweep.series("lifespan", CFG.protocols, lams),
        rounds=1, iterations=1,
    )
    for i in range(len(lams)):
        assert fig3_result.lifespan["qlec"][i] >= fig3_result.lifespan["kmeans"][i]


def test_fig3_latency_extra(benchmark, fig3_result):
    """The abstract's latency claim, not plotted in the paper."""
    lams = list(CFG.lambdas)
    table = render_series(
        "lambda", lams, fig3_result.latency,
        title="(extra) mean transmission latency [slots]",
    )
    publish("fig3_latency", table)
    benchmark.pedantic(
        lambda: fig3_result.sweep.series("latency_slots", CFG.protocols, lams),
        rounds=1, iterations=1,
    )
    raw = render_table(fig3_result.sweep.rows)
    publish("fig3_raw_cells", raw)
