"""Benchmark E-AB1: ablation of QLEC's design choices.

Regenerates the design-choice table DESIGN.md calls out: each of the
paper's three mechanisms switched off independently, the sampled-TD and
epsilon-greedy extensions, plus the classic-protocol anchors — all on
the identical Table-2 scenarios.
"""

from __future__ import annotations

from repro.experiments import render_ablation, run_ablation

from conftest import publish


def test_ablation_table(benchmark):
    rows = benchmark.pedantic(
        run_ablation,
        kwargs={"seeds": (0, 1, 2), "mean_interarrival": 4.0},
        rounds=1,
        iterations=1,
    )
    publish("ablation", render_ablation(rows))
    by_name = {r.variant: r for r in rows}
    full = by_name["qlec (full)"]

    # Anchors: full QLEC must dominate the energy-blind classics on
    # lifespan and the no-clustering strawman on delivery.
    assert full.lifespan >= by_name["leach"].lifespan
    assert full.lifespan >= by_name["kmeans (adaptive)"].lifespan
    assert full.pdr > by_name["direct"].pdr

    # Removing Q-learning (nearest join) must not improve balance.
    assert full.balance >= by_name["qlec w/o q-learning (nearest join)"].balance - 0.05


def test_ablation_congested(benchmark):
    """The same table at the congested operating point."""
    rows = benchmark.pedantic(
        run_ablation,
        kwargs={"seeds": (0, 1), "mean_interarrival": 2.0},
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_congested",
        render_ablation(rows).replace("lambda = 4.0", "lambda = 2.0"),
    )
    assert len(rows) == len(
        {r.variant for r in rows}
    ), "variant names must be unique"
