"""Benchmark: alive-node curves + FND/HND/LND milestones + convergence X.

Deeper lifetime analysis behind Fig. 3(c): the full alive-count
trajectory (the classic LEACH/DEEC figure), the three standard death
milestones, and the Theorem-3 convergence-count study (expected vs
sampled backups).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    LifespanCurveConfig,
    render_convergence_study,
    run_convergence_study,
    run_lifespan_curves,
)

from conftest import publish


def test_lifespan_curves(benchmark):
    cfg = LifespanCurveConfig(
        protocols=("qlec", "fcm", "kmeans", "deec", "leach"),
        seeds=(0, 1, 2),
        rounds=60,
        initial_energy=0.1,
        mean_interarrival=4.0,
    )
    result = benchmark.pedantic(run_lifespan_curves, args=(cfg,), rounds=1,
                                iterations=1)
    publish("lifespan_curves", result.render())

    # Shape: QLEC's first-node-death comes last (or ties) among the trio.
    qlec_fnd = result.milestones["qlec"][0]
    for rival in ("fcm", "kmeans", "leach"):
        rival_fnd = result.milestones[rival][0]
        if np.isfinite(rival_fnd) and np.isfinite(qlec_fnd):
            assert qlec_fnd >= rival_fnd - 1.0
    # And its curve dominates k-means' everywhere early on.
    early = slice(0, 20)
    assert np.all(
        result.curves["qlec"][early] >= result.curves["kmeans"][early] - 1e-9
    )


def test_convergence_x_study(benchmark):
    rows = benchmark.pedantic(
        run_convergence_study,
        kwargs={"n_values": (50, 100, 200, 400), "modes": ("expected", "sampled")},
        rounds=1,
        iterations=1,
    )
    publish("convergence_x", render_convergence_study(rows))
    expected = [r for r in rows if r.mode == "expected"]
    sampled = [r for r in rows if r.mode == "sampled"]
    # Expected backups: X ~ O(N) (a couple of sweeps).  Sampled: the
    # paper's X >> N regime.
    assert all(r.x_over_n < 10 for r in expected)
    assert all(r.x_over_n > 10 for r in sampled)
