"""Benchmark E-TH1: Theorem 1 / Lemma 1 numeric validation.

Regenerates the optimal-cluster-count analysis: the Eq. (6) energy
curve over k, the closed-form k_opt, Monte-Carlo verification of
Lemma 1, and the Table-2 instantiation (which yields ~11 with the
faithful formula and a centred BS; the paper quotes ~5 — recorded as a
deviation in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_kv
from repro.experiments import run_kopt_validation

from conftest import publish


def test_theorem1_table2_instance(benchmark):
    report = benchmark.pedantic(
        run_kopt_validation, kwargs={"mc_samples": 200_000}, rounds=1, iterations=1
    )
    publish("kopt_table2", report.render())
    assert report.matches
    assert report.lemma1_monte_carlo == pytest.approx(
        report.lemma1_analytic, rel=0.02
    )


def test_theorem1_parameter_sweep(benchmark):
    """Closed form tracks the numeric argmin across scenario scales."""
    def sweep():
        rows = {}
        for n, side in ((50, 100.0), (100, 200.0), (400, 300.0), (1000, 500.0)):
            r = run_kopt_validation(
                n_nodes=n, side=side, mc_samples=50_000, seed=n
            )
            rows[f"N={n}, M={side:g}"] = (
                f"k_cf={r.k_closed_form:.2f} k_num={r.k_numeric_argmin} "
                f"match={r.matches}"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("kopt_sweep", render_kv(rows, title="Theorem 1 across scales"))
    assert all("match=True" in v for v in rows.values())

