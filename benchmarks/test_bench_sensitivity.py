"""Benchmark: QLEC hyperparameter sensitivity (robustness study).

One-at-a-time perturbations around the Table-2 point; a healthy
reproduction shows a plateau — the headline results must not hinge on a
razor-edge hyperparameter choice the paper never justified.
"""

from __future__ import annotations

from repro.experiments import render_sensitivity, run_sensitivity

from conftest import publish


def test_sensitivity_study(benchmark):
    rows = benchmark.pedantic(
        run_sensitivity, kwargs={"seeds": (0, 1)}, rounds=1, iterations=1
    )
    publish("sensitivity", render_sensitivity(rows))

    by_axis: dict[str, list] = {}
    for r in rows:
        by_axis.setdefault(r.axis, []).append(r)

    # Plateau check per axis: the worst perturbed PDR stays within 0.15
    # of the default's.
    for axis, axis_rows in by_axis.items():
        default = next(r for r in axis_rows if r.is_default)
        for r in axis_rows:
            assert r.pdr > default.pdr - 0.15, (axis, r.value)

    # The BS penalty is the one knob that must not be *removed*: with
    # l ~ O(per-packet rewards) members leak onto the throttled direct
    # path.  Large values are all equivalent (the plateau).
    penalties = {r.value: r.pdr for r in by_axis["bs_penalty"]}
    assert penalties[1000.0] == penalties[100.0] or (
        abs(penalties[1000.0] - penalties[100.0]) < 0.05
    )
