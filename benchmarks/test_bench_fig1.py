"""Benchmark E-F1: regenerate Fig. 1 (the clustered network structure).

An illustration in the paper, an executable artifact here: one
improved-DEEC selection round on the Table-2 cube, rendered as a
character raster with the cluster census.
"""

from __future__ import annotations

from repro.experiments import run_fig1

from conftest import publish


def test_fig1_network_structure(benchmark):
    view = benchmark.pedantic(run_fig1, kwargs={"seed": 0}, rounds=1,
                              iterations=1)
    publish("fig1_structure", view.render())
    assert view.heads.size == 5  # the paper's k_opt ~ 5 configuration
    assert "S" in view.layout and "H" in view.layout
    assert sum(view.members_per_head.values()) == 100 - view.heads.size
