"""Benchmark: transmission-latency distributions.

The abstract claims QLEC "outperforms ... in terms of transmission
latency" but the paper plots no latency figure.  This bench regenerates
what that figure would be: per-protocol delivery-latency percentiles
(slots) on the Table-2 scenario at the busy operating point, where the
FCM hierarchy pays extra hops and congested queues pay waiting time.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import latency_percentiles, render_table
from repro.analysis.sweep import PROTOCOLS
from repro.config import paper_config
from repro.simulation import run_simulation

from conftest import publish

PROTOS = ("qlec", "fcm", "kmeans", "deec", "tl-leach")
SEEDS = (0, 1, 2)


def test_latency_distributions(benchmark):
    def run():
        rows = []
        for name in PROTOS:
            pooled: list[int] = []
            for seed in SEEDS:
                config = paper_config(mean_interarrival=4.0, seed=seed)
                result = run_simulation(config, PROTOCOLS_LOCAL[name]())
                pooled.extend(result.packets.latencies)
            stats = latency_percentiles(pooled)
            rows.append({"protocol": name, "n delivered": len(pooled), **stats})
        return rows

    PROTOCOLS_LOCAL = PROTOCOLS
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "latency_distributions",
        render_table(
            rows, precision=2,
            title="delivery latency [slots], lambda = 4, pooled over seeds",
        ),
    )
    by_name = {r["protocol"]: r for r in rows}
    # The abstract's claim: QLEC's typical latency beats the multi-hop
    # FCM hierarchy's.
    assert by_name["qlec"]["p50"] <= by_name["fcm"]["p50"] + 0.5
    assert by_name["qlec"]["mean"] <= by_name["fcm"]["mean"] + 0.25
    # Tail sanity: percentiles are ordered for everyone.
    for r in rows:
        if not np.isnan(r["p50"]):
            assert r["p50"] <= r["p90"] <= r["p99"]
