"""Benchmarks for the extension features beyond the paper's evaluation.

The paper motivates round-based re-election with node *mobility* (§3.1)
and cites *harvesting-aware* Q-routing (HyDRO) and the *two-level*
TL-LEACH hierarchy as related work, but evaluates none of them.  These
benches exercise each extension on the Table-2 scenario:

* mobility sweep — QLEC's delivery rate vs node speed (re-election +
  ACK-driven link estimates must absorb moderate motion);
* harvesting — solar income extends effective lifetime;
* TL-LEACH, heterogeneous DEEC, and QELAR — the related-work anchors.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_series, render_table
from repro.baselines import DEECProtocol, QELARProtocol, TLLEACHProtocol
from repro.config import paper_config
from repro.core import QLECProtocol
from repro.energy.harvesting import HarvestingConfig
from repro.network.mobility import MobilityConfig
from repro.simulation.engine import run_simulation

from conftest import publish

SEEDS = (0, 1, 2)


def test_mobility_sweep(benchmark):
    speeds = (0.0, 5.0, 15.0, 30.0)

    def sweep():
        series = {"pdr": [], "energy": []}
        for speed in speeds:
            pdrs, energies = [], []
            for seed in SEEDS:
                config = paper_config(mean_interarrival=8.0, seed=seed)
                if speed > 0:
                    config = config.replace(
                        mobility=MobilityConfig(model="random_waypoint", speed=speed)
                    )
                r = run_simulation(config, QLECProtocol())
                pdrs.append(r.delivery_rate)
                energies.append(r.total_energy)
            series["pdr"].append(float(np.mean(pdrs)))
            series["energy"].append(float(np.mean(energies)))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ext_mobility",
        render_series(
            "speed [m/round]", list(speeds),
            {"qlec pdr": series["pdr"], "qlec energy [J]": series["energy"]},
            title="QLEC under random-waypoint mobility (Table-2 scenario)",
        ),
    )
    # Static must be at least as good as fast motion, and moderate
    # motion must not collapse the protocol.
    assert series["pdr"][0] >= series["pdr"][-1] - 0.02
    assert series["pdr"][1] > 0.8


def test_harvesting_extends_lifetime(benchmark):
    def run():
        rows = []
        for label, harvesting in (
            ("no harvesting", None),
            ("solar 2 mJ/round", HarvestingConfig(model="solar", mean_income=0.002)),
            ("solar 10 mJ/round", HarvestingConfig(model="solar", mean_income=0.01)),
        ):
            alive, pdr = [], []
            for seed in SEEDS:
                config = paper_config(
                    mean_interarrival=2.0, seed=seed, initial_energy=0.08,
                    rounds=30,
                )
                if harvesting is not None:
                    config = config.replace(harvesting=harvesting)
                r = run_simulation(config, QLECProtocol())
                alive.append(r.n_alive_final)
                pdr.append(r.delivery_rate)
            rows.append(
                {
                    "scenario": label,
                    "alive after 30 rounds": float(np.mean(alive)),
                    "pdr": float(np.mean(pdr)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ext_harvesting",
        render_table(rows, title="Solar harvesting, congested 0.08 J scenario"),
    )
    assert rows[2]["alive after 30 rounds"] >= rows[0]["alive after 30 rounds"]


def test_related_work_anchors(benchmark):
    """TL-LEACH and heterogeneous-DEEC next to QLEC on one scenario."""
    def run():
        rows = []
        hetero = paper_config(mean_interarrival=4.0, seed=0)
        hetero = hetero.replace(
            deployment=hetero.deployment.__class__(
                n_nodes=100, side=200.0, initial_energy=0.25,
                advanced_fraction=0.2, advanced_factor=1.0,
            )
        )
        cases = [
            ("qlec (homogeneous)", paper_config(mean_interarrival=4.0, seed=0),
             QLECProtocol()),
            ("qlec (heterogeneous m=0.2 a=1)", hetero, QLECProtocol()),
            ("deec (heterogeneous m=0.2 a=1)", hetero, DEECProtocol()),
            ("tl-leach", paper_config(mean_interarrival=4.0, seed=0),
             TLLEACHProtocol()),
            ("qelar (flat multi-hop)", paper_config(mean_interarrival=4.0, seed=0),
             QELARProtocol()),
        ]
        for label, config, protocol in cases:
            r = run_simulation(config, protocol)
            rows.append(
                {
                    "scenario": label,
                    "pdr": r.delivery_rate,
                    "energy_J": r.total_energy,
                    "lifespan": r.lifespan,
                    "balance": r.energy_balance_index(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ext_related_work",
        render_table(rows, title="Related-work anchors (lambda = 4)"),
    )
    assert len(rows) == 5
