"""Benchmark E-C1: the §4.3 complexity claims, measured.

* Lemma 2 — O(RN) selection phase: wall-clock across N at fixed R; the
  per-(node x round) cost must stay bounded as N grows 16x.
* Lemma 3 — O(kX) Q-learning: exactly k+1 Q evaluations per V update,
  and the relaxation's update count X measured to convergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    measure_qlearning_updates,
    measure_selection_scaling,
    render_complexity_report,
)

from conftest import publish


def test_lemma2_selection_scales_linearly(benchmark):
    rows = benchmark.pedantic(
        measure_selection_scaling,
        kwargs={"n_values": (50, 100, 200, 400, 800), "rounds": 20},
        rounds=1,
        iterations=1,
    )
    q = measure_qlearning_updates()
    publish("complexity", render_complexity_report(rows, q))
    # O(RN): the per-(node*round) cost must not *grow* with N.  The
    # vectorized election amortises its fixed overhead, so the unit
    # cost actually falls as N rises — sub-linear is fine, super-linear
    # is the regression this guards against.
    unit_costs = [r.seconds_per_node_round for r in rows]
    assert unit_costs[-1] <= 2.0 * unit_costs[0] + 1e-6


def test_lemma3_q_evaluations_per_update(benchmark):
    row = benchmark.pedantic(measure_qlearning_updates, rounds=1, iterations=1)
    assert row.evaluations_per_update == pytest.approx(row.k + 1)
    assert row.v_updates > 0


def test_lemma3_updates_scale_with_k(benchmark):
    """X grows with the action-set size k (more Q entries per sweep)."""
    def run():
        evals = {}
        for k in (2, 4, 8):
            r = measure_qlearning_updates(k=k)
            evals[r.k] = r.q_evaluations / max(r.v_updates, 1)
        return evals

    evals = benchmark.pedantic(run, rounds=1, iterations=1)
    ks = sorted(evals)
    assert all(evals[a] < evals[b] for a, b in zip(ks, ks[1:]))


def test_engine_round_throughput(benchmark):
    """Throughput anchor: one Table-2 QLEC round (engine + protocol)."""
    from repro.config import paper_config
    from repro.core import QLECProtocol
    from repro.simulation.engine import SimulationEngine

    engine = SimulationEngine(paper_config(seed=0, rounds=10_000), QLECProtocol())
    benchmark(engine.run_round)


def test_scaling_in_network_size(benchmark):
    """End-to-end run cost vs N (empirical exponent printed)."""
    from repro.baselines import KMeansProtocol
    from repro.simulation.engine import run_simulation
    from tests.conftest import make_config
    import time

    def run():
        timings = {}
        for n in (50, 100, 200, 400):
            cfg = make_config(n_nodes=n, rounds=3, n_clusters=max(2, n // 20),
                              seed=0)
            t0 = time.perf_counter()
            run_simulation(cfg, KMeansProtocol())
            timings[n] = time.perf_counter() - t0
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    ns = sorted(timings)
    exponent = np.polyfit(
        np.log([float(n) for n in ns]), np.log([timings[n] for n in ns]), 1
    )[0]
    publish(
        "engine_scaling",
        "engine wall-clock scaling in N: "
        + ", ".join(f"N={n}: {timings[n]*1e3:.1f} ms" for n in ns)
        + f"\nempirical exponent ~ {exponent:.2f}",
    )
    assert exponent < 2.5  # data plane stays near-linear in N
