"""Large-N scale gate: N=1e5 nodes under a bounded memory budget.

The blocked distance path (``--max-block-mb``) exists so deployments
two orders of magnitude beyond the paper's 2896-node dataset fit in
memory: the engine never materialises more than the declared block of
the sender x target distance matrix at once.  This gate runs a
multi-round N=100_000 simulation under a 64 MiB block budget and
enforces:

* throughput — nodes x rounds per second above a conservative floor,
* memory — peak RSS far below what an O(N^2) (or even an unblocked
  N x k) working set would need,
* fidelity — one blocked round is aggregate-identical to the same
  round with the block budget off (the bitwise contract at scale).

Published as ``BENCH_scale.json`` for the CI regression gate.
"""

from __future__ import annotations

import resource
import time

from repro.core import QLECProtocol
from repro.simulation.engine import SimulationEngine
from repro.telemetry import config_fingerprint
from tests.conftest import make_config

from conftest import publish, publish_json

#: Nodes x rounds per second.  Measured ~31k on the reference host;
#: the floor leaves ~8x headroom for slower CI runners.
THROUGHPUT_FLOOR = 4_000.0

#: Peak RSS ceiling in MiB.  An unblocked N x k distance matrix alone
#: is ~250 MiB and an O(N^2) one ~80 GiB; the measured blocked peak is
#: ~250 MiB total, so 2 GiB proves the working set stays linear in N.
RSS_CEILING_MB = 2_048.0

N_NODES = 100_000
ROUNDS = 2
MAX_BLOCK_MB = 64.0


def _scale_config(max_block_mb=MAX_BLOCK_MB, rounds=ROUNDS):
    """1e5 nodes at paper-like density with k ~ sqrt(N) heads."""
    return make_config(
        n_nodes=N_NODES, side=1500.0, n_clusters=316,
        mean_interarrival=16.0, rounds=rounds, seed=0, initial_energy=2.0,
        max_block_mb=max_block_mb,
    )


def _round_aggregates(rs):
    p = rs.packets
    return (
        rs.n_heads, rs.n_alive, rs.energy_consumed, p.generated,
        p.delivered, p.dropped_channel, p.dropped_queue, p.dropped_dead,
        p.expired, p.total_latency_slots, p.total_hops, rs.mean_queue_peak,
    )


def test_scale_100k_nodes_blocked():
    cfg = _scale_config()
    engine = SimulationEngine(cfg, QLECProtocol(), batched=True)

    report = engine.state.memory_report()
    assert report["transient_block_mb"] <= MAX_BLOCK_MB
    # Resident per-node state is a few float64/bool arrays — linear in N.
    assert report["resident_mb"] < 64.0, report

    t0 = time.perf_counter()
    last = None
    for _ in range(cfg.rounds):
        last = engine.run_round()
    elapsed = time.perf_counter() - t0
    assert last is not None and last.packets.generated > 10_000

    node_rounds_per_sec = (N_NODES * cfg.rounds) / elapsed
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    publish(
        "scale",
        f"Large-N scale gate (N={N_NODES}, {cfg.rounds} rounds, "
        f"block budget {MAX_BLOCK_MB} MiB)\n"
        f"  wall time:        {elapsed:8.2f} s\n"
        f"  throughput:       {node_rounds_per_sec:8.0f} node-rounds/s "
        f"(floor {THROUGHPUT_FLOOR:.0f})\n"
        f"  peak RSS:         {rss_mb:8.1f} MiB (ceiling {RSS_CEILING_MB:.0f})\n"
        f"  resident arrays:  {report['resident_mb']:8.1f} MiB",
    )
    publish_json(
        "scale",
        {
            "bench": "scale",
            "config_fingerprint": config_fingerprint(cfg),
            "n_nodes": N_NODES,
            "rounds": cfg.rounds,
            "max_block_mb": MAX_BLOCK_MB,
            "seconds": elapsed,
            "node_rounds_per_sec": node_rounds_per_sec,
            "throughput_floor": THROUGHPUT_FLOOR,
            "peak_rss_mb": rss_mb,
            "rss_ceiling_mb": RSS_CEILING_MB,
            "resident_mb": report["resident_mb"],
            "generated": last.packets.generated,
            "delivered": last.packets.delivered,
            "n_alive": last.n_alive,
        },
    )

    assert node_rounds_per_sec >= THROUGHPUT_FLOOR, (
        f"scale throughput regressed: {node_rounds_per_sec:.0f} "
        f"node-rounds/s (floor {THROUGHPUT_FLOOR:.0f})"
    )
    assert rss_mb < RSS_CEILING_MB, (
        f"peak RSS {rss_mb:.0f} MiB breaches the {RSS_CEILING_MB:.0f} MiB "
        "ceiling — the blocked distance path is no longer bounding the "
        "working set"
    )


def test_scale_blocked_round_identical_to_unblocked():
    """The block budget is a memory knob, not a numeric one: one full
    N=1e5 round under a 64 MiB budget must produce aggregates
    bit-identical to the same round with blocking off."""
    aggregates = {}
    for budget in (MAX_BLOCK_MB, None):
        cfg = _scale_config(max_block_mb=budget, rounds=1)
        rs = SimulationEngine(cfg, QLECProtocol(), batched=True).run_round()
        aggregates[budget] = _round_aggregates(rs)
    assert aggregates[MAX_BLOCK_MB] == aggregates[None], (
        "blocked N=1e5 round diverged from the unblocked reference"
    )
