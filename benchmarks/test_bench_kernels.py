"""Backend speedup gate: numba vs the numpy reference at scale.

The numba backend exists to make the grouped slot kernels cheaper on
large instances, so this gate times one full ``run_round`` of the
N=2896 congested instance under each backend and requires numba to
win by >= 1.5x while producing *identical* round aggregates (the
bit-equivalence contract of ``repro.kernels``).

Skips with a reason when numba is not installed — the CI numba matrix
leg runs it.  Results are published both as ASCII and as a
machine-readable ``BENCH_kernel_backends.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import QLECProtocol
from repro.kernels import available_backends, backend_versions
from repro.simulation.engine import SimulationEngine
from repro.telemetry import config_fingerprint
from tests.conftest import make_config

from conftest import publish, publish_json

SPEEDUP_FLOOR = 1.5


def _config():
    """Same congested instance the scalar-vs-batched gate uses."""
    return make_config(
        n_nodes=2896, side=400.0, n_clusters=272,
        mean_interarrival=1.0, rounds=1, seed=0, initial_energy=2.0,
    )


def _round_aggregates(rs):
    p = rs.packets
    return (
        rs.n_heads, rs.n_alive, rs.energy_consumed, p.generated,
        p.delivered, p.dropped_channel, p.dropped_queue, p.dropped_dead,
        p.expired, p.total_latency_slots, p.total_hops, rs.mean_queue_peak,
    )


def _best_round_time(cfg, backend, repeats=3):
    best, aggregates = float("inf"), None
    for _ in range(repeats):
        engine = SimulationEngine(cfg, QLECProtocol(), backend=backend)
        t0 = time.perf_counter()
        rs = engine.run_round()
        best = min(best, time.perf_counter() - t0)
        aggregates = _round_aggregates(rs)
    return best, aggregates


@pytest.mark.skipif(
    "numba" not in available_backends(),
    reason="numba not installed — the backend speedup gate runs on the "
    "CI numba leg (pip install numba)",
)
def test_numba_backend_speedup_n2896():
    cfg = _config()

    # Warm-up run so numba's JIT compilation is not timed.
    SimulationEngine(cfg, QLECProtocol(), backend="numba").run_round()

    t_numpy, agg_numpy = _best_round_time(cfg, "numpy")
    t_numba, agg_numba = _best_round_time(cfg, "numba")

    assert agg_numpy == agg_numba, "backends diverged on round aggregates"
    speedup = t_numpy / t_numba

    versions = backend_versions()
    publish(
        "kernel_backends",
        "Kernel backend speedup (N=2896 congested round)\n"
        f"  numpy {versions['numpy']}: {t_numpy * 1e3:8.1f} ms\n"
        f"  numba {versions['numba']}: {t_numba * 1e3:8.1f} ms\n"
        f"  speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)",
    )
    publish_json(
        "kernel_backends",
        {
            "bench": "kernel_backends",
            "config_fingerprint": config_fingerprint(cfg),
            "n_nodes": cfg.deployment.n_nodes,
            "rounds": 1,
            "backend_versions": versions,
            "seconds": {"numpy": t_numpy, "numba": t_numba},
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"numba backend speedup regressed: {speedup:.2f}x"
    )
