#!/usr/bin/env python3
"""Mountain-terrain congestion sweep using the parallel harness.

The paper motivates 3-D clustering with "mountainous areas"; this
example drapes 120 sensors over a synthetic massif (gateway on the
summit), then sweeps the Poisson congestion level for QLEC with the
process-pool sweep machinery — the same harness the Fig. 3 benchmarks
use, here applied to a custom deployment.

Run:  python examples/mountain_terrain_sweep.py
"""

import numpy as np

from repro import (
    DeploymentConfig,
    QLECProtocol,
    SimulationConfig,
    SimulationEngine,
    TrafficConfig,
    mountain_terrain,
)
from repro.analysis import render_series
from repro.parallel import run_tasks

SIDE = 250.0
N_NODES = 120
LAMBDAS = (3.0, 6.0, 12.0, 24.0)
SEEDS = (0, 1, 2)


def run_one(lam: float, seed: int) -> dict:
    """One sweep cell (module-level so the process pool can pickle it)."""
    nodes, bs = mountain_terrain(
        N_NODES, SIDE, 0.2, rng=np.random.default_rng(500 + seed)
    )
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=N_NODES, side=SIDE, initial_energy=0.2,
            bs_position=tuple(bs.position),
        ),
        traffic=TrafficConfig(mean_interarrival=lam),
        rounds=20,
        n_clusters=6,
        seed=seed,
    )
    engine = SimulationEngine(config, QLECProtocol(), nodes=nodes, bs=bs)
    result = engine.run()
    return {
        "lambda": lam,
        "seed": seed,
        "pdr": result.delivery_rate,
        "energy": result.total_energy,
        "latency": result.mean_latency,
    }


def main() -> None:
    cells = [(lam, seed) for lam in LAMBDAS for seed in SEEDS]
    rows = run_tasks(run_one, cells)

    def series(metric: str) -> list[float]:
        return [
            float(np.mean([r[metric] for r in rows if r["lambda"] == lam]))
            for lam in LAMBDAS
        ]

    print(
        render_series(
            "lambda",
            list(LAMBDAS),
            {
                "delivery rate": series("pdr"),
                "energy [J]": series("energy"),
                "latency [slots]": series("latency"),
            },
            title=f"QLEC on a {N_NODES}-sensor mountain massif "
            f"(summit gateway, {len(SEEDS)} seeds/point)",
        )
    )


if __name__ == "__main__":
    main()
