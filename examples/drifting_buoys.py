#!/usr/bin/env python3
"""Drifting solar buoys: mobility + harvesting + tracing in one scenario.

A fleet of 80 surface buoys drifts with Gauss-Markov currents across a
300 m patch of ocean, recharging from solar panels, while QLEC keeps
re-clustering them around a moored gateway.  Demonstrates the three
extension subsystems working together and the trace/ASCII tooling:

* :mod:`repro.network.mobility`  — correlated drift;
* :mod:`repro.energy.harvesting` — diurnal solar income;
* :class:`repro.simulation.TraceRecorder` + ASCII layout views.

Run:  python examples/drifting_buoys.py
"""

import numpy as np

from repro import (
    DeploymentConfig,
    QLECProtocol,
    SimulationConfig,
    SimulationEngine,
    TrafficConfig,
)
from repro.analysis import network_ascii, render_kv
from repro.energy.harvesting import HarvestingConfig
from repro.network.mobility import MobilityConfig
from repro.simulation import TraceRecorder

SIDE = 300.0
N_BUOYS = 80
ROUNDS = 40


def main() -> None:
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=N_BUOYS,
            side=SIDE,
            initial_energy=0.06,
            # Moored gateway in the middle of the patch, at the surface.
            bs_position=(SIDE / 2, SIDE / 2, SIDE / 2),
        ),
        traffic=TrafficConfig(mean_interarrival=6.0),
        rounds=ROUNDS,
        n_clusters=6,
        seed=11,
        mobility=MobilityConfig(model="gauss_markov", speed=8.0, memory=0.85),
        harvesting=HarvestingConfig(
            model="solar", mean_income=0.0015, rounds_per_day=20
        ),
    )
    trace = TraceRecorder()
    engine = SimulationEngine(config, QLECProtocol(), trace=trace)
    initial_positions = engine.state.nodes.positions.copy()

    result = engine.run()

    print("initial layout (x-y projection; H = head, S = gateway):")
    print(
        network_ascii(
            initial_positions,
            heads=list(trace)[0].heads,
            bs_position=engine.state.bs.position,
            width=56,
            height=16,
        )
    )

    print("\nfinal layout after 40 rounds of drift:")
    last_heads = list(trace)[-1].heads
    print(
        network_ascii(
            engine.state.nodes.positions,
            heads=last_heads,
            bs_position=engine.state.bs.position,
            width=56,
            height=16,
        )
    )

    service = trace.head_service_counts()
    print()
    print(
        render_kv(
            {
                "delivery rate": result.delivery_rate,
                "gross energy spent [J]": result.total_energy,
                "buoys alive at end": result.n_alive_final,
                "distinct buoys that served as head": len(service),
                "max head-service rounds (one buoy)": max(service.values()),
                "balance index": result.energy_balance_index(),
            },
            title="drifting solar-buoy fleet, QLEC, 40 rounds",
        )
    )


if __name__ == "__main__":
    main()
