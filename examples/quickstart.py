#!/usr/bin/env python3
"""Quickstart: run QLEC on the paper's Table-2 scenario.

Builds the 100-node / 200^3-cube network, runs QLEC for 20 rounds, and
prints the three headline metrics next to the FCM-based and k-means
baselines — a miniature of the paper's Fig. 3 at one network condition.

Run:  python examples/quickstart.py
"""

from repro import (
    FCMProtocol,
    KMeansProtocol,
    QLECProtocol,
    paper_config,
    run_simulation,
)
from repro.analysis import render_table


def main() -> None:
    rows = []
    for protocol_cls in (QLECProtocol, FCMProtocol, KMeansProtocol):
        # Same seed -> identical deployment, traffic, and channel draws
        # for every protocol: a controlled comparison.
        config = paper_config(mean_interarrival=4.0, seed=7)
        result = run_simulation(config, protocol_cls())
        rows.append(
            {
                "protocol": result.protocol,
                "delivery rate": result.delivery_rate,
                "energy [J]": result.total_energy,
                "lifespan [rounds]": result.lifespan,
                "lifespan censored": result.lifespan_censored,
                "mean latency [slots]": result.mean_latency,
                "balance (Jain)": result.energy_balance_index(),
            }
        )
    print(render_table(rows, title="Table-2 scenario, lambda = 4.0, seed 7"))
    print()
    print(
        "QLEC should show the highest delivery rate and (often censored)\n"
        "lifespan, and the most even energy balance."
    )


if __name__ == "__main__":
    main()
