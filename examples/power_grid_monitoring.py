#!/usr/bin/env python3
"""Large-scale power-grid monitoring overlay (the paper's §5.3, scaled).

Generates the synthetic Global-Power-Plant-like dataset (China bounding
box, clustered positions, heavy-tailed capacities mapped to
heterogeneous batteries), runs QLEC with a Theorem-1 cluster count, and
prints the energy-consumption-evenness report that is the quantitative
content of the paper's Fig. 4.

The full 2896-node run lives in ``benchmarks/test_bench_fig4.py``; this
example uses 600 nodes so it finishes in seconds.

Run:  python examples/power_grid_monitoring.py
"""

from repro.experiments import Fig4Config, run_fig4


def main() -> None:
    report = run_fig4(
        Fig4Config(
            n_nodes=600,
            # Theorem 1 scales k with N; ~1/10 of the paper's 272 for
            # ~1/5 of the nodes keeps cluster sizes comparable.
            n_clusters=56,
            rounds=8,
            mean_interarrival=16.0,
            seed=3,
        )
    )
    print(report.render())
    print()
    print(
        "A balance index near 1 and a weak correlation with BS distance\n"
        "are the 'evenly distributed consumption' claim of Fig. 4."
    )


if __name__ == "__main__":
    main()
