#!/usr/bin/env python3
"""Underwater monitoring column — the QELAR/HyDRO setting the paper cites.

Deploys 150 instruments in a 150 m water column with density biased
toward the photic zone and a surface-buoy base station, then compares
QLEC against classic DEEC and LEACH over a long horizon with
stop-on-death — the regime where "it may be difficult to charge the
sensor nodes" (paper §5.2) and lifespan is everything.

Run:  python examples/underwater_monitoring.py
"""

import numpy as np

from repro import (
    DEECProtocol,
    DeploymentConfig,
    LEACHProtocol,
    QLECProtocol,
    SimulationConfig,
    SimulationEngine,
    TrafficConfig,
    underwater_column,
)
from repro.baselines import QELARProtocol
from repro.analysis import render_table

SIDE = 150.0
N_NODES = 150
ROUNDS = 60


def build_config(seed: int) -> SimulationConfig:
    return SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=N_NODES,
            side=SIDE,
            initial_energy=0.15,
            # Surface buoy: the sink of underwater columns.
            bs_position=(SIDE / 2, SIDE / 2, SIDE),
        ),
        traffic=TrafficConfig(mean_interarrival=8.0),
        rounds=ROUNDS,
        n_clusters=6,
        seed=seed,
    )


def main() -> None:
    rows = []
    for protocol_cls in (QLECProtocol, DEECProtocol, LEACHProtocol, QELARProtocol):
        lifespans, pdrs = [], []
        for seed in range(3):
            config = build_config(seed)
            nodes, bs = underwater_column(
                N_NODES, SIDE, config.deployment.initial_energy,
                rng=np.random.default_rng(1000 + seed),
            )
            engine = SimulationEngine(
                config, protocol_cls(), nodes=nodes, bs=bs, stop_on_death=True
            )
            result = engine.run()
            lifespans.append(result.lifespan)
            pdrs.append(result.delivery_rate)
        rows.append(
            {
                "protocol": protocol_cls.name,
                "mean lifespan [rounds]": float(np.mean(lifespans)),
                "min lifespan": int(np.min(lifespans)),
                "mean delivery rate": float(np.mean(pdrs)),
            }
        )
    print(
        render_table(
            rows,
            title=f"Underwater column ({N_NODES} instruments, surface sink, "
            f"stop on first death, cap {ROUNDS} rounds)",
        )
    )


if __name__ == "__main__":
    main()
