"""Generic tabular Q-learning agent (sampled, off-policy TD).

QLEC's Algorithm 4 performs *model-based* expected backups (it "computes
the Q values of all the actions based on [its] own knowledge ... rather
than take real actions"), which live in :mod:`repro.core.routing`.
This module provides the classical sampled Q-learning agent of
Watkins — the algorithm §3.3 introduces — used (a) as an ablation
variant of the routing layer and (b) to validate the MDP substrate:
on any finite MDP its Q table must converge to the value-iteration
fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mdp import FiniteMDP
from .qtable import QTable

__all__ = ["QLearningAgent", "EpsilonSchedule", "train_on_mdp"]


@dataclass(frozen=True)
class EpsilonSchedule:
    """Linearly decaying epsilon-greedy exploration schedule."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if self.decay_steps < 1:
            raise ValueError("decay_steps must be >= 1")

    def value(self, step: int) -> float:
        frac = min(max(step, 0) / self.decay_steps, 1.0)
        return self.start + frac * (self.end - self.start)


class QLearningAgent:
    """Off-policy TD(0) control: ``Q(s,a) += lr * (r + gamma*max Q(s',.) - Q(s,a))``."""

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        gamma: float,
        learning_rate: float = 0.1,
        epsilon: EpsilonSchedule | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        self.q = QTable(n_states, n_actions)
        self.gamma = gamma
        self.learning_rate = learning_rate
        self.epsilon = epsilon if epsilon is not None else EpsilonSchedule()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.steps = 0

    def select_action(self, state: int) -> int:
        """Epsilon-greedy draw under the current schedule."""
        eps = self.epsilon.value(self.steps)
        if self.rng.random() < eps:
            return int(self.rng.integers(self.q.n_actions))
        return self.q.best_action(state, self.rng)

    def update(self, state: int, action: int, reward: float, next_state: int) -> float:
        """One TD backup; returns the absolute TD error."""
        target = reward + self.gamma * float(self.q.row(next_state).max())
        old = self.q.get(state, action)
        new = old + self.learning_rate * (target - old)
        self.q.set(state, action, new)
        self.steps += 1
        return abs(target - old)

    def greedy_policy(self) -> np.ndarray:
        return self.q.values.argmax(axis=1)


def train_on_mdp(
    agent: QLearningAgent,
    mdp: FiniteMDP,
    episodes: int,
    max_steps: int = 100,
    start_states: np.ndarray | None = None,
    telemetry=None,
) -> np.ndarray:
    """Run episodic Q-learning on an explicit MDP.

    Episodes start from ``start_states`` (default: uniform over
    non-terminal states) and terminate on absorbing states or after
    ``max_steps``.  Returns the per-episode summed TD error, a cheap
    convergence signal for tests.

    When a :class:`~repro.telemetry.Telemetry` handle is passed, the
    update loop is wall-clock attributed (``time/rl/train``) and the
    sampled-backup counters (``rl/updates``, ``rl/episodes``) plus the
    per-episode TD-error gauge (``rl/td_error``) accumulate in its
    registry — the convergence-count X view of Theorem 3, measured
    instead of derived.  Telemetry never touches the agent's RNG.
    """
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    terminal = (
        mdp.terminal
        if mdp.terminal is not None
        else np.zeros(mdp.n_states, dtype=bool)
    )
    candidates = np.flatnonzero(~terminal)
    if start_states is not None:
        candidates = np.asarray(start_states)
    steps_before = agent.steps
    errors = np.zeros(episodes)
    if telemetry is None:
        from ..telemetry import NULL as telemetry  # noqa: N811 - singleton
    with telemetry.span("rl/train"):
        for ep in range(episodes):
            s = int(agent.rng.choice(candidates))
            total = 0.0
            for _ in range(max_steps):
                a = agent.select_action(s)
                s_next, r = mdp.sample_step(s, a, agent.rng)
                total += agent.update(s, a, r, s_next)
                s = s_next
                if terminal[s]:
                    break
            errors[ep] = total
    if telemetry.enabled:
        reg = telemetry.registry
        reg.counter("rl/episodes").add(episodes)
        reg.counter("rl/updates").add(agent.steps - steps_before)
        reg.gauge("rl/td_error").observe_many(errors)
    return errors
