"""Finite Markov Decision Processes and exact solvers.

Paper §3.3 frames the routing choice as a finite MDP: state-transition
probabilities ``P^a_{ss'}`` (Eq. 8), expected rewards ``R^a_{ss'}``
(Eq. 9), discounted return (the G_t series), and the Bellman optimality
equations (Eqs. 13-15).  This module implements that abstract machinery
exactly — tabular transition/reward tensors, value iteration, and
Q-value extraction — independent of the WSN application, so the
Q-learning agent can be validated against a ground-truth solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FiniteMDP", "value_iteration", "q_from_v", "greedy_policy"]


@dataclass(frozen=True)
class FiniteMDP:
    """Tabular MDP with ``S`` states and ``A`` actions.

    Attributes
    ----------
    transitions:
        ``(A, S, S)`` tensor; ``transitions[a, s, s']`` is
        ``P^a_{ss'}`` of Eq. (8).  Rows must sum to 1.
    rewards:
        ``(A, S, S)`` tensor; ``rewards[a, s, s']`` is ``R^a_{ss'}`` of
        Eq. (9).
    gamma:
        Discount rate (paper: typically within [0.5, 0.99]).
    terminal:
        Optional boolean ``(S,)`` mask of absorbing states whose value
        is pinned to zero (e.g. the base station).
    """

    transitions: np.ndarray
    rewards: np.ndarray
    gamma: float
    terminal: np.ndarray | None = None

    def __post_init__(self) -> None:
        t = np.asarray(self.transitions, dtype=np.float64)
        r = np.asarray(self.rewards, dtype=np.float64)
        if t.ndim != 3 or t.shape[1] != t.shape[2]:
            raise ValueError("transitions must have shape (A, S, S)")
        if r.shape != t.shape:
            raise ValueError("rewards must match transitions' shape")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if np.any(t < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        row_sums = t.sum(axis=2)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ValueError("each transitions[a, s, :] must sum to 1")
        object.__setattr__(self, "transitions", t)
        object.__setattr__(self, "rewards", r)
        if self.terminal is not None:
            term = np.asarray(self.terminal, dtype=bool)
            if term.shape != (self.n_states,):
                raise ValueError("terminal mask must have shape (S,)")
            object.__setattr__(self, "terminal", term)

    @property
    def n_actions(self) -> int:
        return self.transitions.shape[0]

    @property
    def n_states(self) -> int:
        return self.transitions.shape[1]

    def expected_reward(self) -> np.ndarray:
        """``(A, S)`` expected one-step reward, Eq. (10):
        ``R_t = sum_{s'} P^a_{ss'} R^a_{ss'}``."""
        return np.einsum("ast,ast->as", self.transitions, self.rewards)

    def sample_step(
        self, state: int, action: int, rng: np.random.Generator
    ) -> tuple[int, float]:
        """Draw one environment transition ``(s', r)`` for the sampled
        TD variant of Q-learning."""
        p = self.transitions[action, state]
        next_state = int(rng.choice(self.n_states, p=p))
        return next_state, float(self.rewards[action, state, next_state])


def value_iteration(
    mdp: FiniteMDP, tol: float = 1e-10, max_iter: int = 100_000
) -> tuple[np.ndarray, int]:
    """Solve Eq. (13) by fixed-point iteration.

    Returns ``(V*, iterations)``.  With gamma < 1 this is a gamma-
    contraction and converges geometrically; with gamma == 1 it is only
    guaranteed on proper (absorbing) MDPs and guarded by ``max_iter``.
    """
    if tol <= 0.0:
        raise ValueError("tol must be positive")
    exp_r = mdp.expected_reward()  # (A, S)
    v = np.zeros(mdp.n_states)
    for it in range(1, max_iter + 1):
        # Q(a, s) = E[r] + gamma * sum_{s'} P^a_{ss'} V(s')
        q = exp_r + mdp.gamma * np.einsum("ast,t->as", mdp.transitions, v)
        v_new = q.max(axis=0)
        if mdp.terminal is not None:
            v_new = np.where(mdp.terminal, 0.0, v_new)
        if np.max(np.abs(v_new - v)) < tol:
            return v_new, it
        v = v_new
    return v, max_iter


def q_from_v(mdp: FiniteMDP, v: np.ndarray) -> np.ndarray:
    """``(A, S)`` action values implied by a state-value table (Eq. 15)."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (mdp.n_states,):
        raise ValueError("v must have shape (S,)")
    return mdp.expected_reward() + mdp.gamma * np.einsum(
        "ast,t->as", mdp.transitions, v
    )


def greedy_policy(mdp: FiniteMDP, v: np.ndarray) -> np.ndarray:
    """Deterministic argmax policy over the Q table (Eq. 14)."""
    return q_from_v(mdp, v).argmax(axis=0)
