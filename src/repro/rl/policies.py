"""Action-selection policies over Q values.

The paper's Algorithm 4 is purely greedy (argmax Q).  Exploration
variants are standard practice in Q-routing, so the router accepts any
of these policies; all are pure functions of a Q vector plus a
generator, making them unit-testable in isolation.

* :class:`GreedyPolicy` — argmax with uniform random tie-breaking (the
  paper's rule);
* :class:`EpsilonGreedyPolicy` — explore uniformly with probability
  epsilon;
* :class:`SoftmaxPolicy` — Boltzmann exploration,
  ``P(a) ∝ exp(Q(a) / tau)``, numerically stabilised.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Policy", "GreedyPolicy", "EpsilonGreedyPolicy", "SoftmaxPolicy"]


class Policy(abc.ABC):
    """Maps a Q vector to a chosen action index."""

    @abc.abstractmethod
    def select(self, q: np.ndarray, rng: np.random.Generator | None = None) -> int:
        """Return the index of the chosen action.

        ``rng`` may be None, in which case the policy must behave
        deterministically (greedy policies take the first maximiser;
        stochastic policies fall back to greedy).
        """

    def select_batch(
        self, q: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Row-wise :meth:`select` over a ``(rows, actions)`` Q block.

        The default loops in row order so the generator stream is
        consumed exactly as the equivalent scalar calls would; policies
        whose draw pattern allows it override with a vectorized path.
        """
        q = np.asarray(q, dtype=np.float64)
        return np.fromiter(
            (self.select(q[i], rng) for i in range(q.shape[0])),
            dtype=np.intp,
            count=q.shape[0],
        )

    @staticmethod
    def _greedy(q: np.ndarray, rng: np.random.Generator | None) -> int:
        best = np.flatnonzero(q == q.max())
        if best.size == 1 or rng is None:
            return int(best[0])
        return int(rng.choice(best))


class GreedyPolicy(Policy):
    """argmax Q with random tie-breaking — Algorithm 4's rule."""

    def select(self, q: np.ndarray, rng: np.random.Generator | None = None) -> int:
        q = np.asarray(q, dtype=np.float64)
        if q.size == 0:
            raise ValueError("empty action set")
        return self._greedy(q, rng)

    def select_batch(
        self, q: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Vectorized argmax; the generator is consulted only for rows
        with tied maxima (in row order), exactly as the scalar rule
        draws — so batched and looped selection read identical streams."""
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 2 or q.shape[1] == 0:
            raise ValueError("empty action set")
        picks = q.argmax(axis=1).astype(np.intp)
        if rng is not None and q.shape[0]:
            maxima = q[np.arange(q.shape[0]), picks]
            tied = np.flatnonzero((q == maxima[:, None]).sum(axis=1) > 1)
            for i in tied:
                picks[i] = rng.choice(np.flatnonzero(q[i] == maxima[i]))
        return picks


class EpsilonGreedyPolicy(Policy):
    """Uniform exploration with probability epsilon, else greedy."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon

    def select(self, q: np.ndarray, rng: np.random.Generator | None = None) -> int:
        q = np.asarray(q, dtype=np.float64)
        if q.size == 0:
            raise ValueError("empty action set")
        if rng is not None and self.epsilon > 0.0 and rng.random() < self.epsilon:
            return int(rng.integers(q.size))
        return self._greedy(q, rng)


class SoftmaxPolicy(Policy):
    """Boltzmann exploration with temperature tau.

    tau -> 0 approaches greedy; large tau approaches uniform.  Uses the
    max-shifted exponent for numerical stability.
    """

    def __init__(self, temperature: float) -> None:
        if temperature <= 0.0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def probabilities(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if q.size == 0:
            raise ValueError("empty action set")
        z = (q - q.max()) / self.temperature
        p = np.exp(z)
        return p / p.sum()

    def select(self, q: np.ndarray, rng: np.random.Generator | None = None) -> int:
        if rng is None:
            return self._greedy(np.asarray(q, dtype=np.float64), rng)
        p = self.probabilities(q)
        return int(rng.choice(p.size, p=p))
