"""Reinforcement-learning substrate: finite MDPs, tabular Q-learning."""

from .agent import EpsilonSchedule, QLearningAgent, train_on_mdp
from .convergence import ConvergenceTracker
from .mdp import FiniteMDP, greedy_policy, q_from_v, value_iteration
from .policies import EpsilonGreedyPolicy, GreedyPolicy, Policy, SoftmaxPolicy
from .qtable import QTable, VTable

__all__ = [
    "ConvergenceTracker",
    "EpsilonSchedule",
    "EpsilonGreedyPolicy",
    "FiniteMDP",
    "GreedyPolicy",
    "Policy",
    "SoftmaxPolicy",
    "QLearningAgent",
    "QTable",
    "VTable",
    "greedy_policy",
    "q_from_v",
    "train_on_mdp",
    "value_iteration",
]
