"""Convergence tracking for value tables.

The paper's complexity result (Lemma 3, Theorem 3) is phrased in terms
of X — "the number of updates Q-learning needs to converge".  This
module measures X: it watches a value table and reports when successive
sweeps change by less than a tolerance, and for how long.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConvergenceTracker"]


class ConvergenceTracker:
    """Detects sup-norm convergence of a repeatedly-updated table.

    Parameters
    ----------
    tol:
        Convergence is declared when the sup-norm change between
        consecutive observed snapshots stays below ``tol`` for
        ``patience`` consecutive observations.
    patience:
        Number of consecutive sub-tolerance deltas required.
    """

    def __init__(self, tol: float = 1e-6, patience: int = 1) -> None:
        if tol <= 0.0:
            raise ValueError("tol must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.tol = tol
        self.patience = patience
        self._prev: np.ndarray | None = None
        self._streak = 0
        self.observations = 0
        self.converged_at: int | None = None
        self.deltas: list[float] = []

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    def observe(self, table: np.ndarray) -> float:
        """Record a snapshot; returns the sup-norm delta vs the previous
        one (inf for the first observation)."""
        snap = np.asarray(table, dtype=np.float64).copy()
        self.observations += 1
        if self._prev is None:
            self._prev = snap
            self.deltas.append(float("inf"))
            return float("inf")
        delta = float(np.max(np.abs(snap - self._prev)))
        self._prev = snap
        self.deltas.append(delta)
        if delta < self.tol:
            self._streak += 1
            if self._streak >= self.patience and self.converged_at is None:
                self.converged_at = self.observations
        else:
            self._streak = 0
            self.converged_at = None  # regression: un-declare convergence
        return delta

    def reset(self) -> None:
        self._prev = None
        self._streak = 0
        self.observations = 0
        self.converged_at = None
        self.deltas.clear()
