"""Tabular value storage for the QLEC routing layer.

The paper ("Analysis of QLEC", Lemma 3) describes "a matrix to store
the V values of each node in the network"; each Send-Data call updates
k+1 entries of it.  :class:`VTable` is that matrix: one V value per
network entity (every node plus the base station), with the update
count exposed so the O(kX) complexity claim can be measured directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VTable", "QTable"]


class VTable:
    """State-value table over the N nodes plus the base station.

    Index ``n`` (== number of nodes) addresses the base station.  All
    values initialise to zero, per §4.2 ("At the beginning, all the V
    values and Q values are initialized to 0").
    """

    BS_OFFSET = 1

    def __init__(self, n_nodes: int, bs_value: float = 0.0) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self._v = np.zeros(n_nodes + self.BS_OFFSET, dtype=np.float64)
        self._v[n_nodes] = bs_value
        self.n_nodes = n_nodes
        #: Total number of single-entry updates performed — the "X" of
        #: the paper's O(kX) running-time bound.
        self.update_count = 0

    @property
    def bs_index(self) -> int:
        return self.n_nodes

    @property
    def values(self) -> np.ndarray:
        v = self._v.view()
        v.flags.writeable = False
        return v

    def __getitem__(self, i: int) -> float:
        return float(self._v[i])

    def __setitem__(self, i: int, value: float) -> None:
        self._v[i] = value
        self.update_count += 1

    def get_many(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized gather (used by the Q backup over all CHs)."""
        return self._v[np.asarray(idx)]

    def set_many(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Vectorized scatter; counts one update per entry (indices
        must be unique so the batch equals the sequential writes)."""
        idx = np.asarray(idx)
        self._v[idx] = values
        self.update_count += idx.size

    def reset(self) -> None:
        self._v[:] = 0.0
        self.update_count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VTable(n={self.n_nodes}, updates={self.update_count}, "
            f"range=[{self._v.min():.4g}, {self._v.max():.4g}])"
        )


class QTable:
    """Dense state-action value table for the generic learning agent.

    Used by the sampled-TD Q-learning agent (:mod:`repro.rl.agent`) and
    by tests that cross-check against value iteration.  The WSN routing
    layer itself recomputes Q on the fly from :class:`VTable` (the
    paper's Algorithm 4 does the same), so this class stays generic.
    """

    def __init__(self, n_states: int, n_actions: int, initial: float = 0.0) -> None:
        if n_states < 1 or n_actions < 1:
            raise ValueError("n_states and n_actions must be >= 1")
        self._q = np.full((n_states, n_actions), initial, dtype=np.float64)
        self.update_count = 0

    @property
    def values(self) -> np.ndarray:
        v = self._q.view()
        v.flags.writeable = False
        return v

    @property
    def n_states(self) -> int:
        return self._q.shape[0]

    @property
    def n_actions(self) -> int:
        return self._q.shape[1]

    def get(self, state: int, action: int) -> float:
        return float(self._q[state, action])

    def row(self, state: int) -> np.ndarray:
        v = self._q[state].view()
        v.flags.writeable = False
        return v

    def set(self, state: int, action: int, value: float) -> None:
        self._q[state, action] = value
        self.update_count += 1

    def best_action(self, state: int, rng: np.random.Generator | None = None) -> int:
        """Greedy action with uniform random tie-breaking (ties are
        common right after zero initialisation)."""
        row = self._q[state]
        best = np.flatnonzero(row == row.max())
        if best.size == 1 or rng is None:
            return int(best[0])
        return int(rng.choice(best))

    def v(self) -> np.ndarray:
        """Implied state values, ``V(s) = max_a Q(s, a)`` (Eq. 14)."""
        return self._q.max(axis=1)
