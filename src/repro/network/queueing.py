"""Finite FIFO buffers at cluster heads.

Paper §5.2 attributes packet loss to "the long queue at cluster heads"
under congestion: cluster heads have limited storage caches, and when
the offered load exceeds the service rate, arriving packets are
discarded.  This module implements that queueing substrate: a bounded
FIFO per cluster head, slot-based service, and latency accounting on
the queued :class:`~repro.network.packet.PacketRecord` rows.
"""

from __future__ import annotations

from collections import deque

from .packet import PacketRecord, PacketStatus

__all__ = ["CHQueue", "QueueBank"]


class CHQueue:
    """Bounded FIFO at one cluster head.

    Parameters
    ----------
    capacity:
        Maximum number of queued packets; an arrival beyond capacity is
        dropped (tail drop, matching the paper's "discarding more
        packets" under long queues).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._q: deque[PacketRecord] = deque()
        self.drops = 0
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def is_full(self) -> bool:
        return len(self._q) >= self.capacity

    def offer(self, packet: PacketRecord) -> bool:
        """Enqueue ``packet``; returns False (and marks it dropped) when
        the buffer is full."""
        if self.is_full:
            packet.status = PacketStatus.DROPPED_QUEUE
            self.drops += 1
            return False
        self._q.append(packet)
        self.peak_length = max(self.peak_length, len(self._q))
        return True

    def serve(self, max_packets: int) -> list[PacketRecord]:
        """Dequeue up to ``max_packets`` in FIFO order."""
        if max_packets < 0:
            raise ValueError("max_packets must be >= 0")
        out: list[PacketRecord] = []
        while self._q and len(out) < max_packets:
            out.append(self._q.popleft())
        return out

    def drain(self) -> list[PacketRecord]:
        """Remove and return every queued packet (end-of-round flush)."""
        out = list(self._q)
        self._q.clear()
        return out


class QueueBank:
    """The set of CH queues for one round, keyed by cluster-head index.

    Created fresh each round because cluster membership rotates; drop
    counters are rolled up into the round's packet stats before the
    bank is discarded.
    """

    def __init__(self, heads, capacity: int) -> None:
        self.capacity = capacity
        self._queues: dict[int, CHQueue] = {int(h): CHQueue(capacity) for h in heads}

    def __contains__(self, head: int) -> bool:
        return int(head) in self._queues

    def __getitem__(self, head: int) -> CHQueue:
        return self._queues[int(head)]

    def queues(self):
        return self._queues.items()

    @property
    def total_drops(self) -> int:
        return sum(q.drops for q in self._queues.values())

    @property
    def total_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def queue_length(self, head: int) -> int:
        """Current backlog at ``head`` (0 for unknown heads, so routing
        code can query optimistically)."""
        q = self._queues.get(int(head))
        return len(q) if q is not None else 0
