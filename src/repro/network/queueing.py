"""Array-backed FIFO substrate: source buffers and cluster-head queues.

Paper §5.2 attributes packet loss to "the long queue at cluster heads"
under congestion: cluster heads have limited storage caches, and when
the offered load exceeds the service rate, arriving packets are
discarded.  This module implements that queueing substrate on top of
the :class:`~repro.network.packet.PacketArena` — no per-packet Python
objects anywhere:

* :class:`SourceBuffers` — one FIFO per sensor holding its own unsent
  packets, threaded through the arena's intrusive ``nxt`` column so a
  whole slot's head-of-line peeks/pops are single vectorized gathers;
* :class:`QueueBank` — this round's bounded cluster-head queues as one
  2-D ring buffer of arena indices with O(1) cached lengths.

Drop accounting lives exclusively in
:class:`~repro.network.packet.PacketStats` (the engine counts each
rejection once); the queues themselves keep no drop counters.
"""

from __future__ import annotations

import numpy as np

from .packet import PacketArena

__all__ = ["SourceBuffers", "QueueBank", "utilization"]


def utilization(lengths: np.ndarray, capacity: int) -> np.ndarray:
    """Backlog as a fraction of configured capacity, per queue.

    The telemetry layer observes this over each round's peak backlogs
    (``QueueBank.peak_lengths``): a sweep whose utilization gauge sits
    near 1.0 is queue-limited and more CH capacity (or service rate)
    would move its delivery rate; near 0.0 the queues are irrelevant
    and drops are channel- or liveness-bound.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    if capacity <= 0:
        return np.zeros_like(lengths)
    return lengths / float(capacity)


def _run_ranks(sorted_vals: np.ndarray) -> np.ndarray:
    """0-based rank of each element within its run of equal values
    (``sorted_vals`` must be sorted)."""
    n = sorted_vals.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = sorted_vals[1:] != sorted_vals[:-1]
    run_starts = np.flatnonzero(change)
    run_lens = np.diff(np.append(run_starts, n))
    return np.arange(n, dtype=np.int64) - np.repeat(run_starts, run_lens)


def _group_offsets(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for every count c (vectorized)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


class SourceBuffers:
    """Per-node FIFO of each sensor's own unsent packets.

    The queues are intrusive linked lists through the arena's ``nxt``
    column: only three ``(N,)`` arrays of state (head, tail, length)
    exist no matter how deep the backlogs get, and the engine's
    per-slot head-of-line peek / pop across all senders is one fancy
    index each.
    """

    def __init__(self, n_nodes: int, arena: PacketArena) -> None:
        self.arena = arena
        self._head = np.full(n_nodes, -1, dtype=np.int64)
        self._tail = np.full(n_nodes, -1, dtype=np.int64)
        self.lengths = np.zeros(n_nodes, dtype=np.int64)

    @property
    def total(self) -> int:
        return int(self.lengths.sum())

    def indices(self, node: int) -> list[int]:
        """FIFO-order arena indices queued at ``node`` (debug/tests)."""
        out: list[int] = []
        i = int(self._head[node])
        while i >= 0:
            out.append(i)
            i = int(self.arena.nxt[i])
        return out

    def push_batch(self, nodes: np.ndarray, idx: np.ndarray) -> None:
        """Append packet ``idx[j]`` to ``nodes[j]``'s buffer, in order.

        ``nodes`` must be sorted ascending (runs of equal nodes append
        in the order given — the engine's canonical order).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        if nodes.size == 0:
            return
        nxt = self.arena.nxt
        nxt[idx] = -1
        same = nodes[1:] == nodes[:-1]
        # Chain consecutive packets of the same node.
        nxt[idx[:-1][same]] = idx[1:][same]
        starts = np.empty(nodes.size, dtype=bool)
        starts[0] = True
        starts[1:] = ~same
        ends = np.empty(nodes.size, dtype=bool)
        ends[-1] = True
        ends[:-1] = ~same
        run_nodes = nodes[starts]
        run_first = idx[starts]
        run_last = idx[ends]
        run_counts = np.flatnonzero(ends) - np.flatnonzero(starts) + 1
        old_tail = self._tail[run_nodes]
        has_tail = old_tail >= 0
        nxt[old_tail[has_tail]] = run_first[has_tail]
        self._head[run_nodes[~has_tail]] = run_first[~has_tail]
        self._tail[run_nodes] = run_last
        self.lengths[run_nodes] += run_counts

    def peek(self, nodes: np.ndarray) -> np.ndarray:
        """Head-of-line arena index per node (nodes must be non-empty
        buffers)."""
        return self._head[nodes]

    def pop(self, nodes: np.ndarray) -> np.ndarray:
        """Remove and return the head-of-line packet of each node
        (``nodes`` unique, each with a non-empty buffer)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        h = self._head[nodes]
        nxt = self.arena.nxt[h]
        self._head[nodes] = nxt
        self.lengths[nodes] -= 1
        emptied = nxt < 0
        self._tail[nodes[emptied]] = -1
        return h


class QueueBank:
    """This round's cluster-head queues as one 2-D ring buffer.

    Created fresh each round because cluster membership rotates.  Row j
    of the ring holds arena indices queued at ``heads[j]``; ``lengths``
    is the O(1) backlog vector the relay-choice batch reads once per
    slot.  The ring starts narrow and widens lazily (doubling, capped
    at ``capacity``) so a generous configured capacity costs no memory
    until congestion actually builds queues.

    Rejections are reported to the caller via :meth:`offer_batch`'s
    acceptance mask; the bank itself counts nothing —
    :class:`~repro.network.packet.PacketStats` is the single source of
    truth for drops.
    """

    _INITIAL_WIDTH = 64

    def __init__(self, heads, capacity: int, n_nodes: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        heads = np.asarray(heads, dtype=np.int64).ravel()
        self.heads = heads
        self.capacity = int(capacity)
        k = heads.size
        self.k = k
        # Node -> queue position lookup (covers the BS sentinel at N).
        self._pos = np.full(n_nodes + 1, -1, dtype=np.int64)
        if k:
            self._pos[heads] = np.arange(k, dtype=np.int64)
        width = min(self.capacity, self._INITIAL_WIDTH)
        self._ring = np.full((k, width), -1, dtype=np.int64)
        self._start = np.zeros(k, dtype=np.int64)
        self._len = np.zeros(k, dtype=np.int64)
        self._peak = np.zeros(k, dtype=np.int64)

    # -- inspection ----------------------------------------------------
    def __contains__(self, head: int) -> bool:
        head = int(head)
        return 0 <= head < self._pos.size and self._pos[head] >= 0

    def position(self, targets: np.ndarray) -> np.ndarray:
        """Queue position per target node; -1 for non-heads / the BS."""
        return self._pos[targets]

    @property
    def lengths(self) -> np.ndarray:
        """Current backlog per head, aligned with ``heads`` (copy)."""
        return self._len.copy()

    @property
    def peak_lengths(self) -> np.ndarray:
        """High-water backlog per head across the round (copy)."""
        return self._peak.copy()

    @property
    def total_queued(self) -> int:
        return int(self._len.sum())

    def queue_length(self, head: int) -> int:
        """Current backlog at ``head`` (0 for unknown heads, so routing
        code can query optimistically)."""
        head = int(head)
        if not 0 <= head < self._pos.size:
            return 0
        p = self._pos[head]
        return int(self._len[p]) if p >= 0 else 0

    # -- mutation ------------------------------------------------------
    def _gather(self, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """First ``m[j]`` queued indices of each queue, FIFO order.
        Returns ``(queue_position_per_packet, arena_index_per_packet)``."""
        total = int(m.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        pos_rep = np.repeat(np.arange(self.k, dtype=np.int64), m)
        offs = _group_offsets(m)
        slot = (self._start[pos_rep] + offs) % self._ring.shape[1]
        return pos_rep, self._ring[pos_rep, slot]

    def _ensure_width(self, needed: int) -> None:
        w = self._ring.shape[1]
        if needed <= w:
            return
        new_w = min(self.capacity, max(needed, 2 * w, 8))
        new_ring = np.full((self.k, new_w), -1, dtype=np.int64)
        pos_rep, idx = self._gather(self._len)
        if idx.size:
            new_ring[pos_rep, _group_offsets(self._len)] = idx
        self._ring = new_ring
        self._start[:] = 0

    def offer_batch(self, pos: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Enqueue packets ``idx`` at queue positions ``pos`` (sorted
        ascending); returns the acceptance mask.

        Within one batch, earlier entries win the remaining capacity
        (tail drop beyond it) — the caller's ordering is the contention
        order.
        """
        pos = np.asarray(pos, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        if pos.size == 0:
            return np.empty(0, dtype=bool)
        rank = _run_ranks(pos)
        accepted = rank < (self.capacity - self._len)[pos]
        apos = pos[accepted]
        if apos.size == 0:
            return accepted
        acc_counts = np.bincount(apos, minlength=self.k)
        new_len = self._len + acc_counts
        self._ensure_width(int(new_len.max()))
        w = self._ring.shape[1]
        slot = (self._start[apos] + self._len[apos] + rank[accepted]) % w
        self._ring[apos, slot] = idx[accepted]
        self._len = new_len
        np.maximum(self._peak, new_len, out=self._peak)
        return accepted

    def serve_batch(
        self, rate: int, serve_mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dequeue up to ``rate`` packets per queue in FIFO order
        (queues where ``serve_mask`` is False are skipped).  Returns
        ``(queue_position_per_packet, arena_index_per_packet)``."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        m = np.minimum(self._len, rate)
        if serve_mask is not None:
            m = np.where(serve_mask, m, 0)
        pos_rep, idx = self._gather(m)
        if idx.size:
            self._start = (self._start + m) % self._ring.shape[1]
            self._len = self._len - m
        return pos_rep, idx

    def drain_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return everything still queued (end-of-round
        flush)."""
        pos_rep, idx = self._gather(self._len)
        self._len[:] = 0
        self._start[:] = 0
        return pos_rep, idx
