"""Node mobility models.

The paper's stated reason for round-based re-election is mobility: "As a
result of the mobility of wireless sensor networks, DEEC algorithm is
conducted through successive rounds to dynamically select nodes..."
(§3.1).  Its evaluation keeps nodes static, so mobility here is an
*extension*: two standard models, applied by the engine between rounds,
with positions clamped to the deployment volume.

* :class:`RandomWaypoint` — each node picks a uniform waypoint, moves
  toward it at a per-node speed, pauses, repeats.  The classic ad-hoc
  evaluation model.
* :class:`GaussMarkov` — temporally correlated velocity
  (``v' = a v + (1 - a) v_mean + sigma sqrt(1 - a^2) w``), which avoids
  random-waypoint's sharp turns; suited to drifting underwater nodes.

Both are vectorized over the population and draw from a dedicated
generator stream so mobility never perturbs traffic or channel draws.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["MobilityModel", "RandomWaypoint", "GaussMarkov", "MobilityConfig",
           "build_mobility"]


@dataclass(frozen=True)
class MobilityConfig:
    """Declarative mobility selection for :class:`SimulationConfig`.

    Attributes
    ----------
    model:
        ``"random_waypoint"`` or ``"gauss_markov"``.
    speed:
        Mean node speed in meters per *round*.
    """

    model: str = "random_waypoint"
    speed: float = 5.0
    #: Random-waypoint pause, in rounds, after reaching a waypoint.
    pause_rounds: int = 0
    #: Gauss-Markov memory parameter in [0, 1): 0 = Brownian, ->1 =
    #: near-constant velocity.
    memory: float = 0.75

    def __post_init__(self) -> None:
        if self.model not in ("random_waypoint", "gauss_markov"):
            raise ValueError("model must be 'random_waypoint' or 'gauss_markov'")
        if self.speed < 0.0:
            raise ValueError("speed must be >= 0")
        if self.pause_rounds < 0:
            raise ValueError("pause_rounds must be >= 0")
        if not 0.0 <= self.memory < 1.0:
            raise ValueError("memory must lie in [0, 1)")


class MobilityModel(abc.ABC):
    """One step of motion per simulation round."""

    def __init__(self, side: float, rng: np.random.Generator) -> None:
        if side <= 0.0:
            raise ValueError("side must be positive")
        self.side = side
        self.rng = rng

    @abc.abstractmethod
    def step(self, positions: np.ndarray, moving: np.ndarray) -> np.ndarray:
        """Return updated positions.

        Parameters
        ----------
        positions:
            Current ``(N, 3)`` coordinates (not mutated).
        moving:
            Boolean mask of nodes allowed to move (dead nodes hold
            their last position).
        """

    def _clamp(self, positions: np.ndarray) -> np.ndarray:
        return np.clip(positions, 0.0, self.side)


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint with per-node speeds U(0.5, 1.5)*speed."""

    def __init__(
        self,
        side: float,
        rng: np.random.Generator,
        speed: float = 5.0,
        pause_rounds: int = 0,
    ) -> None:
        super().__init__(side, rng)
        if speed < 0.0:
            raise ValueError("speed must be >= 0")
        self.speed = speed
        self.pause_rounds = pause_rounds
        self._targets: np.ndarray | None = None
        self._speeds: np.ndarray | None = None
        self._pause_left: np.ndarray | None = None

    def _init_state(self, n: int) -> None:
        self._targets = self.rng.uniform(0.0, self.side, size=(n, 3))
        self._speeds = self.speed * self.rng.uniform(0.5, 1.5, size=n)
        self._pause_left = np.zeros(n, dtype=np.int64)

    def step(self, positions: np.ndarray, moving: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        n = positions.shape[0]
        if self._targets is None:
            self._init_state(n)
        out = positions.copy()
        delta = self._targets - positions
        dist = np.linalg.norm(delta, axis=1)
        paused = self._pause_left > 0
        self._pause_left[paused] -= 1
        active = moving & ~paused
        # Arrivals: pick a new waypoint (and optionally pause).
        arrived = active & (dist <= self._speeds)
        if arrived.any():
            out[arrived] = self._targets[arrived]
            idx = np.flatnonzero(arrived)
            self._targets[idx] = self.rng.uniform(0.0, self.side, size=(idx.size, 3))
            self._speeds[idx] = self.speed * self.rng.uniform(0.5, 1.5, size=idx.size)
            self._pause_left[idx] = self.pause_rounds
        # Cruisers: advance along the bearing.
        cruising = active & ~arrived & (dist > 0)
        if cruising.any():
            step = (
                delta[cruising]
                / dist[cruising, None]
                * self._speeds[cruising, None]
            )
            out[cruising] = positions[cruising] + step
        return self._clamp(out)


class GaussMarkov(MobilityModel):
    """Temporally correlated velocities; reflects at the boundary."""

    def __init__(
        self,
        side: float,
        rng: np.random.Generator,
        speed: float = 5.0,
        memory: float = 0.75,
    ) -> None:
        super().__init__(side, rng)
        if speed < 0.0:
            raise ValueError("speed must be >= 0")
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must lie in [0, 1)")
        self.speed = speed
        self.memory = memory
        self._velocity: np.ndarray | None = None

    def step(self, positions: np.ndarray, moving: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        n = positions.shape[0]
        if self._velocity is None:
            self._velocity = self.rng.normal(
                0.0, self.speed / np.sqrt(3.0), size=(n, 3)
            )
        a = self.memory
        sigma = self.speed / np.sqrt(3.0)
        noise = self.rng.normal(0.0, sigma * np.sqrt(1 - a * a), size=(n, 3))
        self._velocity = a * self._velocity + noise
        out = positions.copy()
        out[moving] += self._velocity[moving]
        # Reflect at the walls, flipping the offending velocity axis.
        for axis in range(3):
            low = out[:, axis] < 0.0
            high = out[:, axis] > self.side
            out[low, axis] = -out[low, axis]
            out[high, axis] = 2 * self.side - out[high, axis]
            flip = low | high
            self._velocity[flip, axis] = -self._velocity[flip, axis]
        return self._clamp(out)


def build_mobility(
    config: MobilityConfig, side: float, rng: np.random.Generator
) -> MobilityModel:
    """Instantiate the model a :class:`MobilityConfig` describes."""
    if config.model == "random_waypoint":
        return RandomWaypoint(
            side, rng, speed=config.speed, pause_rounds=config.pause_rounds
        )
    return GaussMarkov(side, rng, speed=config.speed, memory=config.memory)
