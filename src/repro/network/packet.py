"""Packet representation and lifecycle bookkeeping.

Packets are the unit of the paper's three headline metrics: delivery
rate (delivered / generated), energy (joules spent moving them), and
latency (slots between generation and arrival at the BS).  Rather than
one Python object per packet on the hot path, the simulator tracks
per-round *counts* and uses :class:`PacketRecord` rows only where the
latency distribution is needed (CH queues are short, so the overhead is
negligible and profiling confirmed counts dominate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["PacketStatus", "PacketRecord", "PacketStats"]


class PacketStatus(enum.Enum):
    """Terminal states a packet can reach."""

    IN_FLIGHT = "in_flight"
    DELIVERED = "delivered"
    DROPPED_CHANNEL = "dropped_channel"     # lossy link, no ACK
    DROPPED_QUEUE = "dropped_queue"         # CH buffer overflow
    DROPPED_DEAD = "dropped_dead"           # source or relay died
    EXPIRED = "expired"                     # still queued at round end


@dataclass
class PacketRecord:
    """One packet's journey, used for latency accounting.

    Attributes
    ----------
    source:
        Originating node index.
    born_slot:
        Absolute slot index (round * slots_per_round + slot) when the
        packet was generated.
    hops:
        Number of radio hops taken so far.
    """

    source: int
    born_slot: int
    hops: int = 0
    status: PacketStatus = PacketStatus.IN_FLIGHT
    delivered_slot: int | None = None
    #: Link-layer retransmissions already spent on this packet.
    retries: int = 0

    def latency(self) -> int | None:
        """Slots from generation to BS arrival; None if undelivered."""
        if self.delivered_slot is None:
            return None
        return self.delivered_slot - self.born_slot


@dataclass
class PacketStats:
    """Aggregate packet counters for a simulation (or one round)."""

    generated: int = 0
    delivered: int = 0
    dropped_channel: int = 0
    dropped_queue: int = 0
    dropped_dead: int = 0
    expired: int = 0
    total_latency_slots: int = 0
    total_hops: int = 0
    latencies: list[int] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        return (
            self.dropped_channel
            + self.dropped_queue
            + self.dropped_dead
            + self.expired
        )

    @property
    def delivery_rate(self) -> float:
        """Packet delivery rate; defined as 1.0 for a silent network so
        an idle round never reads as lossy."""
        if self.generated == 0:
            return 1.0
        return self.delivered / self.generated

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency in slots (0.0 when nothing delivered)."""
        if self.delivered == 0:
            return 0.0
        return self.total_latency_slots / self.delivered

    @property
    def mean_hops(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.total_hops / self.delivered

    def record_delivery(self, latency_slots: int, hops: int) -> None:
        if latency_slots < 0:
            raise ValueError("latency cannot be negative")
        self.delivered += 1
        self.total_latency_slots += latency_slots
        self.total_hops += hops
        self.latencies.append(latency_slots)

    def merge(self, other: "PacketStats") -> None:
        """Fold ``other`` into this accumulator (round -> run rollup)."""
        self.generated += other.generated
        self.delivered += other.delivered
        self.dropped_channel += other.dropped_channel
        self.dropped_queue += other.dropped_queue
        self.dropped_dead += other.dropped_dead
        self.expired += other.expired
        self.total_latency_slots += other.total_latency_slots
        self.total_hops += other.total_hops
        self.latencies.extend(other.latencies)

    def validate(self) -> None:
        """Invariant: every generated packet reached exactly one
        terminal state (or is still in flight — not counted here)."""
        accounted = self.delivered + self.dropped
        if accounted > self.generated:
            raise AssertionError(
                f"packet accounting overflow: {accounted} terminal packets "
                f"but only {self.generated} generated"
            )
