"""Packet representation and lifecycle bookkeeping.

Packets are the unit of the paper's three headline metrics: delivery
rate (delivered / generated), energy (joules spent moving them), and
latency (slots between generation and arrival at the BS).

On the hot path the simulator does **not** allocate one Python object
per packet.  Packets live in a :class:`PacketArena` — a
structure-of-arrays pool with one numpy column per field
(source/born_slot/hops/retries/status/delivered_slot) plus an intrusive
``next`` link so per-node FIFO buffers can be threaded through the
arena without any container objects.  Rows of terminal packets return
to a free list and are reused, so a congested million-packet run keeps
a small, stable working set.

:class:`PacketRecord` survives as the *scalar snapshot* of one arena
row — handy in tests and debugging — and :class:`PacketStats` holds the
aggregate counters; its latency distribution is a bounded reservoir
sample (:class:`LatencyReservoir`) rather than an unbounded list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PacketStatus",
    "PacketRecord",
    "PacketArena",
    "LatencyReservoir",
    "PacketStats",
]


class PacketStatus(enum.Enum):
    """Terminal states a packet can reach."""

    IN_FLIGHT = "in_flight"
    DELIVERED = "delivered"
    DROPPED_CHANNEL = "dropped_channel"     # lossy link, no ACK
    DROPPED_QUEUE = "dropped_queue"         # CH buffer overflow
    DROPPED_DEAD = "dropped_dead"           # source or relay died
    EXPIRED = "expired"                     # still queued at round end

    @property
    def code(self) -> int:
        """Compact integer code used by the arena's status column."""
        return _STATUS_TO_CODE[self]

    @classmethod
    def from_code(cls, code: int) -> "PacketStatus":
        return _CODE_TO_STATUS[int(code)]


#: Arena status-column codes, one per :class:`PacketStatus` member.
_CODE_TO_STATUS: dict[int, PacketStatus] = dict(enumerate(PacketStatus))
_STATUS_TO_CODE: dict[PacketStatus, int] = {
    s: c for c, s in _CODE_TO_STATUS.items()
}


@dataclass
class PacketRecord:
    """One packet's journey, used for latency accounting.

    Attributes
    ----------
    source:
        Originating node index.
    born_slot:
        Absolute slot index (round * slots_per_round + slot) when the
        packet was generated.
    hops:
        Number of radio hops taken so far.
    """

    source: int
    born_slot: int
    hops: int = 0
    status: PacketStatus = PacketStatus.IN_FLIGHT
    delivered_slot: int | None = None
    #: Link-layer retransmissions already spent on this packet.
    retries: int = 0

    def latency(self) -> int | None:
        """Slots from generation to BS arrival; None if undelivered."""
        if self.delivered_slot is None:
            return None
        return self.delivered_slot - self.born_slot


class PacketArena:
    """Structure-of-arrays packet pool with free-list row reuse.

    Every live packet is a row index into parallel numpy columns; all
    per-packet mutation on the hot path is a vectorized column write.
    The ``nxt`` column is an intrusive singly-linked-list pointer used
    by :class:`~repro.network.queueing.SourceBuffers` to chain each
    node's FIFO through the arena (-1 terminates a chain).

    Rows are recycled: :meth:`free` pushes indices onto a LIFO free
    list and :meth:`alloc` pops from it before growing the columns, so
    steady-state traffic allocates no memory at all.
    """

    _GROW = 1024

    def __init__(self, initial_capacity: int = 1024) -> None:
        cap = max(int(initial_capacity), 1)
        self.source = np.zeros(cap, dtype=np.int64)
        self.born_slot = np.zeros(cap, dtype=np.int64)
        self.hops = np.zeros(cap, dtype=np.int64)
        self.retries = np.zeros(cap, dtype=np.int64)
        self.status = np.zeros(cap, dtype=np.int8)
        self.delivered_slot = np.full(cap, -1, dtype=np.int64)
        self.nxt = np.full(cap, -1, dtype=np.int64)
        self._free = np.empty(cap, dtype=np.int64)
        self._n_free = 0
        self._size = 0          # high-water mark of rows ever handed out
        self._n_live = 0

    # -- inspection ----------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.source.size

    @property
    def n_live(self) -> int:
        """Rows currently allocated (leak check: 0 after a full run)."""
        return self._n_live

    def record(self, idx: int) -> PacketRecord:
        """Scalar snapshot of one row (tests / debugging only)."""
        delivered = int(self.delivered_slot[idx])
        return PacketRecord(
            source=int(self.source[idx]),
            born_slot=int(self.born_slot[idx]),
            hops=int(self.hops[idx]),
            status=PacketStatus.from_code(int(self.status[idx])),
            delivered_slot=None if delivered < 0 else delivered,
            retries=int(self.retries[idx]),
        )

    # -- allocation ----------------------------------------------------
    def _grow_to(self, cap: int) -> None:
        old = self.capacity
        cap = max(cap, old * 2, self._GROW)
        for name in (
            "source", "born_slot", "hops", "retries",
            "status", "delivered_slot", "nxt",
        ):
            col = getattr(self, name)
            new = np.empty(cap, dtype=col.dtype)
            new[:old] = col
            setattr(self, name, new)
        free = np.empty(cap, dtype=np.int64)
        free[: self._n_free] = self._free[: self._n_free]
        self._free = free

    def alloc(self, sources: np.ndarray, born_slot: int) -> np.ndarray:
        """Allocate one row per entry of ``sources``; returns indices."""
        sources = np.asarray(sources, dtype=np.int64)
        m = sources.size
        idx = np.empty(m, dtype=np.int64)
        take = min(m, self._n_free)
        if take:
            # LIFO reuse keeps the working set hot in cache.
            idx[:take] = self._free[self._n_free - take: self._n_free][::-1]
            self._n_free -= take
        if take < m:
            need = m - take
            if self._size + need > self.capacity:
                self._grow_to(self._size + need)
            idx[take:] = np.arange(self._size, self._size + need, dtype=np.int64)
            self._size += need
        self.source[idx] = sources
        self.born_slot[idx] = born_slot
        self.hops[idx] = 0
        self.retries[idx] = 0
        self.status[idx] = PacketStatus.IN_FLIGHT.code
        self.delivered_slot[idx] = -1
        self.nxt[idx] = -1
        self._n_live += m
        return idx

    def free(self, idx: np.ndarray) -> None:
        """Return rows to the pool (their packets reached a terminal
        state and have been counted)."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return
        if self._n_free + idx.size > self._free.size:
            self._grow_to(self.capacity)  # free stack tracks capacity
        self._free[self._n_free: self._n_free + idx.size] = idx
        self._n_free += idx.size
        self._n_live -= idx.size

    # -- vectorized lifecycle writes -----------------------------------
    def mark(self, idx: np.ndarray, status: PacketStatus) -> None:
        self.status[idx] = status.code

    def latencies(self, idx: np.ndarray) -> np.ndarray:
        """delivered_slot - born_slot per row (rows must be delivered)."""
        return self.delivered_slot[idx] - self.born_slot[idx]


class LatencyReservoir:
    """Bounded uniform sample of a latency stream (Vitter's algorithm R).

    Keeps at most ``capacity`` values no matter how many deliveries a
    run records, so million-packet sweeps don't grow O(delivered)
    lists.  Exact count stays available (the mean uses the exact
    sum kept by :class:`PacketStats`); percentile consumers read the
    sample.  Replacement draws come from a dedicated fixed-seed
    generator, keeping results independent of the simulation's RNG
    streams and deterministic run-to-run.

    While fewer than ``capacity`` values have been seen the sample is
    the exact stream, so small runs (every tier-1 test) observe
    identical percentiles to the old unbounded list.
    """

    DEFAULT_CAPACITY = 4096
    _SEED = 0x51EC

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self._filled = 0
        self._sample = np.empty(capacity, dtype=np.int64)
        self._rng = np.random.default_rng(self._SEED)

    @property
    def values(self) -> np.ndarray:
        """The current sample (owned copy, insertion order)."""
        return self._sample[: self._filled].copy()

    def add_many(self, values: np.ndarray) -> None:
        v = np.asarray(values, dtype=np.int64).ravel()
        if v.size == 0:
            return
        fill = min(self.capacity - self._filled, v.size)
        if fill:
            self._sample[self._filled: self._filled + fill] = v[:fill]
            self._filled += fill
        rest = v[fill:]
        if rest.size:
            # Element j of `rest` is overall item number t_j (1-based);
            # it replaces a random slot with probability capacity / t_j.
            # Fancy assignment applies duplicates last-write-wins, which
            # matches sequential algorithm-R replacement order.
            t = self.count + fill + 1 + np.arange(rest.size, dtype=np.int64)
            draws = (self._rng.random(rest.size) * t).astype(np.int64)
            hit = draws < self.capacity
            self._sample[draws[hit]] = rest[hit]
        self.count += v.size

    def add(self, value: int) -> None:
        self.add_many(np.asarray([value]))

    def merge(self, other: "LatencyReservoir") -> None:
        """Fold another reservoir in.

        Exact while the union fits in ``capacity``; beyond that, a
        weighted subsample (each retained value stands for
        ``count / len(sample)`` stream items) approximates the pooled
        distribution deterministically.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._filled = other._filled
            self._sample[: self._filled] = other._sample[: self._filled]
            return
        if self._filled + other._filled <= self.capacity:
            self._sample[self._filled: self._filled + other._filled] = (
                other._sample[: other._filled]
            )
            self._filled += other._filled
            self.count += other.count
            return
        pooled = np.concatenate([self.values, other.values])
        weights = np.concatenate([
            np.full(self._filled, self.count / self._filled),
            np.full(other._filled, other.count / other._filled),
        ])
        pick = self._rng.choice(
            pooled.size, size=self.capacity, replace=False,
            p=weights / weights.sum(),
        )
        self._sample[:] = pooled[pick]
        self._filled = self.capacity
        self.count += other.count

    def __len__(self) -> int:
        return self._filled

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyReservoir):
            return NotImplemented
        return (
            self.capacity == other.capacity
            and self.count == other.count
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyReservoir(kept={self._filled}/{self.capacity}, "
            f"seen={self.count})"
        )


@dataclass
class PacketStats:
    """Aggregate packet counters for a simulation (or one round).

    This is the **single source of truth** for drop accounting: queue
    overflow, channel loss, dead-target loss, and expiry are counted
    here (and only here) by the engine; the queueing substrate keeps no
    shadow counters.
    """

    generated: int = 0
    delivered: int = 0
    dropped_channel: int = 0
    dropped_queue: int = 0
    dropped_dead: int = 0
    expired: int = 0
    total_latency_slots: int = 0
    total_hops: int = 0
    latency_sample: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def latencies(self) -> list[int]:
        """Sampled delivery latencies (exact below the reservoir cap)."""
        return [int(x) for x in self.latency_sample.values]

    @property
    def dropped(self) -> int:
        return (
            self.dropped_channel
            + self.dropped_queue
            + self.dropped_dead
            + self.expired
        )

    @property
    def delivery_rate(self) -> float:
        """Packet delivery rate; defined as 1.0 for a silent network so
        an idle round never reads as lossy."""
        if self.generated == 0:
            return 1.0
        return self.delivered / self.generated

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency in slots (0.0 when nothing delivered).
        Exact — computed from the full sum, not the sample."""
        if self.delivered == 0:
            return 0.0
        return self.total_latency_slots / self.delivered

    @property
    def mean_hops(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.total_hops / self.delivered

    def record_delivery(self, latency_slots: int, hops: int) -> None:
        if latency_slots < 0:
            raise ValueError("latency cannot be negative")
        self.delivered += 1
        self.total_latency_slots += latency_slots
        self.total_hops += hops
        self.latency_sample.add(latency_slots)

    def record_deliveries(self, latencies: np.ndarray, hops: np.ndarray) -> None:
        """Vectorized delivery rollup for a batch of packets."""
        latencies = np.asarray(latencies, dtype=np.int64)
        if latencies.size == 0:
            return
        if latencies.min() < 0:
            raise ValueError("latency cannot be negative")
        self.delivered += latencies.size
        self.total_latency_slots += int(latencies.sum())
        self.total_hops += int(np.asarray(hops, dtype=np.int64).sum())
        self.latency_sample.add_many(latencies)

    def merge(self, other: "PacketStats") -> None:
        """Fold ``other`` into this accumulator (round -> run rollup)."""
        self.generated += other.generated
        self.delivered += other.delivered
        self.dropped_channel += other.dropped_channel
        self.dropped_queue += other.dropped_queue
        self.dropped_dead += other.dropped_dead
        self.expired += other.expired
        self.total_latency_slots += other.total_latency_slots
        self.total_hops += other.total_hops
        self.latency_sample.merge(other.latency_sample)

    def validate(self) -> None:
        """Invariant: every generated packet reached exactly one
        terminal state (or is still in flight — not counted here)."""
        accounted = self.delivered + self.dropped
        if accounted > self.generated:
            raise AssertionError(
                f"packet accounting overflow: {accounted} terminal packets "
                f"but only {self.generated} generated"
            )
