"""Lossy wireless channel with ACK-based link-quality estimation.

The paper's §4.2: "Poor communication environment or limited storage
caches of cluster heads may lead to packet loss so P = 1 does not
always hold.  Similar to the mechanism adopted by TCP/IP protocol, an
ACK message will be delivered ... Hence, the link probability can be
estimated by the ratio between the successfully transmitted packets and
all the packets sent recently" (the QELAR/HyDRO estimator, ref. [2]).

We model the *physical* delivery probability of a link as a smooth,
distance-dependent curve — near-certain delivery well inside the
free-space regime, decaying beyond the crossover distance d0 — and give
every node an exponentially-weighted success-ratio estimator fed by
ACKs.  The estimator (not the ground truth) is what QLEC's Q backup
uses, exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..energy.radio import FirstOrderRadio

__all__ = ["delivery_probability", "Channel", "LinkEstimator"]


def delivery_probability(
    distance: np.ndarray | float,
    d0: float,
    floor: float = 0.05,
    sharpness: float = 2.0,
) -> np.ndarray | float:
    """Probability a single transmission over ``distance`` succeeds.

    A logistic-of-log-distance model: ~1 for d << d0, 0.5 at ``2 * d0``
    and approaching ``floor`` for very long links.  The exact curve is
    a modelling choice (the paper does not publish one); what matters
    for reproducing Fig. 3 is monotone decay with distance plus a
    non-zero far-field floor, which this provides.

    Parameters
    ----------
    distance:
        Link length(s), meters.
    d0:
        Free-space/multi-path crossover of the radio; the knee of the
        reliability curve is placed at ``2 * d0``.
    floor:
        Asymptotic far-field success probability.
    sharpness:
        Steepness of the logistic transition.
    """
    if d0 <= 0.0:
        raise ValueError("d0 must be positive")
    if not 0.0 <= floor < 1.0:
        raise ValueError("floor must lie in [0, 1)")
    d = np.asarray(distance, dtype=np.float64)
    if np.any(d < 0.0):
        raise ValueError("distance must be non-negative")
    knee = 2.0 * d0
    with np.errstate(divide="ignore"):
        x = np.where(d > 0.0, np.log(d / knee), -np.inf)
    p = floor + (1.0 - floor) / (1.0 + np.exp(sharpness * x * 4.0))
    # exp(-inf) -> 0 gives p = 1 at d = 0, as desired.
    if np.isscalar(distance) or getattr(distance, "ndim", 1) == 0:
        return float(p)
    return p


class LinkEstimator:
    """EWMA success-ratio estimator, one value per (node, target) pair.

    Mirrors the paper's ACK-ratio estimate: after each attempt the
    estimate moves toward 1 (ACK received) or 0 (timeout) with weight
    ``alpha``.  Unobserved links optimistically start at
    ``initial`` so fresh cluster heads are explored.
    """

    def __init__(
        self,
        n_nodes: int,
        n_targets: int,
        alpha: float = 0.2,
        initial: float = 1.0,
        shared: bool = False,
    ) -> None:
        if n_nodes < 1 or n_targets < 1:
            raise ValueError("n_nodes and n_targets must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial must lie in [0, 1]")
        self.alpha = alpha
        #: When True, an ACK outcome updates every sender's estimate of
        #: that target (the target's service ratio is effectively
        #: broadcast, e.g. piggybacked on its HELLO/ACK traffic).  This
        #: makes congestion at a head visible to all members at once;
        #: per-pair mode keeps the classical private estimate.
        self.shared = shared
        self._est = np.full((n_nodes, n_targets), initial, dtype=np.float64)

    @property
    def estimates(self) -> np.ndarray:
        v = self._est.view()
        v.flags.writeable = False
        return v

    def get(self, node: int, target: int) -> float:
        return float(self._est[node, target])

    def row(self, node: int) -> np.ndarray:
        """Estimates from ``node`` to every target (read-only)."""
        v = self._est[node].view()
        v.flags.writeable = False
        return v

    def update(self, node: int, target: int, success: bool) -> None:
        obs = 1.0 if success else 0.0
        if self.shared:
            col = self._est[:, target]
            col += self.alpha * (obs - col)
        else:
            self._est[node, target] += self.alpha * (
                obs - self._est[node, target]
            )


class Channel:
    """Ground-truth lossy channel: draws Bernoulli delivery outcomes.

    Also prices the energy of each attempt: the sender always pays the
    transmit energy (the radio does not know the packet will be lost);
    the receiver pays receive energy only on success.
    """

    def __init__(
        self,
        radio: FirstOrderRadio,
        rng: np.random.Generator,
        floor: float = 0.05,
        sharpness: float = 2.0,
        blackout: bool = False,
    ) -> None:
        self.radio = radio
        self.rng = rng
        self.floor = floor
        self.sharpness = sharpness
        #: Failure-injection switch: when True every transmission fails
        #: (used by fault tests; never enabled in experiments).
        self.blackout = blackout

    def success_probability(self, distance):
        """Vectorized ground-truth delivery probability."""
        return delivery_probability(
            distance, self.radio.d0, self.floor, self.sharpness
        )

    def attempt(self, distance: float) -> bool:
        """Simulate one transmission over ``distance``; True on ACK."""
        if self.blackout:
            return False
        p = self.success_probability(distance)
        return bool(self.rng.random() < p)

    def attempt_many(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized Bernoulli trials for a batch of links."""
        distances = np.asarray(distances, dtype=np.float64)
        if self.blackout:
            return np.zeros(distances.shape, dtype=bool)
        p = self.success_probability(distances)
        return self.rng.random(distances.shape) < p
