"""Lossy wireless channel with ACK-based link-quality estimation.

The paper's §4.2: "Poor communication environment or limited storage
caches of cluster heads may lead to packet loss so P = 1 does not
always hold.  Similar to the mechanism adopted by TCP/IP protocol, an
ACK message will be delivered ... Hence, the link probability can be
estimated by the ratio between the successfully transmitted packets and
all the packets sent recently" (the QELAR/HyDRO estimator, ref. [2]).

We model the *physical* delivery probability of a link as a smooth,
distance-dependent curve — near-certain delivery well inside the
free-space regime, decaying beyond the crossover distance d0 — and give
every node an exponentially-weighted success-ratio estimator fed by
ACKs.  The estimator (not the ground truth) is what QLEC's Q backup
uses, exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..energy.radio import FirstOrderRadio
from ..kernels import KernelBackend, default_backend

__all__ = ["delivery_probability", "Channel", "LinkEstimator"]


def delivery_probability(
    distance: np.ndarray | float,
    d0: float,
    floor: float = 0.05,
    sharpness: float = 2.0,
) -> np.ndarray | float:
    """Probability a single transmission over ``distance`` succeeds.

    A logistic-of-log-distance model: ~1 for d << d0, 0.5 at ``2 * d0``
    and approaching ``floor`` for very long links.  The exact curve is
    a modelling choice (the paper does not publish one); what matters
    for reproducing Fig. 3 is monotone decay with distance plus a
    non-zero far-field floor, which this provides.

    Parameters
    ----------
    distance:
        Link length(s), meters.
    d0:
        Free-space/multi-path crossover of the radio; the knee of the
        reliability curve is placed at ``2 * d0``.
    floor:
        Asymptotic far-field success probability.
    sharpness:
        Steepness of the logistic transition.
    """
    if d0 <= 0.0:
        raise ValueError("d0 must be positive")
    if not 0.0 <= floor < 1.0:
        raise ValueError("floor must lie in [0, 1)")
    d = np.asarray(distance, dtype=np.float64)
    if np.any(d < 0.0):
        raise ValueError("distance must be non-negative")
    knee = 2.0 * d0
    with np.errstate(divide="ignore"):
        x = np.where(d > 0.0, np.log(d / knee), -np.inf)
    p = floor + (1.0 - floor) / (1.0 + np.exp(sharpness * x * 4.0))
    # exp(-inf) -> 0 gives p = 1 at d = 0, as desired.
    if np.isscalar(distance) or getattr(distance, "ndim", 1) == 0:
        return float(p)
    return p


class LinkEstimator:
    """EWMA success-ratio estimator, one value per (node, target) pair.

    Mirrors the paper's ACK-ratio estimate: after each attempt the
    estimate moves toward 1 (ACK received) or 0 (timeout) with weight
    ``alpha``.  Unobserved links optimistically start at
    ``initial`` so fresh cluster heads are explored.
    """

    def __init__(
        self,
        n_nodes: int,
        n_targets: int,
        alpha: float = 0.2,
        initial: float = 1.0,
        shared: bool = False,
        kernels: KernelBackend | None = None,
    ) -> None:
        if n_nodes < 1 or n_targets < 1:
            raise ValueError("n_nodes and n_targets must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial must lie in [0, 1]")
        self.alpha = alpha
        self.kernels = kernels if kernels is not None else default_backend()
        #: Cached decay powers ``(1-a)^k`` for the batched fold, grown
        #: on demand; built with numpy's ``power`` on integer exponents
        #: so ``_pow_table[k] == (1-a)**k`` bitwise (the table is what
        #: compiled backends read instead of calling ``pow``).
        self._pow_table = np.power(1.0 - alpha, np.arange(1))
        #: When True, an ACK outcome updates every sender's estimate of
        #: that target (the target's service ratio is effectively
        #: broadcast, e.g. piggybacked on its HELLO/ACK traffic).  This
        #: makes congestion at a head visible to all members at once;
        #: per-pair mode keeps the classical private estimate.
        self.shared = shared
        self._n_nodes = n_nodes
        if shared:
            # Every node sees the same estimate of each target, so the
            # (n_nodes, n_targets) matrix is rank-1: store one row and
            # broadcast reads.  O(1) per column update instead of O(N).
            self._shared_row = np.full(n_targets, initial, dtype=np.float64)
            self._est = np.empty((0, n_targets), dtype=np.float64)
        else:
            self._est = np.full((n_nodes, n_targets), initial, dtype=np.float64)

    @property
    def estimates(self) -> np.ndarray:
        """Read-only ``(n_nodes, n_targets)`` view of the estimates
        (a broadcast view of the single stored row in shared mode)."""
        if self.shared:
            return np.broadcast_to(
                self._shared_row, (self._n_nodes, self._shared_row.size)
            )
        v = self._est.view()
        v.flags.writeable = False
        return v

    def get(self, node: int, target: int) -> float:
        if self.shared:
            return float(self._shared_row[target])
        return float(self._est[node, target])

    def row(self, node: int) -> np.ndarray:
        """Estimates from ``node`` to every target (read-only)."""
        v = (self._shared_row if self.shared else self._est[node]).view()
        v.flags.writeable = False
        return v

    def update(self, node: int, target: int, success: bool) -> None:
        obs = 1.0 if success else 0.0
        if self.shared:
            self._shared_row[target] += self.alpha * (
                obs - self._shared_row[target]
            )
        else:
            self._est[node, target] += self.alpha * (
                obs - self._est[node, target]
            )

    def update_batch(
        self, nodes: np.ndarray, targets: np.ndarray, successes: np.ndarray
    ) -> None:
        """Apply a batch of ACK outcomes in a single vectorized pass.

        In per-pair mode, unique ``(node, target)`` pairs (each sender
        transmits at most once per slot) are independent scatter
        writes; repeated pairs (the fusion uplink's frame bursts) fold
        into the closed form of m sequential EWMA steps,

            est' = (1-a)^m est + a * sum_j (1-a)^(m-1-j) obs_j,

        applied in the order given.  Shared mode folds the same way
        per target *column* (the engine's canonical sorted sender
        order).  The fold itself runs on the configured kernel backend
        (``self.kernels``); all backends are bit-identical to the numpy
        reference (:class:`repro.kernels.NumpyBackend` holds the
        defining implementation).
        """
        nodes = np.asarray(nodes, dtype=np.intp)
        targets = np.asarray(targets, dtype=np.intp)
        obs = np.asarray(successes, dtype=np.float64)
        if nodes.size == 0:
            return
        table = self._decay_table(nodes.size + 1)
        if not self.shared:
            self.kernels.ewma_fold_pairs(
                self._est, nodes, targets, obs, self.alpha, table
            )
            return
        self.kernels.ewma_fold_shared(
            self._shared_row, targets, obs, self.alpha, table
        )

    def _decay_table(self, size: int) -> np.ndarray:
        """Decay powers ``(1-a)^k`` for ``k < size`` (cached, grown
        monotonically).  Entry k is bitwise equal to ``(1.0-a) ** k``
        because it is produced by the same ufunc on the same integer
        exponent."""
        if self._pow_table.size < size:
            self._pow_table = np.power(1.0 - self.alpha, np.arange(size))
        return self._pow_table


class Channel:
    """Ground-truth lossy channel: draws Bernoulli delivery outcomes.

    Also prices the energy of each attempt: the sender always pays the
    transmit energy (the radio does not know the packet will be lost);
    the receiver pays receive energy only on success.
    """

    def __init__(
        self,
        radio: FirstOrderRadio,
        rng: np.random.Generator,
        floor: float = 0.05,
        sharpness: float = 2.0,
        blackout: bool = False,
        kernels: KernelBackend | None = None,
    ) -> None:
        self.radio = radio
        self.rng = rng
        self.floor = floor
        self.sharpness = sharpness
        self.kernels = kernels if kernels is not None else default_backend()
        #: Failure-injection switch: when True every transmission fails
        #: (driven by ``repro.faults`` blackout windows; never enabled
        #: in the paper's experiments).
        self.blackout = blackout
        #: Global delivery-probability multiplier (fault "degrade"
        #: windows).  1.0 — the permanent no-fault value — leaves the
        #: probability computation byte-identical to the unfaulted
        #: code path.
        self.degrade = 1.0
        #: Optional per-node delivery multiplier of shape
        #: ``(n_nodes + 1,)`` (fault "link_degrade": a failing radio
        #: taxes every link incident to the node; the BS entry stays
        #: 1.0).  None — the no-fault value — skips the lookup
        #: entirely.
        self.node_factor = None
        # Telemetry counters (None until bind_telemetry): attempts and
        # ACKs feed the link-level loss-rate view.  Checked once per
        # *batch*, not per packet, so the disabled cost is one branch.
        self._tel_attempts = None
        self._tel_acks = None

    def bind_telemetry(self, telemetry) -> None:
        """Route attempt/ACK counts into a telemetry registry
        (``channel/attempts``, ``channel/acks``)."""
        self._tel_attempts = telemetry.registry.counter("channel/attempts")
        self._tel_acks = telemetry.registry.counter("channel/acks")

    def success_probability(self, distance):
        """Vectorized ground-truth delivery probability."""
        return delivery_probability(
            distance, self.radio.d0, self.floor, self.sharpness
        )

    def attempt(
        self, distance: float, sender: int | None = None,
        target: int | None = None,
    ) -> bool:
        """Simulate one transmission over ``distance``; True on ACK.

        ``sender``/``target`` only matter under per-node degradation
        (``node_factor``); omitting them means neither endpoint's radio
        is faulted.
        """
        if self.blackout:
            ok = False
        else:
            p = self.success_probability(distance)
            if self.degrade != 1.0:
                p = p * self.degrade
            nf = self.node_factor
            if nf is not None:
                if sender is not None:
                    p = p * nf[sender]
                if target is not None:
                    p = p * nf[target]
            ok = bool(self.rng.random() < p)
        if self._tel_attempts is not None:
            self._tel_attempts.add(1)
            if ok:
                self._tel_acks.add(1)
        return ok

    def attempt_batch(
        self, distances: np.ndarray, senders: np.ndarray | None = None,
        targets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized Bernoulli trials for a batch of links.

        Consumes exactly ``distances.size`` uniforms in element order,
        so a batched attempt and the equivalent sequence of scalar
        :meth:`attempt` calls read the same generator stream.  The
        uniforms are always drawn here (stream determinism is never a
        backend concern); the backend supplies only the compare.
        Degradation (global or per endpoint via ``senders``/``targets``)
        scales the probabilities, never the draw count — faulted and
        unfaulted runs consume the channel stream identically.
        """
        distances = np.asarray(distances, dtype=np.float64)
        if self.blackout:
            out = np.zeros(distances.shape, dtype=bool)
        else:
            p = self.success_probability(distances)
            if self.degrade != 1.0:
                p = p * self.degrade
            nf = self.node_factor
            if nf is not None:
                if senders is not None:
                    p = p * nf[senders]
                if targets is not None:
                    p = p * nf[targets]
            out = self.kernels.bernoulli(p, self.rng.random(distances.shape))
        if self._tel_attempts is not None:
            self._tel_attempts.add(out.size)
            self._tel_acks.add(int(out.sum()))
        return out

    #: Backward-compatible alias for :meth:`attempt_batch`.
    attempt_many = attempt_batch
