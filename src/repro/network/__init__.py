"""Network substrate: nodes, deployments, geometry, channel, queues."""

from .channel import Channel, LinkEstimator, delivery_probability
from .deployment import (
    deploy,
    from_positions,
    mountain_terrain,
    underwater_column,
    uniform_cube,
)
from .node import BaseStation, Node, NodeArray
from .packet import (
    LatencyReservoir,
    PacketArena,
    PacketRecord,
    PacketStats,
    PacketStatus,
)
from .queueing import QueueBank, SourceBuffers
from .topology import Topology, distances_to_point, pairwise_distances

__all__ = [
    "BaseStation",
    "Channel",
    "LatencyReservoir",
    "LinkEstimator",
    "Node",
    "NodeArray",
    "PacketArena",
    "PacketRecord",
    "PacketStats",
    "PacketStatus",
    "QueueBank",
    "SourceBuffers",
    "Topology",
    "delivery_probability",
    "deploy",
    "distances_to_point",
    "from_positions",
    "mountain_terrain",
    "pairwise_distances",
    "underwater_column",
    "uniform_cube",
]
