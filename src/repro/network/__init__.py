"""Network substrate: nodes, deployments, geometry, channel, queues."""

from .channel import Channel, LinkEstimator, delivery_probability
from .deployment import (
    deploy,
    from_positions,
    mountain_terrain,
    underwater_column,
    uniform_cube,
)
from .node import BaseStation, Node, NodeArray
from .packet import PacketRecord, PacketStats, PacketStatus
from .queueing import CHQueue, QueueBank
from .topology import Topology, distances_to_point, pairwise_distances

__all__ = [
    "BaseStation",
    "CHQueue",
    "Channel",
    "LinkEstimator",
    "Node",
    "NodeArray",
    "PacketRecord",
    "PacketStats",
    "PacketStatus",
    "QueueBank",
    "Topology",
    "delivery_probability",
    "deploy",
    "distances_to_point",
    "from_positions",
    "mountain_terrain",
    "pairwise_distances",
    "underwater_column",
    "uniform_cube",
]
