"""Vectorized geometric queries over the node population.

Distance evaluation is the single hottest primitive in the simulator:
every cluster-formation step, every Q backup, and every HELLO broadcast
range check reduces to "distances from a set of nodes to a set of
points".  This module centralizes those kernels so they are computed
once per round and shared (views, not copies — see the HPC guides).
"""

from __future__ import annotations

import numpy as np

from .node import BaseStation, NodeArray

__all__ = [
    "pairwise_distances",
    "distances_to_point",
    "Topology",
]


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between row sets ``a`` (n,3) and ``b`` (m,3).

    Uses the expanded form ||a||^2 + ||b||^2 - 2 a.b so the dominant cost
    is one GEMM, with a clip guarding tiny negative round-off.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != 3 or b.shape[1] != 3:
        raise ValueError("inputs must have shape (n, 3) and (m, 3)")
    aa = np.einsum("ij,ij->i", a, a)
    bb = np.einsum("ij,ij->i", b, b)
    sq = aa[:, None] + bb[None, :] - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def distances_to_point(points: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Distances from each row of ``points`` to a single ``target``."""
    points = np.asarray(points, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if target.shape != (3,):
        raise ValueError("target must have shape (3,)")
    diff = points - target
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class Topology:
    """Precomputed geometry for one deployment.

    Caches the node->BS distance vector and lazily materializes the full
    node-node distance matrix only when a protocol actually needs it
    (k-means and FCM work on positions directly; QLEC only needs
    node->CH distances for the current CH set).
    """

    def __init__(self, nodes: NodeArray, bs: BaseStation) -> None:
        self.nodes = nodes
        self.bs = bs
        self._d_to_bs = distances_to_point(nodes.positions, bs.xyz)
        self._d_to_bs.flags.writeable = False
        self._full: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.nodes.n

    @property
    def d_to_bs(self) -> np.ndarray:
        """Read-only ``(N,)`` node -> base-station distances."""
        return self._d_to_bs

    @property
    def mean_d_to_bs(self) -> float:
        """Average node->BS distance; the paper (citing Bandyopadhyay &
        Coyle) approximates the CH->BS distance by this quantity."""
        return float(self._d_to_bs.mean())

    def full_matrix(self) -> np.ndarray:
        """Full ``(N, N)`` node-node distance matrix, computed once."""
        if self._full is None:
            p = self.nodes.positions
            self._full = pairwise_distances(p, p)
            self._full.flags.writeable = False
        return self._full

    def distances_to_subset(self, subset: np.ndarray) -> np.ndarray:
        """``(N, len(subset))`` distances from every node to the nodes in
        ``subset`` (e.g. the current cluster-head set)."""
        subset = np.asarray(subset)
        if subset.size == 0:
            return np.empty((self.n, 0), dtype=np.float64)
        if self._full is not None:
            return self._full[:, subset]
        p = self.nodes.positions
        return pairwise_distances(p, p[subset])

    def within_radius(self, center: int, radius: float) -> np.ndarray:
        """Indices of nodes within ``radius`` of node ``center``
        (excluding the center itself) — the HELLO broadcast footprint
        of Algorithm 2."""
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        d = self.distances_to_subset(np.asarray([center]))[:, 0]
        mask = d <= radius
        mask[center] = False
        return np.flatnonzero(mask)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(n={self.n}, mean_d_to_bs={self.mean_d_to_bs:.2f})"
