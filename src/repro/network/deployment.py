"""3-D node deployment generators.

The paper's headline scenario scatters N nodes uniformly in an
M x M x M cube (§5.1).  Its motivation section also names mountainous
and underwater settings, and §5.3 uses a geographic dataset with
synthetic heights.  Each of those deployments is reproduced here as a
generator returning a :class:`~repro.network.node.NodeArray` plus a
:class:`~repro.network.node.BaseStation`.

All generators take a :class:`numpy.random.Generator` so experiment
sweeps can spawn independent, reproducible streams per cell.
"""

from __future__ import annotations

import numpy as np

from ..config import DeploymentConfig
from .node import BaseStation, NodeArray

__all__ = [
    "uniform_cube",
    "mountain_terrain",
    "underwater_column",
    "from_positions",
    "heterogeneous_energies",
    "deploy",
]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def uniform_cube(
    n_nodes: int,
    side: float,
    initial_energy,
    rng: np.random.Generator | int | None = None,
    bs_position: tuple[float, float, float] | None = None,
) -> tuple[NodeArray, BaseStation]:
    """Uniform random placement in an ``side^3`` cube (paper §5.1).

    The base station defaults to the cube centre, per Figure 1.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if side <= 0.0:
        raise ValueError("side must be positive")
    gen = _rng(rng)
    positions = gen.uniform(0.0, side, size=(n_nodes, 3))
    bs = bs_position if bs_position is not None else (side / 2,) * 3
    return NodeArray(positions, initial_energy), BaseStation(tuple(bs))


def mountain_terrain(
    n_nodes: int,
    side: float,
    initial_energy,
    rng: np.random.Generator | int | None = None,
    n_peaks: int = 3,
    roughness: float = 0.15,
) -> tuple[NodeArray, BaseStation]:
    """Nodes draped over a synthetic mountainous surface.

    Models the paper's motivating "mountainous areas" scenario: (x, y)
    uniform over the footprint, z following a sum-of-Gaussian-peaks
    height field plus noise.  The base station sits on the highest
    sampled point (a realistic gateway placement on a summit).
    """
    if n_peaks < 1:
        raise ValueError("n_peaks must be >= 1")
    if not 0.0 <= roughness < 1.0:
        raise ValueError("roughness must lie in [0, 1)")
    gen = _rng(rng)
    xy = gen.uniform(0.0, side, size=(n_nodes, 2))
    peaks = gen.uniform(0.2 * side, 0.8 * side, size=(n_peaks, 2))
    heights = gen.uniform(0.4 * side, 0.9 * side, size=n_peaks)
    widths = gen.uniform(0.15 * side, 0.35 * side, size=n_peaks)
    # Height field: superposition of radial Gaussians, vectorized over
    # (nodes, peaks).
    d2 = ((xy[:, None, :] - peaks[None, :, :]) ** 2).sum(axis=2)
    z = (heights[None, :] * np.exp(-d2 / (2.0 * widths[None, :] ** 2))).max(axis=1)
    z = z + gen.normal(0.0, roughness * side * 0.05, size=n_nodes)
    z = np.clip(z, 0.0, side)
    positions = np.column_stack([xy, z])
    top = int(np.argmax(z))
    bs = tuple(positions[top] + np.array([0.0, 0.0, min(5.0, side * 0.02)]))
    return NodeArray(positions, initial_energy), BaseStation(bs)


def underwater_column(
    n_nodes: int,
    side: float,
    initial_energy,
    rng: np.random.Generator | int | None = None,
    surface_bias: float = 2.0,
) -> tuple[NodeArray, BaseStation]:
    """Underwater monitoring volume with a surface sink.

    Depth (z) follows a Beta-like density biased toward the surface —
    typical of underwater WSN deployments where instruments cluster in
    the photic zone — and the BS is a surface buoy at the footprint
    centre (the QELAR/HyDRO setting the paper cites).
    """
    if surface_bias <= 0.0:
        raise ValueError("surface_bias must be positive")
    gen = _rng(rng)
    xy = gen.uniform(0.0, side, size=(n_nodes, 2))
    depth_frac = gen.beta(1.0, surface_bias, size=n_nodes)
    z = side * (1.0 - depth_frac)  # z = side is the surface
    positions = np.column_stack([xy, z])
    bs = (side / 2.0, side / 2.0, side)
    return NodeArray(positions, initial_energy), BaseStation(bs)


def from_positions(
    positions: np.ndarray,
    initial_energy,
    bs_position: tuple[float, float, float],
) -> tuple[NodeArray, BaseStation]:
    """Wrap externally supplied coordinates (the §5.3 dataset path)."""
    return NodeArray(positions, initial_energy), BaseStation(tuple(bs_position))


def heterogeneous_energies(
    config: DeploymentConfig, rng: np.random.Generator
) -> np.ndarray:
    """Per-node initial energies under DEEC's two-level heterogeneity:
    a fraction ``m = advanced_fraction`` of nodes carries
    ``(1 + a) * E0`` with ``a = advanced_factor`` (Qing et al. 2006)."""
    energies = np.full(config.n_nodes, config.initial_energy)
    n_adv = int(round(config.advanced_fraction * config.n_nodes))
    if n_adv and config.advanced_factor > 0.0:
        advanced = rng.choice(config.n_nodes, size=n_adv, replace=False)
        energies[advanced] *= 1.0 + config.advanced_factor
    return energies


def deploy(
    config: DeploymentConfig, rng: np.random.Generator | int | None = None
) -> tuple[NodeArray, BaseStation]:
    """Materialize the deployment described by ``config``: a uniform
    cube, homogeneous by default, with DEEC's advanced-node
    heterogeneity when configured."""
    gen = _rng(rng)
    nodes, bs = uniform_cube(
        n_nodes=config.n_nodes,
        side=config.side,
        initial_energy=config.initial_energy,
        rng=gen,
        bs_position=config.bs,
    )
    if config.advanced_fraction > 0.0 and config.advanced_factor > 0.0:
        energies = heterogeneous_energies(config, gen)
        nodes = NodeArray(nodes.positions, energies)
    return nodes, bs
