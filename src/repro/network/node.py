"""Node population and base-station representation.

A :class:`NodeArray` is a struct-of-arrays view of the whole sensor
population — positions, initial energies, identifiers — so geometric
queries vectorize.  Scalar :class:`Node` views exist for ergonomic
access in examples and tests but are never used on simulation hot
paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Node", "BaseStation", "NodeArray"]


@dataclass(frozen=True)
class BaseStation:
    """The sink.  The paper places it at the cube centre (Fig. 1)."""

    position: tuple[float, float, float]

    @property
    def xyz(self) -> np.ndarray:
        return np.asarray(self.position, dtype=np.float64)


@dataclass(frozen=True)
class Node:
    """Scalar view of one sensor (for display/debug, not hot paths)."""

    node_id: int
    position: tuple[float, float, float]
    initial_energy: float

    @property
    def xyz(self) -> np.ndarray:
        return np.asarray(self.position, dtype=np.float64)


class NodeArray:
    """Immutable struct-of-arrays for N sensor nodes.

    Parameters
    ----------
    positions:
        ``(N, 3)`` float array of node coordinates.
    initial_energy:
        Either a scalar (homogeneous network, paper §5.1) or an
        ``(N,)`` array (heterogeneous, §5.3 dataset experiment).
    """

    def __init__(self, positions: np.ndarray, initial_energy) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (N, 3)")
        if positions.shape[0] == 0:
            raise ValueError("need at least one node")
        energy = np.broadcast_to(
            np.asarray(initial_energy, dtype=np.float64), (positions.shape[0],)
        ).copy()
        if np.any(energy <= 0.0):
            raise ValueError("initial energies must be positive")
        self._positions = positions.copy()
        self._positions.flags.writeable = False
        self._energy = energy
        self._energy.flags.writeable = False

    @property
    def n(self) -> int:
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Read-only ``(N, 3)`` coordinate array."""
        return self._positions

    @property
    def initial_energy(self) -> np.ndarray:
        """Read-only ``(N,)`` initial-energy array."""
        return self._energy

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> Node:
        if not -self.n <= i < self.n:
            raise IndexError(f"node index {i} out of range for {self.n} nodes")
        i = i % self.n
        return Node(
            node_id=i,
            position=tuple(self._positions[i]),
            initial_energy=float(self._energy[i]),
        )

    def __iter__(self):
        return (self[i] for i in range(self.n))

    def distances_to(self, point: np.ndarray) -> np.ndarray:
        """Euclidean distance from every node to ``point`` (shape (3,))."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (3,):
            raise ValueError("point must have shape (3,)")
        diff = self._positions - point
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeArray(n={self.n})"
