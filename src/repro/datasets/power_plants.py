"""Large-scale dataset substrate for the §5.3 experiment.

The paper drives its large-scale experiment with the Global Power Plant
Database [3]: 2896 plants in China, each with a generation capacity the
authors reuse as the node's (heterogeneous) initial energy, plus "a
randomly assigned height value to convert the 2-dimensional network
into a 3-dimensional one".

This environment has no network access, so :func:`synthetic_china_plants`
generates a statistically analogous dataset from scratch:

* positions drawn from a mixture of Gaussian population centres inside
  the China bounding box (power plants cluster around load centres —
  the eastern seaboard is over-weighted, as in the real data);
* capacities drawn from a log-normal (the real capacity distribution is
  heavy-tailed: many small hydro/solar plants, few GW-scale stations);
* heights uniform, exactly as the paper assigns them.

QLEC consumes only positions and initial energies, so any spatially
clustered, heterogeneous 2896-node instance exercises the identical
code path (see DESIGN.md, substitution 1).  :func:`load_power_plants`
will read a real Global Power Plant Database CSV instead whenever one
is available on disk.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass

import numpy as np

from ..network.node import BaseStation, NodeArray

__all__ = [
    "PowerPlantDataset",
    "synthetic_china_plants",
    "load_power_plants",
    "CHINA_BBOX",
]

#: (lon_min, lon_max, lat_min, lat_max) of mainland China, degrees.
CHINA_BBOX = (73.5, 135.0, 18.2, 53.5)

#: Approximate population/load centres (lon, lat, weight) used by the
#: synthetic generator.  Weights skew the mixture toward the east coast.
_CENTRES = [
    (116.4, 39.9, 3.0),   # Beijing / Hebei
    (121.5, 31.2, 3.0),   # Shanghai / Yangtze delta
    (113.3, 23.1, 3.0),   # Pearl river delta
    (104.1, 30.7, 2.0),   # Sichuan basin
    (114.3, 30.6, 2.0),   # Wuhan / central
    (108.9, 34.3, 1.5),   # Xi'an
    (126.6, 45.8, 1.5),   # Harbin / northeast
    (117.2, 39.1, 2.0),   # Tianjin
    (120.2, 30.3, 2.0),   # Hangzhou
    (106.5, 29.6, 1.5),   # Chongqing
    (112.9, 28.2, 1.5),   # Changsha
    (87.6, 43.8, 0.6),    # Urumqi / west
    (91.1, 29.7, 0.3),    # Lhasa
    (101.7, 36.6, 0.5),   # Xining
    (125.3, 43.9, 1.0),   # Changchun
]


@dataclass(frozen=True)
class PowerPlantDataset:
    """A set of plants: geographic coordinates plus capacity.

    Attributes
    ----------
    lon, lat:
        Degrees.
    capacity_mw:
        Generation capacity in megawatts (the heterogeneity source).
    height:
        Synthetic altitude in the same unit as the projected plane
        (assigned randomly, following the paper).
    """

    lon: np.ndarray
    lat: np.ndarray
    capacity_mw: np.ndarray
    height: np.ndarray

    def __post_init__(self) -> None:
        n = self.lon.shape[0]
        for name in ("lat", "capacity_mw", "height"):
            if getattr(self, name).shape != (n,):
                raise ValueError("all dataset columns must share one length")
        if np.any(self.capacity_mw <= 0):
            raise ValueError("capacities must be positive")

    @property
    def n(self) -> int:
        return self.lon.shape[0]

    # ------------------------------------------------------------------
    def projected_positions(self) -> np.ndarray:
        """Equirectangular projection to kilometres, with the synthetic
        height as the third coordinate (already km-scaled)."""
        lat0 = math.radians(float(self.lat.mean()))
        km_per_deg_lat = 111.32
        km_per_deg_lon = 111.32 * math.cos(lat0)
        x = (self.lon - self.lon.min()) * km_per_deg_lon
        y = (self.lat - self.lat.min()) * km_per_deg_lat
        return np.column_stack([x, y, self.height])

    def initial_energies(
        self, min_energy: float = 0.05, max_energy: float = 1.0
    ) -> np.ndarray:
        """Map capacities to initial battery energies in joules.

        Log-scaled min-max mapping: the smallest plant gets
        ``min_energy``, the largest ``max_energy``.  Log scaling keeps
        the heavy tail from collapsing everything else to the floor.
        """
        if not 0.0 < min_energy < max_energy:
            raise ValueError("need 0 < min_energy < max_energy")
        logc = np.log(self.capacity_mw)
        lo, hi = float(logc.min()), float(logc.max())
        if hi - lo < 1e-12:
            return np.full(self.n, (min_energy + max_energy) / 2.0)
        frac = (logc - lo) / (hi - lo)
        return min_energy + frac * (max_energy - min_energy)

    def to_network(
        self,
        side: float | None = None,
        min_energy: float = 0.05,
        max_energy: float = 1.0,
    ) -> tuple[NodeArray, BaseStation, np.ndarray]:
        """Build simulation inputs: nodes, a BS at the weighted centroid,
        and the heterogeneous initial-energy vector.

        Parameters
        ----------
        side:
            Optional rescale: positions are mapped into a cube of this
            side so the radio model's distance constants stay in their
            calibrated regime.  ``None`` keeps kilometre coordinates.
        """
        pos = self.projected_positions()
        if side is not None:
            if side <= 0.0:
                raise ValueError("side must be positive")
            span = pos.max(axis=0) - pos.min(axis=0)
            span[span == 0.0] = 1.0
            pos = (pos - pos.min(axis=0)) / span.max() * side
        energies = self.initial_energies(min_energy, max_energy)
        nodes = NodeArray(pos, energies)
        # The sink sits at the capacity-weighted centroid: the natural
        # placement for the aggregation point of a monitoring overlay.
        w = self.capacity_mw / self.capacity_mw.sum()
        bs = BaseStation(tuple(pos.T @ w))
        return nodes, bs, energies


def synthetic_china_plants(
    n: int = 2896, rng: np.random.Generator | int | None = None,
    max_height: float = 5.0,
) -> PowerPlantDataset:
    """Generate the synthetic stand-in for the paper's dataset.

    Parameters
    ----------
    n:
        Plant count; the paper's China subset has 2896.
    max_height:
        Upper bound of the uniform random height, in km (the paper just
        says "randomly assign a height value").
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    centres = np.asarray([(c[0], c[1]) for c in _CENTRES])
    weights = np.asarray([c[2] for c in _CENTRES])
    weights = weights / weights.sum()
    lon_min, lon_max, lat_min, lat_max = CHINA_BBOX

    choice = gen.choice(len(centres), size=n, p=weights)
    # Cluster spread ~ 3 degrees; a 15 % uniform background layer keeps
    # remote provinces populated (hydro in the west, etc.).
    lon = centres[choice, 0] + gen.normal(0.0, 3.0, size=n)
    lat = centres[choice, 1] + gen.normal(0.0, 2.2, size=n)
    background = gen.random(n) < 0.15
    n_bg = int(background.sum())
    if n_bg:
        lon[background] = gen.uniform(lon_min, lon_max, size=n_bg)
        lat[background] = gen.uniform(lat_min, lat_max, size=n_bg)
    lon = np.clip(lon, lon_min, lon_max)
    lat = np.clip(lat, lat_min, lat_max)

    # Log-normal capacities: median ~50 MW, occasional multi-GW plants,
    # clipped to the real database's plausible range.
    capacity = np.clip(gen.lognormal(mean=3.9, sigma=1.4, size=n), 1.0, 22_500.0)
    height = gen.uniform(0.0, max_height, size=n)
    return PowerPlantDataset(lon=lon, lat=lat, capacity_mw=capacity, height=height)


def load_power_plants(
    path: str | None = None,
    country: str = "CHN",
    n_fallback: int = 2896,
    rng: np.random.Generator | int | None = None,
) -> PowerPlantDataset:
    """Load the real Global Power Plant Database when available,
    otherwise fall back to the synthetic generator.

    Parameters
    ----------
    path:
        CSV path of the real database (columns ``country``,
        ``latitude``, ``longitude``, ``capacity_mw``).  ``None`` or a
        missing file selects the synthetic fallback.
    """
    if path is not None:
        try:
            lon, lat, cap = [], [], []
            with open(path, newline="", encoding="utf-8") as fh:
                for row in csv.DictReader(fh):
                    if row.get("country") != country:
                        continue
                    try:
                        lo = float(row["longitude"])
                        la = float(row["latitude"])
                        c = float(row["capacity_mw"])
                    except (KeyError, ValueError):
                        continue
                    if c <= 0:
                        continue
                    lon.append(lo)
                    lat.append(la)
                    cap.append(c)
            if lon:
                gen = (
                    rng
                    if isinstance(rng, np.random.Generator)
                    else np.random.default_rng(rng)
                )
                height = gen.uniform(0.0, 5.0, size=len(lon))
                return PowerPlantDataset(
                    lon=np.asarray(lon),
                    lat=np.asarray(lat),
                    capacity_mw=np.asarray(cap),
                    height=height,
                )
        except OSError:
            pass
    return synthetic_china_plants(n=n_fallback, rng=rng)
