"""Dataset substrates (the §5.3 large-scale experiment)."""

from .power_plants import (
    CHINA_BBOX,
    PowerPlantDataset,
    load_power_plants,
    synthetic_china_plants,
)

__all__ = [
    "CHINA_BBOX",
    "PowerPlantDataset",
    "load_power_plants",
    "synthetic_china_plants",
]
