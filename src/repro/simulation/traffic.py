"""Poisson traffic generation (paper §5.2).

"The packet generation time in the network follows the poisson
distribution.  lambda is the average packet inter-arrival time for the
network.  The smaller lambda is, the more congested the network is."

Each sensing node is an independent Poisson source with per-slot rate
``1 / lambda``; arrivals within a slot are drawn as a Poisson count
(the superposition/thinning-exact discretisation).  Generation is
vectorized across the whole population per slot.
"""

from __future__ import annotations

import numpy as np

from ..config import TrafficConfig

__all__ = ["PoissonTraffic"]


class PoissonTraffic:
    """Vectorized per-node Poisson packet source.

    Parameters
    ----------
    config:
        Traffic parameters (lambda, slots per round, payload bits).
    n_nodes:
        Population size.
    rng:
        Dedicated generator stream (so traffic is identical across
        protocols compared under the same master seed).
    """

    def __init__(
        self, config: TrafficConfig, n_nodes: int, rng: np.random.Generator
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.config = config
        self.n = n_nodes
        self.rng = rng
        self.total_generated = 0

    def arrivals(self, active: np.ndarray) -> np.ndarray:
        """Packet counts generated this slot.

        Parameters
        ----------
        active:
            Boolean mask of nodes that generate traffic this slot
            (alive non-CH sensing nodes; heads sense too in LEACH-family
            protocols but their samples fold into the fused uplink, so
            the engine passes non-CH nodes only).

        Returns
        -------
        ndarray
            ``(N,)`` integer arrival counts (zero outside ``active``).
        """
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.n,):
            raise ValueError("active mask must have shape (n_nodes,)")
        counts = np.zeros(self.n, dtype=np.int64)
        idx = np.flatnonzero(active)
        if idx.size:
            counts[idx] = self.rng.poisson(self.config.rate_per_slot, size=idx.size)
            self.total_generated += int(counts[idx].sum())
        return counts

    def expected_per_round(self, n_active: int) -> float:
        """Mean offered load (packets/round) for ``n_active`` sources."""
        return n_active * self.config.slots_per_round * self.config.rate_per_slot
