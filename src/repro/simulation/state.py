"""Shared mutable simulation state.

One :class:`NetworkState` instance is threaded through the engine and
the active protocol each round.  It owns the substrates every protocol
needs — geometry, batteries, channel, link estimates — so protocol
implementations stay pure strategies (a design choice that makes the
Fig. 3 comparison fair: every algorithm runs on byte-identical
machinery and RNG streams).

Index convention: nodes are ``0..N-1`` and the base station is
addressed as index ``N`` everywhere (V table, link estimator, relay
choices).
"""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..energy.battery import EnergyLedger
from ..energy.radio import FirstOrderRadio
from ..kernels import KernelBackend, default_backend
from ..network.channel import Channel, LinkEstimator
from ..network.deployment import deploy
from ..network.node import BaseStation, NodeArray
from ..network.topology import Topology

__all__ = ["NetworkState"]


class NetworkState:
    """Everything a protocol can observe and the engine mutates.

    Parameters
    ----------
    config:
        Scenario description.
    nodes, bs:
        Optional pre-built deployment (the dataset experiments build
        their own); when omitted the config's uniform cube is deployed.
    rng:
        The master random generator for this run.  All stochastic
        components (traffic, channel, protocol randomisation) draw from
        streams spawned off it, keeping runs reproducible.
    kernels:
        A resolved kernel backend shared by every substrate this state
        owns (ledger, channel, link estimator, geometry) and by the
        protocols' routers.  Defaults to the numpy reference; the
        engine resolves ``config.backend`` and passes the result.  All
        backends are bit-identical by contract.
    """

    def __init__(
        self,
        config: SimulationConfig,
        nodes: NodeArray | None = None,
        bs: BaseStation | None = None,
        rng: np.random.Generator | None = None,
        initial_energy: np.ndarray | None = None,
        kernels: KernelBackend | None = None,
    ) -> None:
        self.config = config
        self.kernels = kernels if kernels is not None else default_backend()
        master = rng if rng is not None else np.random.default_rng(config.seed)
        # Independent child streams: deployment, traffic, channel,
        # protocol, engine-internal tie-breaking, mobility, harvesting,
        # fault injection, and multi-hop routing.  spawn(9) yields the
        # same first eight children as spawn(8) did (spawn keys are
        # sequential), so adding the routing stream — like the fault
        # stream before it — left every existing golden trace
        # bit-identical.
        seeds = master.spawn(9)
        (self._deploy_rng, self.traffic_rng, channel_rng,
         self.protocol_rng, self.engine_rng,
         self.mobility_rng, self.harvest_rng, self.fault_rng,
         self.routing_rng) = seeds

        if nodes is None or bs is None:
            nodes, bs = deploy(config.deployment, self._deploy_rng)
        self.nodes = nodes
        self.bs = bs
        self.topology = Topology(nodes, bs)
        self.radio = FirstOrderRadio(config.radio)
        energies = (
            np.asarray(initial_energy, dtype=np.float64)
            if initial_energy is not None
            else nodes.initial_energy
        )
        self.ledger = EnergyLedger(
            energies,
            death_line=config.deployment.death_line,
            kernels=self.kernels,
        )
        self.channel = Channel(self.radio, channel_rng, kernels=self.kernels)
        # Targets: every node plus the base station (index N).
        self.link_estimator = LinkEstimator(
            nodes.n,
            nodes.n + 1,
            alpha=config.estimator_alpha,
            shared=config.estimator_shared,
            kernels=self.kernels,
        )
        self.round_index = 0
        #: Per-node round index at which the node was last a cluster
        #: head; -inf means never (drives the rotating-epoch rule).
        self.last_ch_round = np.full(nodes.n, -np.inf)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.nodes.n

    @property
    def bs_index(self) -> int:
        """Sentinel index addressing the base station."""
        return self.nodes.n

    @property
    def total_rounds(self) -> int:
        return self.config.rounds

    def alive_indices(self) -> np.ndarray:
        return np.flatnonzero(self.ledger.alive)

    def distance(self, node: int, target: int) -> float:
        """Distance from ``node`` to ``target`` (node index or BS sentinel)."""
        if target == self.bs_index:
            return float(self.topology.d_to_bs[node])
        return float(
            np.linalg.norm(
                self.nodes.positions[node] - self.nodes.positions[target]
            )
        )

    def distances_from(self, node: int, targets: np.ndarray) -> np.ndarray:
        """Vectorized distances from ``node`` to a target list that may
        include the BS sentinel."""
        targets = np.asarray(targets)
        out = np.empty(targets.size, dtype=np.float64)
        is_bs = targets == self.bs_index
        if is_bs.any():
            out[is_bs] = self.topology.d_to_bs[node]
        real = ~is_bs
        if real.any():
            diff = self.nodes.positions[targets[real]] - self.nodes.positions[node]
            out[real] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return out

    def distances_many(self, nodes: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Pairwise link lengths ``|nodes[i] -> targets[i]|`` where
        targets may include the BS sentinel (one slot's sender->relay
        links in a single call)."""
        nodes = np.asarray(nodes, dtype=np.intp)
        targets = np.asarray(targets, dtype=np.intp)
        out = np.empty(nodes.size, dtype=np.float64)
        is_bs = targets == self.bs_index
        if is_bs.any():
            out[is_bs] = self.topology.d_to_bs[nodes[is_bs]]
        real = ~is_bs
        if real.any():
            out[real] = self.kernels.distance_pairs(
                self.nodes.positions[nodes[real]],
                self.nodes.positions[targets[real]],
            )
        return out

    def distances_matrix(self, nodes: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Full ``(len(nodes), len(targets))`` distance block; targets
        may include the BS sentinel.  Elementwise identical to stacking
        :meth:`distances_from` per node (same einsum/sqrt pipeline), so
        batched relay scoring reproduces the scalar path bit-for-bit."""
        nodes = np.asarray(nodes, dtype=np.intp)
        targets = np.asarray(targets, dtype=np.intp)
        out = np.empty((nodes.size, targets.size), dtype=np.float64)
        is_bs = targets == self.bs_index
        if is_bs.any():
            out[:, is_bs] = self.topology.d_to_bs[nodes][:, None]
        real = ~is_bs
        if real.any():
            # Streamed over sender-row chunks when the config bounds the
            # block footprint (large-N runs); bit-identical to the
            # one-shot call for every chunk size, so the bitwise tier is
            # unaffected (see KernelBackend.distance_block_blocked).
            out[:, real] = self.kernels.distance_block_blocked(
                self.nodes.positions[nodes],
                self.nodes.positions[targets[real]],
                self.config.max_block_mb,
            )
        return out

    def average_energy_estimate(self) -> float:
        """Paper Eq. (2): linear-decay estimate of the network's average
        energy at the current round, ``E(r) = (1/N) E_init (1 - r/R)``.

        Note the estimate deliberately ignores the measured residuals —
        the paper introduces it "to reduce the time complexity"; the
        measured average is available as ``ledger.average_energy()``.
        """
        e_init_total = self.ledger.total_initial
        r, big_r = self.round_index, self.total_rounds
        return (e_init_total / self.n) * (1.0 - r / big_r)

    def memory_report(self) -> dict:
        """Dtype/footprint audit of the persistent per-node state.

        Large-N runs live or die by what scales with N (and what scales
        with N^2 — nothing here may, with the shared rank-1 link
        estimator).  Returns ``{"arrays": {name: {"dtype", "shape",
        "mbytes"}}, "resident_mb", "transient_block_mb"}`` where
        ``transient_block_mb`` is the peak distance-block temporary a
        slot can allocate under the config's ``max_block_mb`` budget
        (unbounded one-shot estimate when the budget is None).  The
        scale benchmark asserts against these numbers.
        """
        arrays: dict[str, np.ndarray] = {
            "positions": self.nodes.positions,
            "initial_energy": self.nodes.initial_energy,
            "residual": self.ledger.residual,
            "alive": self.ledger.alive,
            "d_to_bs": self.topology.d_to_bs,
            "link_estimates": self.link_estimator._est,
            "last_ch_round": self.last_ch_round,
        }
        if self.link_estimator.shared:
            arrays["link_shared_row"] = self.link_estimator._shared_row
        report = {
            name: {
                "dtype": str(a.dtype),
                "shape": tuple(a.shape),
                "mbytes": a.nbytes / 2**20,
            }
            for name, a in arrays.items()
        }
        budget = self.config.max_block_mb
        if budget is None:
            # Worst case: every node sends to every head at once.
            k = self.config.n_clusters or max(1, int(round(np.sqrt(self.n))))
            transient = 8 * self.n * k * 4 / 2**20
        else:
            transient = float(budget)
        return {
            "arrays": report,
            "resident_mb": sum(r["mbytes"] for r in report.values()),
            "transient_block_mb": transient,
        }

    def update_positions(self, positions: np.ndarray) -> None:
        """Replace node coordinates (mobility step) and rebuild the
        cached geometry.  Energies, liveness, link estimates, and V
        tables are identity-keyed and survive the move."""
        self.nodes = NodeArray(positions, self.nodes.initial_energy)
        self.topology = Topology(self.nodes, self.bs)

    def mark_cluster_heads(self, heads: np.ndarray) -> None:
        """Record head service for the rotating-epoch bookkeeping."""
        if np.asarray(heads).size:
            self.last_ch_round[np.asarray(heads)] = self.round_index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkState(n={self.n}, round={self.round_index}/"
            f"{self.total_rounds}, alive={self.ledger.n_alive})"
        )
