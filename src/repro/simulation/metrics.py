"""Per-round and whole-run metric collection.

The paper evaluates three headline indices — packet delivery rate,
total energy consumption, and network lifespan (Fig. 3) — plus
transmission latency (abstract/§1) and the per-node energy-consumption
ratio map (Fig. 4).  Everything needed to regenerate those artifacts is
captured here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.packet import PacketStats

__all__ = ["RoundStats", "SimulationResult"]


@dataclass
class RoundStats:
    """Snapshot of one simulation round."""

    round_index: int
    n_heads: int
    n_alive: int
    energy_consumed: float
    packets: PacketStats
    mean_queue_peak: float = 0.0
    v_updates: int = 0

    @property
    def delivery_rate(self) -> float:
        return self.packets.delivery_rate


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    protocol: str
    rounds_executed: int
    rounds_planned: int
    per_round: list[RoundStats]
    packets: PacketStats
    total_energy: float
    #: 1-based round at which the first node crossed the death line;
    #: None when every node outlived the run (right-censored).
    first_death_round: int | None
    n_alive_final: int
    consumption_ratio: np.ndarray
    residual_final: np.ndarray
    positions: np.ndarray
    seed: int = 0
    mean_interarrival: float = 0.0
    v_update_total: int = 0
    #: Fault summary of a chaos run (``repro.faults``): injection
    #: counters, deaths by cause, and revival counts as a JSON-able
    #: dict.  ``None`` for runs without a fault plan.
    faults: dict | None = None
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def delivery_rate(self) -> float:
        """Run-level packet delivery rate (Fig. 3a's y-axis)."""
        return self.packets.delivery_rate

    @property
    def lifespan(self) -> int:
        """Network lifespan in rounds (Fig. 3c's y-axis); censored runs
        report the number of rounds survived."""
        if self.first_death_round is not None:
            return self.first_death_round
        return self.rounds_executed

    @property
    def lifespan_censored(self) -> bool:
        return self.first_death_round is None

    def _death_round_at(self, fraction: float) -> int | None:
        """First 1-based round where alive nodes fell to or below
        ``(1 - fraction)`` of the population; None if never."""
        if not self.per_round:
            return None
        n0 = self.consumption_ratio.size
        threshold = (1.0 - fraction) * n0
        for stats in self.per_round:
            if stats.n_alive <= threshold:
                return stats.round_index + 1
        return None

    @property
    def half_death_round(self) -> int | None:
        """HND: the standard half-nodes-dead lifespan metric."""
        return self._death_round_at(0.5)

    @property
    def last_death_round(self) -> int | None:
        """LND: round the last node died (full network death)."""
        return self._death_round_at(1.0 - 1e-12)

    def alive_curve(self) -> np.ndarray:
        """Alive-node count per executed round (the classic WSN
        lifetime figure; complements Fig. 3(c))."""
        return np.asarray([r.n_alive for r in self.per_round], dtype=np.int64)

    @property
    def mean_latency(self) -> float:
        return self.packets.mean_latency

    @property
    def energy_per_delivered_packet(self) -> float:
        if self.packets.delivered == 0:
            return float("inf")
        return self.total_energy / self.packets.delivered

    def energy_balance_index(self) -> float:
        """Jain's fairness index over per-node consumption ratios —
        quantifies Fig. 4's "evenly distributed" claim (1.0 = perfectly
        even consumption)."""
        c = self.consumption_ratio
        denom = c.size * float((c * c).sum())
        if denom <= 0.0:
            return 1.0
        return float(c.sum()) ** 2 / denom

    def consumption_spread(self) -> tuple[float, float]:
        """(mean, std) of the per-node consumption ratio."""
        return float(self.consumption_ratio.mean()), float(
            self.consumption_ratio.std()
        )

    def summary(self) -> dict:
        """Flat dict for tabulation."""
        return {
            "protocol": self.protocol,
            "lambda": self.mean_interarrival,
            "seed": self.seed,
            "rounds": self.rounds_executed,
            "pdr": round(self.delivery_rate, 4),
            "energy_J": round(self.total_energy, 6),
            "lifespan": self.lifespan,
            "censored": self.lifespan_censored,
            "latency_slots": round(self.mean_latency, 3),
            "generated": self.packets.generated,
            "delivered": self.packets.delivered,
            "dropped_queue": self.packets.dropped_queue,
            "dropped_channel": self.packets.dropped_channel,
            "alive_final": self.n_alive_final,
            "balance_index": round(self.energy_balance_index(), 4),
        }

    def validate(self) -> None:
        """Cross-invariants every run must satisfy (used by tests and
        asserted once per engine run)."""
        self.packets.validate()
        if self.total_energy < -1e-12:
            raise AssertionError("negative total energy")
        if not 0.0 <= self.delivery_rate <= 1.0:
            raise AssertionError("delivery rate outside [0, 1]")
        if np.any(self.consumption_ratio < -1e-12) or np.any(
            self.consumption_ratio > 1.0 + 1e-12
        ):
            raise AssertionError("consumption ratio outside [0, 1]")
        per_round_energy = sum(r.energy_consumed for r in self.per_round)
        if not np.isclose(per_round_energy, self.total_energy, rtol=1e-9, atol=1e-12):
            raise AssertionError("per-round energies do not sum to total")
        if self.faults is not None:
            self._validate_faults()

    def _validate_faults(self) -> None:
        """Fault-accounting invariants of a chaos run.

        Every injected event is either absorbed or fatal; every death
        has exactly one cause; and liveness is conserved — deaths minus
        revivals equals the net population loss.
        """
        f = self.faults
        for key in ("injected", "absorbed", "fatal"):
            if f[key] < 0:
                raise AssertionError(f"negative fault counter {key!r}")
        if f["injected"] != f["absorbed"] + f["fatal"]:
            raise AssertionError(
                f"faults injected ({f['injected']}) != absorbed "
                f"({f['absorbed']}) + fatal ({f['fatal']})"
            )
        by_cause = sum(f["deaths_by_cause"].values())
        if by_cause != f["total_deaths"]:
            raise AssertionError(
                f"deaths by cause sum to {by_cause}, "
                f"not total_deaths {f['total_deaths']}"
            )
        net_loss = self.consumption_ratio.size - self.n_alive_final
        if f["total_deaths"] - f["revived"] != net_loss:
            raise AssertionError(
                f"liveness not conserved: {f['total_deaths']} deaths - "
                f"{f['revived']} revivals != net loss {net_loss}"
            )
