"""Round-based WSN simulation engine with a batched slot kernel.

Implements the paper's operational model (Algorithm 1's outer loop plus
the §5 evaluation machinery):

per round r:
  1. the protocol selects cluster heads;
  2. slotted data transmission — non-CH nodes generate Poisson traffic
     and forward head-of-line packets to the relay the protocol picks;
     the lossy channel and finite CH buffers drop packets; cluster
     heads service their queues at a bounded rate and fuse serviced
     payloads;
  3. end of round — every head compresses its fused payload (Table 2's
     50 % ratio), uplinks it toward the BS along the protocol's uplink
     path (direct for QLEC/k-means, hierarchy hops for FCM), and the
     protocol's round-end hook runs (QLEC's head V backup).

Data-path layout
----------------
Packets never exist as Python objects on the hot path.  They are rows
of a :class:`~repro.network.packet.PacketArena` (structure-of-arrays +
free list); per-node source FIFOs are intrusive linked lists through
the arena (:class:`~repro.network.queueing.SourceBuffers`); cluster
head queues are one 2-D ring buffer of arena indices
(:class:`~repro.network.queueing.QueueBank`).  Each slot phase issues a
handful of vectorized calls — batched relay choice
(``protocol.choose_relays``), one ``Channel.attempt_batch``, grouped
``EnergyLedger.discharge_many`` charges, one
``LinkEstimator.update_batch`` — instead of thousands of scalar ones.

Determinism: the canonical draw order
-------------------------------------
All stochastic draws of a slot happen in **sorted sender index order**
(generation, relay choice, channel trials, queue contention, BS-budget
contention).  A batched ``rng.random(n)`` consumes the generator stream
exactly as n scalar draws would, so the batched kernel and the scalar
reference path (``batched=False``, which differs only by looping
``choose_relay`` per sender) produce bit-identical runs per master
seed.  Every algorithm in Fig. 3 runs on byte-identical traffic,
channel draws, and deployments for a given seed.

Drop accounting has a single source of truth: the per-round
:class:`~repro.network.packet.PacketStats`; the queueing substrate
keeps no shadow counters.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..config import SimulationConfig

if TYPE_CHECKING:  # avoid a runtime cycle with baselines.base
    from ..baselines.base import ClusteringProtocol
from ..faults import NULL_INJECTOR, PlanInjector
from ..kernels import EquivalenceError, KernelBackend, resolve_backend
from ..network.node import BaseStation, NodeArray
from ..network.packet import PacketArena, PacketStats, PacketStatus
from ..network.queueing import QueueBank, SourceBuffers
from ..network.queueing import utilization as _utilization
from ..routing import build_router
from ..telemetry import NULL, NULL_TRACER, SpanTracer, Telemetry, run_manifest
from ..telemetry.trace import rss_mb
from .metrics import RoundStats, SimulationResult
from .state import NetworkState
from .trace import TraceRecorder
from .traffic import PoissonTraffic

__all__ = ["SimulationEngine", "run_simulation"]

#: One slot's serviced packets: (queue position per packet, arena index
#: per packet, service completion slot).
_FusedBatch = tuple[np.ndarray, np.ndarray, int]

#: Telemetry bucket edges for the per-round queue-peak histogram
#: (upper bounds; Table 2's default CH capacity is 16).
_QUEUE_PEAK_EDGES = (0, 1, 2, 4, 8, 16, 32, 64)

#: Telemetry bucket edges for the uplink hop-count histogram (active
#: routing substrates only; the config's TTL default is 12).
_HOP_COUNT_EDGES = (1, 2, 3, 4, 6, 8, 12)


class SimulationEngine:
    """Drives one protocol over one deployment for R rounds.

    Parameters
    ----------
    config:
        Scenario description (Table 2 via :func:`repro.config.paper_config`).
    protocol:
        A fresh :class:`~repro.baselines.base.ClusteringProtocol`.
    nodes, bs, initial_energy:
        Optional pre-built deployment (dataset experiments).
    stop_on_death:
        When True the run ends at the first node death (the lifespan
        experiment); otherwise the death round is recorded and the run
        continues (PDR/energy experiments, which "lower the energy
        death line" per §5.1).
    batched:
        When True (default) relay choices go through the protocol's
        vectorized ``choose_relays``.  False forces the scalar
        per-sender ``choose_relay`` loop — the reference path the
        micro-benchmarks time the kernel against; both paths produce
        bit-identical results.
    backend:
        Kernel backend selector for the batched array stages — a name
        (``"auto"``/``"numpy"``/``"numba"`` or any registered backend)
        or an already-resolved :class:`~repro.kernels.KernelBackend`.
        ``None`` (default) defers to ``config.backend``.  Backends are
        bit-identical by contract; the resolved name is recorded in the
        run manifest.
    telemetry:
        An optional :class:`~repro.telemetry.Telemetry` handle.  When
        given, every stage of the slot pipeline is wall-clock
        attributed (``time/phase/*``) and pipeline counters (packets,
        energy, channel, queues) accumulate in its registry; the final
        :class:`SimulationResult` carries a snapshot in
        ``extras["telemetry"]``.  When absent the engine holds the
        no-op :data:`~repro.telemetry.NULL` singleton, which never
        touches an RNG stream — telemetry on or off, runs are
        bit-identical.
    tracer:
        An optional :class:`~repro.telemetry.SpanTracer`.  When given,
        the run becomes a hierarchical span stream (run → round →
        phase → kernel call, fault events as instants) exportable as
        JSONL or a Perfetto-loadable Chrome trace.  Defaults to the
        no-op :data:`~repro.telemetry.NULL_TRACER`; like telemetry,
        tracing never touches an RNG stream.  Attaching a tracer (or
        ``Telemetry(profile_kernels=True)``) wraps the kernel backend
        in :class:`~repro.kernels.ProfiledBackend` — numerically
        invisible, and the manifest still records the inner backend.
    """

    def __init__(
        self,
        config: SimulationConfig,
        protocol: "ClusteringProtocol",
        nodes: NodeArray | None = None,
        bs: BaseStation | None = None,
        rng: np.random.Generator | None = None,
        initial_energy: np.ndarray | None = None,
        stop_on_death: bool = False,
        trace: TraceRecorder | None = None,
        batched: bool = True,
        backend: str | KernelBackend | None = None,
        telemetry: Telemetry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        self.config = config
        self.protocol = protocol
        self.telemetry = telemetry if telemetry is not None else NULL
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if config.equivalence != "bitwise" and trace is not None:
            raise EquivalenceError(
                "golden traces require bitwise equivalence; a "
                f"{config.equivalence!r}-tier run is not bit-reproducible "
                "and must not record or verify traces (drop --equivalence "
                "statistical, or run without tracing)"
            )
        self.kernels = resolve_backend(
            backend if backend is not None else config.backend,
            equivalence=config.equivalence,
        )
        # Kernel profiling is opt-in (scalar and batched paths issue
        # different kernel call *counts*, so auto-profiling would break
        # their deterministic-view equality); the wrapper is
        # numerically invisible and proxies the inner backend's name.
        if self.telemetry.profile_kernels or self.tracer.enabled:
            from ..kernels import ProfiledBackend

            self.kernels = ProfiledBackend(
                self.kernels,
                registry=(
                    self.telemetry.registry
                    if self.telemetry.profile_kernels
                    else None
                ),
                tracer=self.tracer,
            )
        self.state = NetworkState(
            config,
            nodes=nodes,
            bs=bs,
            rng=rng,
            initial_energy=initial_energy,
            kernels=self.kernels,
        )
        self.traffic = PoissonTraffic(
            config.traffic, self.state.n, self.state.traffic_rng
        )
        self.stop_on_death = stop_on_death
        self.batched = batched
        self.arena = PacketArena()
        self.buffers = SourceBuffers(self.state.n, self.arena)
        self._first_death_round: int | None = None
        self._rounds: list[RoundStats] = []
        self._totals = PacketStats()
        #: Whether the tracer's "run" span is already open — restored
        #: snapshots carry it open, and a resumed ``run()`` must not
        #: begin a second one (span IDs stay deterministic either way).
        self._run_begun = False
        self.trace = trace
        self.mobility = None
        if config.mobility is not None:
            from ..network.mobility import build_mobility

            self.mobility = build_mobility(
                config.mobility,
                config.deployment.side,
                self.state.mobility_rng,
            )
        # Fault injection: the NULL singleton unless the config carries
        # a plan.  Every engine hook is guarded by ``self.faults.active``
        # so the no-fault path stays bit-identical to the golden traces
        # (and the recovery machinery below never allocates).
        self.faults = NULL_INJECTOR
        self._recovering = False
        if config.faults is not None:
            self.faults = PlanInjector(
                config.faults,
                self.state.fault_rng,
                self.state.n,
                self.state.bs_index,
                tracer=self.tracer,
            )
            self._recovering = self.faults.recovering
            #: Per-sender degradation bookkeeping (recovery path only):
            #: absolute slot before which a backed-off sender stays
            #: quiet, and link-layer retransmissions spent this round
            #: against the plan's budget.
            self._backoff_until = np.zeros(self.state.n, dtype=np.int64)
            self._retry_spent = np.zeros(self.state.n, dtype=np.int64)
        self.harvester = None
        if config.harvesting is not None:
            from ..energy.harvesting import build_harvester

            self.harvester = build_harvester(
                config.harvesting, self.state.harvest_rng
            )
        # Routing substrate: the inert DIRECT singleton unless the
        # config selects an active kind.  Every engine hook is guarded
        # by ``self.router.active`` — same NULL-substrate pattern as
        # faults/telemetry — so the default path never bills discovery,
        # never touches the routing RNG stream, and stays bit-identical
        # to the golden traces.
        self.router = build_router(config.routing)
        if self.router.active:
            self.router.prepare(self.state)
        protocol.prepare(self.state)
        #: Self-describing header shared by the trace dump and the
        #: telemetry snapshot (built lazily only when someone records).
        self.manifest: dict | None = None
        if self.trace is not None or self.telemetry.enabled or self.tracer.enabled:
            self.manifest = run_manifest(
                config, protocol.name, backend=self.kernels.name
            )
        if self.trace is not None and self.trace.manifest is None:
            self.trace.manifest = self.manifest
        if self.tracer.enabled and self.tracer.manifest is None:
            self.tracer.manifest = self.manifest
        if self.telemetry.enabled:
            self.state.channel.bind_telemetry(self.telemetry)
            self._tel_energy_mark = self.state.ledger.category_breakdown()
            self._tel_routing_mark = self.router.counters()

    # ------------------------------------------------------------------
    # slot phases
    # ------------------------------------------------------------------
    def _generate(self, abs_slot: int, is_head: np.ndarray, stats: PacketStats) -> None:
        active = self.state.ledger.alive & ~is_head
        counts = self.traffic.arrivals(active)
        total = int(counts.sum())
        if total == 0:
            return
        stats.generated += total
        producing = np.flatnonzero(counts)
        sources = np.repeat(producing, counts[producing])
        rows = self.arena.alloc(sources, abs_slot)
        self.buffers.push_batch(sources, rows)

    def _choose_targets(
        self,
        heads: np.ndarray,
        senders: np.ndarray,
        qlens: np.ndarray,
    ) -> np.ndarray:
        """Relay target per sender — batched or the scalar reference
        loop; identical results either way (the protocols' batch
        overrides are exact vectorizations and consume the protocol RNG
        in the same sender order)."""
        st = self.state
        if self.batched:
            return np.asarray(
                self.protocol.choose_relays(st, senders, heads, qlens),
                dtype=np.int64,
            )
        return np.fromiter(
            (
                self.protocol.choose_relay(st, int(node), heads, qlens)
                for node in senders
            ),
            dtype=np.int64,
            count=senders.size,
        )

    def _transmit(
        self,
        abs_slot: int,
        heads: np.ndarray,
        is_head: np.ndarray,
        bank: QueueBank,
        stats: PacketStats,
    ) -> None:
        st = self.state
        arena = self.arena
        tel = self.telemetry
        trc = self.tracer
        bits = self.config.traffic.packet_bits
        # Canonical order: ascending sender index.  Within-slot
        # contention (queue capacity, BS budget) resolves in this order
        # every run, which is what keeps batched == scalar bit-exact.
        senders = np.flatnonzero(
            st.ledger.alive & ~is_head & (self.buffers.lengths > 0)
        )
        if self._recovering and senders.size:
            # Backed-off senders sit this slot out (bounded
            # retry-with-backoff under degradation; see run_round).
            senders = senders[self._backoff_until[senders] <= abs_slot]
        if senders.size == 0:
            return
        hop_by_hop = getattr(self.protocol, "hop_by_hop", False)
        if heads.size or hop_by_hop:
            qlens = bank.lengths  # slot-start backlog snapshot
            eff_heads, eff_qlens = heads, qlens
            if self._recovering and heads.size:
                # Graceful degradation: dead cluster heads are masked
                # out of every sender's action set, so members re-attach
                # to a live head (or fall back to the BS) this same
                # round instead of burning retries on a silent corpse.
                live = st.ledger.alive[heads]
                if not live.all():
                    eff_heads = heads[live]
                    eff_qlens = qlens[live]
            if eff_heads.size or hop_by_hop:
                targets = self._choose_targets(eff_heads, senders, eff_qlens)
            else:
                targets = np.full(senders.size, st.bs_index, dtype=np.int64)
        else:
            targets = np.full(senders.size, st.bs_index, dtype=np.int64)
        tel.lap("relay_choice")
        trc.lap("relay_choice")
        rows = self.buffers.peek(senders)
        d = st.distances_many(senders, targets)
        st.ledger.discharge_many(senders, st.radio.tx(bits, d), "tx")
        tel.lap("discharge")
        trc.lap("discharge")
        # Liveness snapshot after the tx charges: a target killed by
        # this slot's receptions still ACKs this slot's arrivals.
        to_bs = targets == st.bs_index
        target_alive = to_bs.copy()
        target_alive[~to_bs] = st.ledger.alive[targets[~to_bs]]
        draws = st.channel.attempt_batch(d, senders, targets)
        arrived = draws & target_alive
        tel.lap("channel")
        trc.lap("channel")
        # Every arrival at a non-BS target costs that target rx energy
        # (heads pay even for packets their full queue then rejects —
        # the radio listened either way).
        rx_targets = targets[arrived & ~to_bs]
        if rx_targets.size:
            st.ledger.discharge_many(rx_targets, st.radio.rx(bits), "rx")
        tel.lap("discharge")
        trc.lap("discharge")

        pos = bank.position(targets)
        acks = np.zeros(senders.size, dtype=bool)
        pop_mask = np.ones(senders.size, dtype=bool)
        free_rows: list[np.ndarray] = []

        # The ACK of §4.2 confirms the packet was "successfully
        # received AND processed": a buffer overflow at the head is a
        # missing ACK, which is exactly the congestion signal QLEC's
        # link estimator learns from.
        at_head = np.flatnonzero(arrived & (pos >= 0))
        if at_head.size:
            order = np.argsort(pos[at_head], kind="stable")
            at_head = at_head[order]
            accepted = bank.offer_batch(pos[at_head], rows[at_head])
            acc = at_head[accepted]
            rej = at_head[~accepted]
            arena.hops[rows[acc]] += 1
            acks[acc] = True
            if rej.size:
                stats.dropped_queue += rej.size
                arena.mark(rows[rej], PacketStatus.DROPPED_QUEUE)
                free_rows.append(rows[rej])

        # Store-and-forward relay through an ordinary node (hop-by-hop
        # protocols): the packet joins the relay's own buffer and
        # continues next slot, bounded by the TTL so routing loops
        # cannot live forever.
        at_relay = np.flatnonzero(arrived & ~to_bs & (pos < 0))
        forwarded = np.empty(0, dtype=np.int64)
        if at_relay.size:
            relay_rows = rows[at_relay]
            arena.hops[relay_rows] += 1
            expired = arena.hops[relay_rows] >= self.config.max_hops
            exp = at_relay[expired]
            forwarded = at_relay[~expired]
            if exp.size:
                stats.expired += exp.size
                arena.mark(rows[exp], PacketStatus.EXPIRED)
                free_rows.append(rows[exp])
            if forwarded.size:
                arena.retries[rows[forwarded]] = 0  # fresh ARQ budget per hop
                acks[forwarded] = True

        # Direct uplink: contends for the BS's per-slot budget for
        # unscheduled traffic (the "burden" behind Eq. 19's penalty l).
        at_bs = np.flatnonzero(arrived & to_bs)
        if at_bs.size:
            budget = self.config.queue.bs_capacity_per_slot
            won = at_bs[:budget]
            lost = at_bs[budget:]
            if won.size:
                won_rows = rows[won]
                arena.hops[won_rows] += 1
                arena.status[won_rows] = PacketStatus.DELIVERED.code
                arena.delivered_slot[won_rows] = abs_slot + 1
                stats.record_deliveries(
                    arena.latencies(won_rows), arena.hops[won_rows]
                )
                acks[won] = True
                free_rows.append(won_rows)
            if lost.size:
                stats.dropped_queue += lost.size
                arena.mark(rows[lost], PacketStatus.DROPPED_QUEUE)
                free_rows.append(rows[lost])

        # Link-layer ARQ: an unacknowledged channel loss (or a silent
        # dead relay) leaves the packet at the head of its source's
        # buffer for next slot, up to max_retries; a buffer-full
        # rejection (above) is an explicit NACK and is not retried.
        failed = np.flatnonzero(~arrived)
        if failed.size:
            retry = arena.retries[rows[failed]] < self.config.max_retries
            if self._recovering:
                # Bounded retry-with-backoff: each sender has a
                # per-round retransmission budget, and every spent
                # retry pushes its next attempt out exponentially
                # (base * 2^min(k, 4) slots).  Budget-exhausted
                # packets drop through the final-failure accounting.
                spent = self._retry_spent[senders[failed]]
                retry = retry & (spent < self.faults.retry_budget)
                retrying = failed[retry]
                if retrying.size:
                    s_retry = senders[retrying]
                    delay = self.faults.backoff_base * (
                        1 << np.minimum(self._retry_spent[s_retry], 4)
                    )
                    self._backoff_until[s_retry] = abs_slot + 1 + delay
                    self._retry_spent[s_retry] += 1
            else:
                retrying = failed[retry]
            arena.retries[rows[retrying]] += 1
            pop_mask[retrying] = False
            final = failed[~retry]
            if final.size:
                dead = ~target_alive[final]
                n_dead = int(dead.sum())
                stats.dropped_dead += n_dead
                stats.dropped_channel += final.size - n_dead
                arena.mark(rows[final[dead]], PacketStatus.DROPPED_DEAD)
                arena.mark(rows[final[~dead]], PacketStatus.DROPPED_CHANNEL)
                free_rows.append(rows[final])

        self.buffers.pop(senders[pop_mask])
        if forwarded.size:
            f_targets = targets[forwarded]
            order = np.argsort(f_targets, kind="stable")
            self.buffers.push_batch(f_targets[order], rows[forwarded][order])
        if free_rows:
            arena.free(np.concatenate(free_rows))
        tel.lap("queue_offer")
        trc.lap("queue_offer")

        st.link_estimator.update_batch(senders, targets, acks)
        self.protocol.on_transmissions(st, senders, targets, acks)
        tel.lap("estimator")
        trc.lap("estimator")

    def _service(
        self,
        abs_slot: int,
        bank: QueueBank,
        fused: list[_FusedBatch],
        stats: PacketStats,
    ) -> None:
        st = self.state
        if bank.k == 0:
            return
        bits = self.config.traffic.packet_bits
        rate = self.config.queue.service_rate
        # Dead heads stop serving; their backlog expires at round end.
        alive_heads = st.ledger.alive[bank.heads]
        pos_rep, rows = bank.serve_batch(rate, alive_heads)
        if rows.size == 0:
            return
        counts = np.bincount(pos_rep, minlength=bank.k)
        active = np.flatnonzero(counts)
        st.ledger.discharge_many(
            bank.heads[active], counts[active] * st.radio.da(bits), "da"
        )
        fused.append((pos_rep, rows, abs_slot + 1))

    # ------------------------------------------------------------------
    def _uplink(
        self,
        heads: np.ndarray,
        fused: list[_FusedBatch],
        bank: QueueBank,
        end_slot: int,
        stats: PacketStats,
    ) -> None:
        """End-of-round fusion uplink, frame by frame along the path.

        Multi-hop paths (the FCM hierarchy) spend the *intermediate*
        head's leftover service capacity: a head that already served
        its own cluster at full rate cannot also relay transit
        aggregates — the congestion coupling behind the paper's
        observation that the multi-hop scheme "discards more than 10%
        packets when the network is congested".
        """
        st = self.state
        cfg = self.config
        arena = self.arena
        bits = cfg.traffic.packet_bits
        ratio = cfg.compression_ratio
        # Unserviced backlog expires with the round (membership
        # rotates; stale samples are not carried over).
        _, leftover = bank.drain_all()
        if leftover.size:
            stats.expired += leftover.size
            arena.mark(leftover, PacketStatus.EXPIRED)
            arena.free(leftover)
        if fused:
            all_pos = np.concatenate([b[0] for b in fused])
            all_rows = np.concatenate([b[1] for b in fused])
            all_slots = np.concatenate(
                [np.full(b[1].size, b[2], dtype=np.int64) for b in fused]
            )
        else:
            all_pos = all_rows = all_slots = np.empty(0, dtype=np.int64)
        n_fused = np.bincount(all_pos, minlength=bank.k)
        order = np.argsort(all_pos, kind="stable")  # per-head, slot order
        all_rows = all_rows[order]
        all_slots = all_slots[order]
        seg_starts = np.cumsum(n_fused) - n_fused
        # Fast path: when every walked head uplinks straight to the BS
        # and the protocol takes no per-transmission feedback, each
        # frame is one head->BS hop and the whole phase vectorizes
        # (channel draws stay in head order, frame order).
        from ..baselines.base import ClusteringProtocol

        # An active routing substrate owns the uplink paths (and wants
        # per-hop feedback plus path traces), so it always takes the
        # chain walk; the vectorized fast path below is reserved for
        # the substrate-less all-direct case.
        router = self.router
        paths: dict[int, list[int]] = {}
        direct_only = (
            type(self.protocol).on_transmission
            is ClusteringProtocol.on_transmission
        ) and not router.active
        if direct_only:
            for j, h in enumerate(bank.heads):
                if n_fused[j] == 0 or not st.ledger.is_alive(int(h)):
                    continue
                path = self.protocol.uplink_path(st, int(h), heads)
                paths[int(h)] = path
                if path:
                    direct_only = False
                    break
        if direct_only:
            self._uplink_direct(
                bank, n_fused, seg_starts, all_rows, all_slots, stats
            )
            return
        total_service = cfg.queue.service_rate * cfg.traffic.slots_per_round
        relay_budget: dict[int, int] = {
            int(h): max(0, int(total_service - n_fused[j]))
            for j, h in enumerate(bank.heads)
        }
        for j, h in enumerate(bank.heads):
            h = int(h)
            count = int(n_fused[j])
            if count == 0:
                continue
            seg = slice(seg_starts[j], seg_starts[j] + count)
            rows = all_rows[seg]
            slots = all_slots[seg]
            if not st.ledger.is_alive(h):
                stats.dropped_dead += count
                arena.mark(rows, PacketStatus.DROPPED_DEAD)
                arena.free(rows)
                continue
            if cfg.aggregation == "perfect":
                n_frames = 1
            elif cfg.aggregation == "none":
                n_frames = count
            else:  # "ratio" — Table 2's proportional compression
                n_frames = max(1, math.ceil(count * ratio))
            frames: list[tuple[np.ndarray, np.ndarray]] = [
                (rows[i::n_frames], slots[i::n_frames]) for i in range(n_frames)
            ]
            path = paths.get(h)
            if path is None:
                if router.active:
                    path = router.uplink_path(st, h, heads)
                else:
                    path = self.protocol.uplink_path(st, h, heads)
            chain = [h, *[int(p) for p in path], st.bs_index]
            surviving = frames
            for hop_idx in range(len(chain) - 1):
                src, dst = chain[hop_idx], chain[hop_idx + 1]
                if not surviving:
                    break
                if not st.ledger.is_alive(src):
                    for frame_rows, _ in surviving:
                        stats.dropped_dead += frame_rows.size
                        arena.mark(frame_rows, PacketStatus.DROPPED_DEAD)
                        arena.free(frame_rows)
                    surviving = []
                    break
                d = st.distance(src, dst)
                dst_alive = dst == st.bs_index or st.ledger.is_alive(dst)
                next_frames: list[tuple[np.ndarray, np.ndarray]] = []
                for frame_rows, frame_slots in surviving:
                    st.ledger.discharge(src, st.radio.tx(bits, d), "tx")
                    ok = dst_alive and st.channel.attempt(d, src, dst)
                    if ok and dst != st.bs_index:
                        # Transit relay: needs leftover service capacity
                        # at the intermediate head (missing ACK = the
                        # relay's cache is exhausted).
                        if relay_budget.get(dst, 0) > 0:
                            relay_budget[dst] -= 1
                        else:
                            ok = False
                            stats.dropped_queue += frame_rows.size
                            arena.mark(frame_rows, PacketStatus.DROPPED_QUEUE)
                            arena.free(frame_rows)
                            st.link_estimator.update(src, dst, ok)
                            self.protocol.on_transmission(st, src, dst, ok)
                            if router.active:
                                router.on_hop(st, src, dst, ok)
                            continue
                    st.link_estimator.update(src, dst, ok)
                    self.protocol.on_transmission(st, src, dst, ok)
                    if router.active:
                        router.on_hop(st, src, dst, ok)
                    if not ok:
                        if dst_alive:
                            stats.dropped_channel += frame_rows.size
                            arena.mark(frame_rows, PacketStatus.DROPPED_CHANNEL)
                        else:
                            stats.dropped_dead += frame_rows.size
                            arena.mark(frame_rows, PacketStatus.DROPPED_DEAD)
                        arena.free(frame_rows)
                        continue
                    if dst != st.bs_index:
                        st.ledger.discharge(dst, st.radio.rx(bits), "rx")
                    next_frames.append((frame_rows, frame_slots))
                surviving = next_frames
            # Whatever survived the whole chain reached the BS.
            hop_count = len(chain) - 1
            for frame_rows, frame_slots in surviving:
                arena.status[frame_rows] = PacketStatus.DELIVERED.code
                arena.delivered_slot[frame_rows] = frame_slots + hop_count
                stats.record_deliveries(
                    arena.latencies(frame_rows),
                    arena.hops[frame_rows] + hop_count,
                )
                arena.free(frame_rows)
            if router.active:
                # Per-packet path observability: one record per walked
                # head on the trace, one histogram sample per delivered
                # frame in telemetry.  Pure reads — no RNG, and inert
                # routers never reach this branch.
                n_delivered = len(surviving)
                if self.trace is not None:
                    self.trace.record_path(
                        st.round_index,
                        h,
                        [int(p) for p in path],
                        hop_count,
                        n_frames,
                        n_delivered,
                    )
                if self.telemetry.enabled and n_delivered:
                    self.telemetry.registry.histogram(
                        "routing/hops", _HOP_COUNT_EDGES
                    ).observe_many(
                        np.full(n_delivered, hop_count, dtype=np.float64)
                    )

    def _uplink_direct(
        self,
        bank: QueueBank,
        n_fused: np.ndarray,
        seg_starts: np.ndarray,
        all_rows: np.ndarray,
        all_slots: np.ndarray,
        stats: PacketStats,
    ) -> None:
        """Vectorized fusion uplink for the all-direct case.

        Every frame is a single head->BS transmission, so tx pricing,
        channel draws, estimator updates, and delivery accounting batch
        across all heads at once.  The BS is always alive and the relay
        budget never applies, which removes the per-frame branching of
        the chain walk.
        """
        st = self.state
        cfg = self.config
        arena = self.arena
        bits = cfg.traffic.packet_bits
        active = np.flatnonzero(n_fused)
        if active.size == 0:
            return
        alive = st.ledger.alive[bank.heads[active]]
        # Dead heads lose their whole fused backlog before transmitting.
        for j in active[~alive]:
            seg = slice(seg_starts[j], seg_starts[j] + n_fused[j])
            rows = all_rows[seg]
            stats.dropped_dead += rows.size
            arena.mark(rows, PacketStatus.DROPPED_DEAD)
            arena.free(rows)
        live = active[alive]
        if live.size == 0:
            return
        counts = n_fused[live]
        if cfg.aggregation == "perfect":
            n_frames = np.ones(live.size, dtype=np.int64)
        elif cfg.aggregation == "none":
            n_frames = counts.astype(np.int64)
        else:  # "ratio" — Table 2's proportional compression
            n_frames = np.maximum(
                1, np.ceil(counts * cfg.compression_ratio).astype(np.int64)
            )
        srcs = bank.heads[live]
        d = st.topology.d_to_bs[srcs]
        tx_e = st.radio.tx(bits, d)
        # One frame = one transmission: discharge, draw, and ACK per
        # frame, concatenated in head order then frame order — the same
        # stream the scalar chain walk consumes.
        frame_head = np.repeat(np.arange(live.size), n_frames)
        st.ledger.discharge_many(srcs[frame_head], tx_e[frame_head], "tx")
        # Targets are all the BS (never degraded), so only sender-side
        # per-node factors apply.
        draws = st.channel.attempt_batch(d[frame_head], srcs[frame_head])
        st.link_estimator.update_batch(
            srcs[frame_head],
            np.full(frame_head.size, st.bs_index, dtype=np.intp),
            draws,
        )
        # Frame i of a head carries fused rows i::n_frames (the scalar
        # walk's striding); map each row to its frame's draw.
        row_head = np.repeat(np.arange(live.size), counts)
        offs = np.arange(row_head.size, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        frame_base = np.cumsum(n_frames) - n_frames
        frame_of_row = frame_base[row_head] + offs % n_frames[row_head]
        gather = offs + np.repeat(seg_starts[live], counts)
        rows_all = all_rows[gather]
        slots_all = all_slots[gather]
        ok = draws[frame_of_row]
        won = rows_all[ok]
        if won.size:
            arena.status[won] = PacketStatus.DELIVERED.code
            arena.delivered_slot[won] = slots_all[ok] + 1
            stats.record_deliveries(arena.latencies(won), arena.hops[won] + 1)
            arena.free(won)
        lost = rows_all[~ok]
        if lost.size:
            stats.dropped_channel += lost.size
            arena.mark(lost, PacketStatus.DROPPED_CHANNEL)
            arena.free(lost)

    # ------------------------------------------------------------------
    def run_round(self) -> RoundStats:
        st = self.state
        cfg = self.config
        tel = self.telemetry
        trc = self.tracer
        t_round = tel.now()
        if trc.enabled:
            trc.begin("round", cat="round", args={"round": st.round_index})
            trc.lap_start()
        tel.lap_start()
        # Inter-round environment dynamics (extensions; both no-ops in
        # the paper's static, battery-only evaluation).
        if self.mobility is not None and st.round_index > 0:
            st.update_positions(
                self.mobility.step(st.nodes.positions, st.ledger.alive)
            )
        if self.harvester is not None and st.round_index > 0:
            self.harvester.apply(
                st.ledger, st.round_index, revive=cfg.harvesting.revive
            )
        if self.faults.active:
            # Round-start fault boundary: expire degradation windows,
            # apply this round's crash/revive/drain/window events, and
            # reset the per-round retransmission budget.
            self.faults.begin_round(st)
            if self._recovering:
                self._retry_spent[:] = 0
        energy_before = st.ledger.total_spent
        v_before = getattr(self.protocol, "v_update_count", 0)
        tel.lap("setup")
        trc.lap("setup")

        heads = self.protocol.validate_heads(
            st, self.protocol.select_cluster_heads(st)
        )
        if self.faults.active:
            # Election-time CH kills strike between selection and
            # service: the victims never serve this round and do not
            # count as having served an epoch.
            heads = self.faults.at_election(st, heads)
        st.mark_cluster_heads(heads)
        is_head = np.zeros(st.n, dtype=bool)
        if heads.size:
            is_head[heads] = True
        capacity = cfg.queue.capacity
        if self.faults.active:
            capacity = self.faults.queue_capacity(capacity)
        bank = QueueBank(heads, capacity, st.n)
        fused: list[_FusedBatch] = []
        stats = PacketStats()
        if self.router.active:
            # Topology phase: energy-charged neighbor discovery/sharing
            # over the CH overlay, then route construction (tree or
            # Q-learned SPT).  Deterministic except for qspt's draws on
            # the dedicated routing RNG stream.
            self.router.begin_round(st, heads)
        tel.lap("ch_select")
        trc.lap("ch_select")

        slots = cfg.traffic.slots_per_round
        base_slot = st.round_index * slots
        for slot in range(slots):
            abs_slot = base_slot + slot
            if self.faults.active:
                # Mid-round CH kills strike at slot boundaries.
                self.faults.at_slot(st, heads, slot)
            self._generate(abs_slot, is_head, stats)
            tel.lap("generate")
            trc.lap("generate")
            self._transmit(abs_slot, heads, is_head, bank, stats)
            self._service(abs_slot, bank, fused, stats)
            tel.lap("service")
            trc.lap("service")
        self._uplink(heads, fused, bank, base_slot + slots, stats)
        tel.lap("uplink")
        trc.lap("uplink")
        self.protocol.on_round_end(st, heads)

        if self._first_death_round is None and st.ledger.any_dead:
            self._first_death_round = st.round_index + 1

        peaks = bank.peak_lengths
        round_stats = RoundStats(
            round_index=st.round_index,
            n_heads=int(heads.size),
            n_alive=st.ledger.n_alive,
            energy_consumed=st.ledger.total_spent - energy_before,
            packets=stats,
            mean_queue_peak=float(peaks.mean()) if peaks.size else 0.0,
            v_updates=getattr(self.protocol, "v_update_count", 0) - v_before,
        )
        self._rounds.append(round_stats)
        self._totals.merge(stats)
        if self.trace is not None:
            self.trace.record(round_stats, heads, st.ledger.residual)
        tel.lap("round_end")
        trc.lap("round_end")
        if tel.enabled:
            self._record_round_telemetry(round_stats, peaks, tel.now() - t_round)
        if trc.enabled:
            # Periodic memory sample *inside* the round span, so the
            # instant nests under the round it was taken in.
            if st.round_index % 8 == 0:
                report = st.memory_report()
                trc.instant(
                    "mem/sample",
                    cat="mem",
                    args={
                        "rss_mb": rss_mb(),
                        "resident_mb": report["resident_mb"],
                    },
                )
            trc.end()
        st.round_index += 1
        return round_stats

    def _record_round_telemetry(
        self, rs: RoundStats, peaks: np.ndarray, round_wall: float
    ) -> None:
        """Round-end counter rollup (telemetry enabled only).

        Deterministic pipeline counters (packets by outcome, energy by
        radio category, head counts, queue occupancy) plus the round's
        wall time; phase wall-clock attribution happened inline via the
        lap markers.  Reads only already-computed aggregates — never an
        RNG stream.
        """
        reg = self.telemetry.registry
        reg.counter("rounds").add(1)
        p = rs.packets
        reg.counter("packets/generated").add(p.generated)
        reg.counter("packets/delivered").add(p.delivered)
        reg.counter("packets/dropped_channel").add(p.dropped_channel)
        reg.counter("packets/dropped_queue").add(p.dropped_queue)
        reg.counter("packets/dropped_dead").add(p.dropped_dead)
        reg.counter("packets/expired").add(p.expired)
        mark = self.state.ledger.category_breakdown()
        for cat, total in mark.items():
            reg.counter(f"energy/{cat}_j").add(total - self._tel_energy_mark[cat])
        self._tel_energy_mark = mark
        reg.gauge("heads/count").observe(rs.n_heads)
        reg.counter("rl/v_updates").add(rs.v_updates)
        if self.router.active:
            counts = self.router.counters()
            for key, total in counts.items():
                reg.counter(f"routing/{key}").add(
                    total - self._tel_routing_mark.get(key, 0)
                )
            self._tel_routing_mark = counts
        if peaks.size:
            reg.histogram("queue/peak", _QUEUE_PEAK_EDGES).observe_many(peaks)
            reg.gauge("queue/utilization").observe_many(
                _utilization(peaks, self.config.queue.capacity)
            )
        reg.gauge("time/round").observe(round_wall)
        if rs.round_index % 8 == 0:
            # Periodic memory sampling: nondeterministic by nature, so
            # both metrics live under prefixes deterministic_view strips
            # (``mem/`` and ``prof/rss``).
            reg.gauge("mem/resident_mb").observe(
                self.state.memory_report()["resident_mb"]
            )
            rss = rss_mb()
            if rss is not None:
                reg.gauge("prof/rss/mb").observe(rss)

    def run(
        self,
        *,
        checkpoint_every: int | None = None,
        checkpoint_dir=None,
        checkpoint_keep_last: int = 3,
        checkpoint_tag: str = "run",
        stop_requested=None,
    ) -> SimulationResult:
        """Execute the full scenario and return the aggregated result.

        ``checkpoint_every`` (rounds) turns on crash-safe snapshots:
        after every Nth completed round the *complete* engine state is
        written atomically under ``checkpoint_dir`` (rotated to the
        ``checkpoint_keep_last`` newest).  To resume, restore the
        engine with :func:`repro.checkpoint.read_checkpoint` and call
        ``run()`` again — the loop continues from the completed-round
        cursor and the finished run is bit-identical to one that was
        never interrupted.  ``None`` (the default) writes nothing and
        is bit-identical to the historical path.

        ``stop_requested`` is an optional zero-argument callable polled
        at every round boundary (the graceful-drain hook): when it
        returns True mid-run, the engine snapshots (if checkpointing)
        and raises :class:`repro.checkpoint.DrainInterrupted`.
        """
        writer = None
        if checkpoint_every is not None:
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
            from ..checkpoint import CheckpointWriter

            writer = CheckpointWriter(
                checkpoint_dir,
                checkpoint_tag,
                every=checkpoint_every,
                keep_last=checkpoint_keep_last,
            )
        trc = self.tracer
        if trc.enabled and not self._run_begun:
            self._run_begun = True
            trc.begin(
                "run",
                cat="run",
                args={
                    "protocol": self.protocol.name,
                    "seed": self.config.seed,
                    "rounds": self.config.rounds,
                },
            )
        while len(self._rounds) < self.config.rounds:
            if self.stop_on_death and self._first_death_round is not None:
                break
            self.run_round()
            if writer is not None:
                writer.maybe(self)
            if (
                stop_requested is not None
                and len(self._rounds) < self.config.rounds
                and not (
                    self.stop_on_death and self._first_death_round is not None
                )
                and stop_requested()
            ):
                from ..checkpoint import DrainInterrupted

                path = writer.snapshot(self) if writer is not None else None
                raise DrainInterrupted(path, self.state.round_index)
        # Source backlog that never left its sensor expires with the run.
        while True:
            pending = np.flatnonzero(self.buffers.lengths > 0)
            if pending.size == 0:
                break
            rows = self.buffers.pop(pending)
            self._totals.expired += rows.size
            if self.telemetry.enabled:
                self.telemetry.counter("packets/expired").add(rows.size)
            self.arena.mark(rows, PacketStatus.EXPIRED)
            self.arena.free(rows)
        if trc.enabled:
            trc.end()
        result = SimulationResult(
            protocol=self.protocol.name,
            rounds_executed=len(self._rounds),
            rounds_planned=self.config.rounds,
            per_round=self._rounds,
            packets=self._totals,
            total_energy=self.state.ledger.total_spent,
            first_death_round=self._first_death_round,
            n_alive_final=self.state.ledger.n_alive,
            consumption_ratio=self.state.ledger.consumption_ratio(),
            residual_final=self.state.ledger.snapshot(),
            positions=self.state.nodes.positions,
            seed=self.config.seed,
            mean_interarrival=self.config.traffic.mean_interarrival,
            v_update_total=getattr(self.protocol, "v_update_count", 0),
        )
        if self.faults.active:
            result.faults = self.faults.summary(self.state.ledger)
            if self.telemetry.enabled:
                self._record_fault_telemetry(result.faults)
        if self.router.active:
            result.extras["routing"] = self.router.summary()
        if self.telemetry.enabled:
            result.extras["telemetry"] = {
                "manifest": self.manifest,
                "metrics": self.telemetry.snapshot(),
            }
        result.validate()
        return result

    def _record_fault_telemetry(self, summary: dict) -> None:
        """Fault counters for the telemetry registry (deterministic, so
        they merge across shards like every pipeline counter)."""
        reg = self.telemetry.registry
        reg.counter("faults/injected").add(summary["injected"])
        reg.counter("faults/absorbed").add(summary["absorbed"])
        reg.counter("faults/fatal").add(summary["fatal"])
        reg.counter("faults/revived").add(summary["revived"])
        for cause, count in summary["deaths_by_cause"].items():
            reg.counter(f"deaths/{cause}").add(count)


def run_simulation(
    config: SimulationConfig,
    protocol: "ClusteringProtocol",
    stop_on_death: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
    checkpoint_keep_last: int = 3,
    checkpoint_tag: str = "run",
    stop_requested=None,
    **engine_kwargs,
) -> SimulationResult:
    """One-call convenience wrapper: build an engine and run it.

    The ``checkpoint_*`` / ``stop_requested`` knobs forward to
    :meth:`SimulationEngine.run`; everything else goes to the engine
    constructor.
    """
    return SimulationEngine(
        config, protocol, stop_on_death=stop_on_death, **engine_kwargs
    ).run(
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_keep_last=checkpoint_keep_last,
        checkpoint_tag=checkpoint_tag,
        stop_requested=stop_requested,
    )
