"""Round-based WSN simulation engine.

Implements the paper's operational model (Algorithm 1's outer loop plus
the §5 evaluation machinery):

per round r:
  1. the protocol selects cluster heads;
  2. slotted data transmission — non-CH nodes generate Poisson traffic
     and forward head-of-line packets to the relay the protocol picks;
     the lossy channel and finite CH buffers drop packets; cluster
     heads service their queues at a bounded rate and fuse serviced
     payloads;
  3. end of round — every head compresses its fused payload (Table 2's
     50 % ratio), uplinks it toward the BS along the protocol's uplink
     path (direct for QLEC/k-means, hierarchy hops for FCM), and the
     protocol's round-end hook runs (QLEC's head V backup).

Energy is charged through the vectorized ledger at every radio
operation; ACK outcomes feed the link estimator that QLEC's Q backup
consumes.  The engine is protocol-agnostic: every algorithm in Fig. 3
runs on byte-identical traffic, channel draws, and deployments for a
given master seed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..config import SimulationConfig

if TYPE_CHECKING:  # avoid a runtime cycle with baselines.base
    from ..baselines.base import ClusteringProtocol
from ..network.node import BaseStation, NodeArray
from ..network.packet import PacketRecord, PacketStats, PacketStatus
from ..network.queueing import QueueBank
from .metrics import RoundStats, SimulationResult
from .state import NetworkState
from .trace import TraceRecorder
from .traffic import PoissonTraffic

__all__ = ["SimulationEngine", "run_simulation"]


class SimulationEngine:
    """Drives one protocol over one deployment for R rounds.

    Parameters
    ----------
    config:
        Scenario description (Table 2 via :func:`repro.config.paper_config`).
    protocol:
        A fresh :class:`~repro.baselines.base.ClusteringProtocol`.
    nodes, bs, initial_energy:
        Optional pre-built deployment (dataset experiments).
    stop_on_death:
        When True the run ends at the first node death (the lifespan
        experiment); otherwise the death round is recorded and the run
        continues (PDR/energy experiments, which "lower the energy
        death line" per §5.1).
    """

    def __init__(
        self,
        config: SimulationConfig,
        protocol: "ClusteringProtocol",
        nodes: NodeArray | None = None,
        bs: BaseStation | None = None,
        rng: np.random.Generator | None = None,
        initial_energy: np.ndarray | None = None,
        stop_on_death: bool = False,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.config = config
        self.protocol = protocol
        self.state = NetworkState(
            config, nodes=nodes, bs=bs, rng=rng, initial_energy=initial_energy
        )
        self.traffic = PoissonTraffic(
            config.traffic, self.state.n, self.state.traffic_rng
        )
        self.stop_on_death = stop_on_death
        self._buffers: list[deque[PacketRecord]] = [
            deque() for _ in range(self.state.n)
        ]
        self._first_death_round: int | None = None
        self._rounds: list[RoundStats] = []
        self._totals = PacketStats()
        self.trace = trace
        self.mobility = None
        if config.mobility is not None:
            from ..network.mobility import build_mobility

            self.mobility = build_mobility(
                config.mobility,
                config.deployment.side,
                self.state.mobility_rng,
            )
        self.harvester = None
        if config.harvesting is not None:
            from ..energy.harvesting import build_harvester

            self.harvester = build_harvester(
                config.harvesting, self.state.harvest_rng
            )
        protocol.prepare(self.state)

    # ------------------------------------------------------------------
    # slot phases
    # ------------------------------------------------------------------
    def _generate(self, abs_slot: int, is_head: np.ndarray, stats: PacketStats) -> None:
        active = self.state.ledger.alive & ~is_head
        counts = self.traffic.arrivals(active)
        total = int(counts.sum())
        if total == 0:
            return
        stats.generated += total
        for node in np.flatnonzero(counts):
            buf = self._buffers[node]
            for _ in range(int(counts[node])):
                buf.append(PacketRecord(source=int(node), born_slot=abs_slot))

    def _transmit(
        self,
        abs_slot: int,
        heads: np.ndarray,
        is_head: np.ndarray,
        bank: QueueBank,
        stats: PacketStats,
    ) -> None:
        st = self.state
        bits = self.config.traffic.packet_bits
        senders = np.flatnonzero(
            st.ledger.alive
            & ~is_head
            & np.asarray([len(b) > 0 for b in self._buffers], dtype=bool)
        )
        if senders.size == 0:
            return
        # Randomized service order so early indices get no systematic
        # advantage at contended queues.
        st.engine_rng.shuffle(senders)
        bs_budget = self.config.queue.bs_capacity_per_slot
        hop_by_hop = getattr(self.protocol, "hop_by_hop", False)
        max_hops = self.config.max_hops
        for node in senders:
            pkt = self._buffers[node].popleft()
            if heads.size or hop_by_hop:
                qlens = np.asarray(
                    [bank.queue_length(int(h)) for h in heads], dtype=np.int64
                )
                target = int(self.protocol.choose_relay(st, int(node), heads, qlens))
            else:
                target = st.bs_index
            d = st.distance(int(node), target)
            st.ledger.discharge(int(node), st.radio.tx(bits, d), "tx")
            target_alive = target == st.bs_index or st.ledger.is_alive(target)
            arrived = target_alive and st.channel.attempt(d)
            # The ACK of §4.2 confirms the packet was "successfully
            # received AND processed": a buffer overflow at the head is
            # a missing ACK, which is exactly the congestion signal
            # QLEC's link estimator learns from.
            if arrived and target != st.bs_index and target in bank:
                st.ledger.discharge(target, st.radio.rx(bits), "rx")
                accepted = bank[target].offer(pkt)
                if accepted:
                    pkt.hops += 1
                else:
                    stats.dropped_queue += 1
                ack = accepted
            elif arrived and target != st.bs_index:
                # Store-and-forward relay through an ordinary node
                # (hop-by-hop protocols): the packet joins the relay's
                # own buffer and continues next slot, bounded by the
                # TTL so routing loops cannot live forever.
                st.ledger.discharge(target, st.radio.rx(bits), "rx")
                pkt.hops += 1
                if pkt.hops >= max_hops:
                    pkt.status = PacketStatus.EXPIRED
                    stats.expired += 1
                    ack = False
                else:
                    pkt.retries = 0  # fresh ARQ budget per hop
                    self._buffers[target].append(pkt)
                    ack = True
            elif arrived:
                # Direct uplink: contends for the BS's per-slot budget
                # for unscheduled traffic (the "burden" behind Eq. 19's
                # penalty l).
                if bs_budget > 0:
                    bs_budget -= 1
                    pkt.hops += 1
                    pkt.status = PacketStatus.DELIVERED
                    pkt.delivered_slot = abs_slot + 1
                    stats.record_delivery(pkt.latency(), pkt.hops)
                    ack = True
                else:
                    pkt.status = PacketStatus.DROPPED_QUEUE
                    stats.dropped_queue += 1
                    ack = False
            else:
                # Link-layer ARQ: an unacknowledged channel loss (or a
                # silent dead relay) is retransmitted next slot, up to
                # max_retries; a buffer-full rejection (above) is an
                # explicit NACK and is not retried.
                if pkt.retries < self.config.max_retries:
                    pkt.retries += 1
                    self._buffers[node].appendleft(pkt)
                elif not target_alive:
                    pkt.status = PacketStatus.DROPPED_DEAD
                    stats.dropped_dead += 1
                else:
                    pkt.status = PacketStatus.DROPPED_CHANNEL
                    stats.dropped_channel += 1
                ack = False
            st.link_estimator.update(int(node), target, ack)
            self.protocol.on_transmission(st, int(node), target, ack)

    def _service(
        self,
        abs_slot: int,
        heads: np.ndarray,
        bank: QueueBank,
        fused: dict[int, list[tuple[PacketRecord, int]]],
        stats: PacketStats,
    ) -> None:
        st = self.state
        bits = self.config.traffic.packet_bits
        rate = self.config.queue.service_rate
        for h in heads:
            h = int(h)
            if not st.ledger.is_alive(h):
                continue
            served = bank[h].serve(rate)
            if not served:
                continue
            st.ledger.discharge(h, len(served) * st.radio.da(bits), "da")
            fused[h].extend((pkt, abs_slot + 1) for pkt in served)

    # ------------------------------------------------------------------
    def _uplink(
        self,
        heads: np.ndarray,
        fused: dict[int, list[tuple[PacketRecord, int]]],
        bank: QueueBank,
        end_slot: int,
        stats: PacketStats,
    ) -> None:
        """End-of-round fusion uplink, frame by frame along the path.

        Multi-hop paths (the FCM hierarchy) spend the *intermediate*
        head's leftover service capacity: a head that already served
        its own cluster at full rate cannot also relay transit
        aggregates — the congestion coupling behind the paper's
        observation that the multi-hop scheme "discards more than 10%
        packets when the network is congested".
        """
        st = self.state
        cfg = self.config
        bits = cfg.traffic.packet_bits
        ratio = cfg.compression_ratio
        total_service = cfg.queue.service_rate * cfg.traffic.slots_per_round
        relay_budget: dict[int, int] = {
            int(h): max(0, total_service - len(fused.get(int(h), [])))
            for h in heads
        }
        for h in heads:
            h = int(h)
            # Unserviced backlog expires with the round (membership
            # rotates; stale samples are not carried over).
            for pkt in bank[h].drain():
                pkt.status = PacketStatus.EXPIRED
                stats.expired += 1
            packets = fused.get(h, [])
            if not packets:
                continue
            if not st.ledger.is_alive(h):
                for pkt, _ in packets:
                    pkt.status = PacketStatus.DROPPED_DEAD
                    stats.dropped_dead += 1
                continue
            if cfg.aggregation == "perfect":
                n_frames = 1
            elif cfg.aggregation == "none":
                n_frames = len(packets)
            else:  # "ratio" — Table 2's proportional compression
                n_frames = max(1, math.ceil(len(packets) * ratio))
            frames: list[list[tuple[PacketRecord, int]]] = [
                packets[i::n_frames] for i in range(n_frames)
            ]
            path = self.protocol.uplink_path(st, h, heads)
            chain = [h, *[int(p) for p in path], st.bs_index]
            surviving = frames
            for hop_idx in range(len(chain) - 1):
                src, dst = chain[hop_idx], chain[hop_idx + 1]
                if not surviving:
                    break
                if not st.ledger.is_alive(src):
                    for frame in surviving:
                        for pkt, _ in frame:
                            pkt.status = PacketStatus.DROPPED_DEAD
                            stats.dropped_dead += 1
                    surviving = []
                    break
                d = st.distance(src, dst)
                dst_alive = dst == st.bs_index or st.ledger.is_alive(dst)
                next_frames: list[list[tuple[PacketRecord, int]]] = []
                for frame in surviving:
                    st.ledger.discharge(src, st.radio.tx(bits, d), "tx")
                    ok = dst_alive and st.channel.attempt(d)
                    if ok and dst != st.bs_index:
                        # Transit relay: needs leftover service capacity
                        # at the intermediate head (missing ACK = the
                        # relay's cache is exhausted).
                        if relay_budget.get(dst, 0) > 0:
                            relay_budget[dst] -= 1
                        else:
                            ok = False
                            for pkt, _ in frame:
                                pkt.status = PacketStatus.DROPPED_QUEUE
                                stats.dropped_queue += 1
                            st.link_estimator.update(src, dst, ok)
                            self.protocol.on_transmission(st, src, dst, ok)
                            continue
                    st.link_estimator.update(src, dst, ok)
                    self.protocol.on_transmission(st, src, dst, ok)
                    if not ok:
                        for pkt, _ in frame:
                            if dst_alive:
                                pkt.status = PacketStatus.DROPPED_CHANNEL
                                stats.dropped_channel += 1
                            else:
                                pkt.status = PacketStatus.DROPPED_DEAD
                                stats.dropped_dead += 1
                        continue
                    if dst != st.bs_index:
                        st.ledger.discharge(dst, st.radio.rx(bits), "rx")
                    next_frames.append(frame)
                surviving = next_frames
            # Whatever survived the whole chain reached the BS.
            hop_count = len(chain) - 1
            for frame in surviving:
                for pkt, service_slot in frame:
                    pkt.status = PacketStatus.DELIVERED
                    pkt.delivered_slot = service_slot + hop_count
                    stats.record_delivery(pkt.latency(), pkt.hops + hop_count)

    # ------------------------------------------------------------------
    def run_round(self) -> RoundStats:
        st = self.state
        cfg = self.config
        # Inter-round environment dynamics (extensions; both no-ops in
        # the paper's static, battery-only evaluation).
        if self.mobility is not None and st.round_index > 0:
            st.update_positions(
                self.mobility.step(st.nodes.positions, st.ledger.alive)
            )
        if self.harvester is not None and st.round_index > 0:
            self.harvester.apply(
                st.ledger, st.round_index, revive=cfg.harvesting.revive
            )
        energy_before = st.ledger.total_spent
        v_before = getattr(self.protocol, "v_update_count", 0)

        heads = self.protocol.validate_heads(
            st, self.protocol.select_cluster_heads(st)
        )
        st.mark_cluster_heads(heads)
        is_head = np.zeros(st.n, dtype=bool)
        if heads.size:
            is_head[heads] = True
        bank = QueueBank(heads, cfg.queue.capacity)
        fused: dict[int, list[tuple[PacketRecord, int]]] = {int(h): [] for h in heads}
        stats = PacketStats()

        slots = cfg.traffic.slots_per_round
        base_slot = st.round_index * slots
        for slot in range(slots):
            abs_slot = base_slot + slot
            self._generate(abs_slot, is_head, stats)
            self._transmit(abs_slot, heads, is_head, bank, stats)
            self._service(abs_slot, heads, bank, fused, stats)
        self._uplink(heads, fused, bank, base_slot + slots, stats)
        self.protocol.on_round_end(st, heads)

        if self._first_death_round is None and st.ledger.any_dead:
            self._first_death_round = st.round_index + 1

        peaks = [q.peak_length for _, q in bank.queues()]
        round_stats = RoundStats(
            round_index=st.round_index,
            n_heads=int(heads.size),
            n_alive=st.ledger.n_alive,
            energy_consumed=st.ledger.total_spent - energy_before,
            packets=stats,
            mean_queue_peak=float(np.mean(peaks)) if peaks else 0.0,
            v_updates=getattr(self.protocol, "v_update_count", 0) - v_before,
        )
        self._rounds.append(round_stats)
        self._totals.merge(stats)
        if self.trace is not None:
            self.trace.record(round_stats, heads, st.ledger.residual)
        st.round_index += 1
        return round_stats

    def run(self) -> SimulationResult:
        """Execute the full scenario and return the aggregated result."""
        for _ in range(self.config.rounds):
            self.run_round()
            if self.stop_on_death and self._first_death_round is not None:
                break
        # Source backlog that never left its sensor expires with the run.
        for buf in self._buffers:
            while buf:
                pkt = buf.popleft()
                pkt.status = PacketStatus.EXPIRED
                self._totals.expired += 1
        result = SimulationResult(
            protocol=self.protocol.name,
            rounds_executed=len(self._rounds),
            rounds_planned=self.config.rounds,
            per_round=self._rounds,
            packets=self._totals,
            total_energy=self.state.ledger.total_spent,
            first_death_round=self._first_death_round,
            n_alive_final=self.state.ledger.n_alive,
            consumption_ratio=self.state.ledger.consumption_ratio(),
            residual_final=self.state.ledger.snapshot(),
            positions=self.state.nodes.positions,
            seed=self.config.seed,
            mean_interarrival=self.config.traffic.mean_interarrival,
            v_update_total=getattr(self.protocol, "v_update_count", 0),
        )
        result.validate()
        return result


def run_simulation(
    config: SimulationConfig,
    protocol: "ClusteringProtocol",
    stop_on_death: bool = False,
    **engine_kwargs,
) -> SimulationResult:
    """One-call convenience wrapper: build an engine and run it."""
    return SimulationEngine(
        config, protocol, stop_on_death=stop_on_death, **engine_kwargs
    ).run()
