"""Simulation layer: state, traffic, engine, metrics."""

from .engine import SimulationEngine, run_simulation
from .metrics import RoundStats, SimulationResult
from .scenarios import SCENARIOS, build_scenario, scenario_names
from .state import NetworkState
from .trace import RoundTrace, TraceRecorder
from .traffic import PoissonTraffic

__all__ = [
    "NetworkState",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "RoundTrace",
    "TraceRecorder",
    "PoissonTraffic",
    "RoundStats",
    "SimulationEngine",
    "SimulationResult",
    "run_simulation",
]
