"""Named scenario catalog.

Every experiment, example, and benchmark in this repository runs one of
a small set of scenario *shapes*; this registry gives them stable names
so CLI users and tests can say ``build_scenario("table2")`` instead of
re-assembling configs.  Each entry returns a fresh
:class:`~repro.config.SimulationConfig` plus (optionally) a pre-built
deployment for non-cube layouts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import (
    DeploymentConfig,
    RoutingConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
)
from ..faults import build_fault_plan
from ..network.deployment import mountain_terrain, underwater_column
from ..network.node import BaseStation, NodeArray

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]

Scenario = tuple[SimulationConfig, NodeArray | None, BaseStation | None]


def _table2(seed: int) -> Scenario:
    """The calibrated Table-2 scenario (see EXPERIMENTS.md)."""
    return paper_config(seed=seed), None, None


def _table2_literal(seed: int) -> Scenario:
    """Table 2 with the literal 5 J batteries (immortal nodes)."""
    return paper_config(seed=seed, initial_energy=5.0), None, None


def _congested(seed: int) -> Scenario:
    """The most congested Fig.-3 operating point (lambda = 2)."""
    return paper_config(mean_interarrival=2.0, seed=seed), None, None


def _lifespan(seed: int) -> Scenario:
    """Energy-starved long-horizon run for FND/HND/LND milestones."""
    return (
        paper_config(seed=seed, initial_energy=0.1, rounds=60),
        None,
        None,
    )


def _underwater(seed: int) -> Scenario:
    """150-instrument water column with a surface-buoy sink."""
    side, n = 150.0, 150
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n, side=side, initial_energy=0.15,
            bs_position=(side / 2, side / 2, side),
        ),
        traffic=TrafficConfig(mean_interarrival=8.0),
        rounds=40,
        n_clusters=6,
        seed=seed,
    )
    nodes, bs = underwater_column(
        n, side, 0.15, rng=np.random.default_rng(10_000 + seed)
    )
    return config, nodes, bs


def _underwater_deep(seed: int) -> Scenario:
    """Deep 300 m water column, surface-buoy sink, cluster-tree uplink.

    The long-multi-hop stress preset: heads near the bottom are several
    tree hops from the sink, so the routing substrate (not the direct
    CH→BS link) carries most of the uplink energy.  Baked-in
    ``routing=tree`` — the substrate choice is part of the scenario,
    and hashes into the fingerprint like any other config field.
    """
    side, n = 300.0, 160
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n, side=side, initial_energy=0.2,
            bs_position=(side / 2, side / 2, side),
        ),
        traffic=TrafficConfig(mean_interarrival=10.0),
        rounds=48,
        n_clusters=8,
        seed=seed,
        routing=RoutingConfig(kind="tree"),
    )
    nodes, bs = underwater_column(
        n, side, 0.2, rng=np.random.default_rng(30_000 + seed)
    )
    return config, nodes, bs


def _largearea_corner(seed: int) -> Scenario:
    """500 m cube with the sink at a ground corner — maximal asymmetry.

    The far-corner nodes sit ~√3·side from the BS, so direct uplinks
    are brutally expensive and the cluster tree has to earn its keep;
    this is the large-area complement of the deep water column.
    """
    side = 500.0
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=150, side=side, initial_energy=0.3,
            bs_position=(0.0, 0.0, 0.0),
        ),
        traffic=TrafficConfig(mean_interarrival=6.0),
        rounds=30,
        n_clusters=8,
        seed=seed,
        routing=RoutingConfig(kind="tree"),
    )
    return config, None, None


def _mountain(seed: int) -> Scenario:
    """Sensors on a synthetic massif, summit gateway."""
    side, n = 250.0, 120
    nodes, bs = mountain_terrain(
        n, side, 0.2, rng=np.random.default_rng(20_000 + seed)
    )
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n, side=side, initial_energy=0.2,
            bs_position=tuple(bs.position),
        ),
        traffic=TrafficConfig(mean_interarrival=6.0),
        rounds=20,
        n_clusters=6,
        seed=seed,
    )
    return config, nodes, bs


def _heterogeneous(seed: int) -> Scenario:
    """DEEC's advanced-node setting: 20 % of nodes with double battery."""
    base = paper_config(seed=seed)
    config = base.replace(
        deployment=DeploymentConfig(
            n_nodes=100, side=200.0, initial_energy=0.25,
            advanced_fraction=0.2, advanced_factor=1.0,
        )
    )
    return config, None, None


def _chaos(fault_name: str, rounds: int = 16) -> Callable[[int], Scenario]:
    """Table-2 base scenario overlaid with a named fault plan from
    :mod:`repro.faults.catalog` (a couple of extra rounds so the
    post-fault recovery window is observable)."""

    def build(seed: int) -> Scenario:
        config = paper_config(seed=seed, rounds=rounds)
        return config.replace(faults=build_fault_plan(fault_name, config)), None, None

    return build


def _with_faults(
    base: Callable[[int], Scenario], fault_name: str
) -> Callable[[int], Scenario]:
    """Overlay a named fault plan on any catalog entry — the chaos twin
    of a preset.  The plan materialises against the preset's *own*
    config (node count, horizon), so the chaos scales with the
    scenario instead of assuming the Table-2 shape."""

    def build(seed: int) -> Scenario:
        config, nodes, bs = base(seed)
        return (
            config.replace(faults=build_fault_plan(fault_name, config)),
            nodes,
            bs,
        )

    return build


SCENARIOS: dict[str, Callable[[int], Scenario]] = {
    "table2": _table2,
    "table2-literal": _table2_literal,
    "congested": _congested,
    "lifespan": _lifespan,
    "underwater": _underwater,
    "underwater-deep": _underwater_deep,
    "largearea-corner": _largearea_corner,
    "mountain": _mountain,
    "heterogeneous": _heterogeneous,
    # Chaos overlays: the same Table-2 network under scheduled faults.
    "chaos-ch-kill": _chaos("ch-kill-mid"),
    "chaos-blackout": _chaos("blackout"),
    "chaos-churn": _chaos("churn"),
    "chaos-brownout": _chaos("brownout"),
    "chaos-partition": _chaos("partition"),
    # Chaos twins of the long-multi-hop presets: scheduled faults while
    # the cluster tree is load-bearing (repair/fallback under fire).
    "chaos-underwater-deep": _with_faults(_underwater_deep, "ch-kill-mid"),
    "chaos-largearea": _with_faults(_largearea_corner, "churn"),
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, seed: int = 0) -> Scenario:
    """Materialize a named scenario.

    Returns ``(config, nodes, bs)``; ``nodes``/``bs`` are ``None`` for
    cube scenarios (the engine deploys from the config).
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return SCENARIOS[name](seed)
