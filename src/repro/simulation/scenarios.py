"""Named scenario catalog.

Every experiment, example, and benchmark in this repository runs one of
a small set of scenario *shapes*; this registry gives them stable names
so CLI users and tests can say ``build_scenario("table2")`` instead of
re-assembling configs.  Each entry returns a fresh
:class:`~repro.config.SimulationConfig` plus (optionally) a pre-built
deployment for non-cube layouts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import (
    DeploymentConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
)
from ..faults import build_fault_plan
from ..network.deployment import mountain_terrain, underwater_column
from ..network.node import BaseStation, NodeArray

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]

Scenario = tuple[SimulationConfig, NodeArray | None, BaseStation | None]


def _table2(seed: int) -> Scenario:
    """The calibrated Table-2 scenario (see EXPERIMENTS.md)."""
    return paper_config(seed=seed), None, None


def _table2_literal(seed: int) -> Scenario:
    """Table 2 with the literal 5 J batteries (immortal nodes)."""
    return paper_config(seed=seed, initial_energy=5.0), None, None


def _congested(seed: int) -> Scenario:
    """The most congested Fig.-3 operating point (lambda = 2)."""
    return paper_config(mean_interarrival=2.0, seed=seed), None, None


def _lifespan(seed: int) -> Scenario:
    """Energy-starved long-horizon run for FND/HND/LND milestones."""
    return (
        paper_config(seed=seed, initial_energy=0.1, rounds=60),
        None,
        None,
    )


def _underwater(seed: int) -> Scenario:
    """150-instrument water column with a surface-buoy sink."""
    side, n = 150.0, 150
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n, side=side, initial_energy=0.15,
            bs_position=(side / 2, side / 2, side),
        ),
        traffic=TrafficConfig(mean_interarrival=8.0),
        rounds=40,
        n_clusters=6,
        seed=seed,
    )
    nodes, bs = underwater_column(
        n, side, 0.15, rng=np.random.default_rng(10_000 + seed)
    )
    return config, nodes, bs


def _mountain(seed: int) -> Scenario:
    """Sensors on a synthetic massif, summit gateway."""
    side, n = 250.0, 120
    nodes, bs = mountain_terrain(
        n, side, 0.2, rng=np.random.default_rng(20_000 + seed)
    )
    config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n, side=side, initial_energy=0.2,
            bs_position=tuple(bs.position),
        ),
        traffic=TrafficConfig(mean_interarrival=6.0),
        rounds=20,
        n_clusters=6,
        seed=seed,
    )
    return config, nodes, bs


def _heterogeneous(seed: int) -> Scenario:
    """DEEC's advanced-node setting: 20 % of nodes with double battery."""
    base = paper_config(seed=seed)
    config = base.replace(
        deployment=DeploymentConfig(
            n_nodes=100, side=200.0, initial_energy=0.25,
            advanced_fraction=0.2, advanced_factor=1.0,
        )
    )
    return config, None, None


def _chaos(fault_name: str, rounds: int = 16) -> Callable[[int], Scenario]:
    """Table-2 base scenario overlaid with a named fault plan from
    :mod:`repro.faults.catalog` (a couple of extra rounds so the
    post-fault recovery window is observable)."""

    def build(seed: int) -> Scenario:
        config = paper_config(seed=seed, rounds=rounds)
        return config.replace(faults=build_fault_plan(fault_name, config)), None, None

    return build


SCENARIOS: dict[str, Callable[[int], Scenario]] = {
    "table2": _table2,
    "table2-literal": _table2_literal,
    "congested": _congested,
    "lifespan": _lifespan,
    "underwater": _underwater,
    "mountain": _mountain,
    "heterogeneous": _heterogeneous,
    # Chaos overlays: the same Table-2 network under scheduled faults.
    "chaos-ch-kill": _chaos("ch-kill-mid"),
    "chaos-blackout": _chaos("blackout"),
    "chaos-churn": _chaos("churn"),
    "chaos-brownout": _chaos("brownout"),
    "chaos-partition": _chaos("partition"),
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, seed: int = 0) -> Scenario:
    """Materialize a named scenario.

    Returns ``(config, nodes, bs)``; ``nodes``/``bs`` are ``None`` for
    cube scenarios (the engine deploys from the config).
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return SCENARIOS[name](seed)
