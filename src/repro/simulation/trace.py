"""Structured per-round tracing.

Debugging a 20-round, 100-node run from aggregate metrics alone is
painful; a :class:`TraceRecorder` attached to the engine captures one
structured record per round (heads, per-cause packet counts, energy,
liveness) and can replay them as dicts or dump them as JSON lines.
Disabled by default — tracing is opt-in and costs one small dict per
round.

Trace dumps are *self-describing*: the first JSONL line is a run
manifest (``kind: "manifest"`` — protocol, seed, config fingerprint,
package version; see :mod:`repro.telemetry.manifest`) so a trace file
found on disk months later still identifies the exact scenario that
produced it.  :meth:`TraceRecorder.parse_jsonl` accepts dumps with or
without the header, so pre-manifest traces keep loading.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from ..telemetry.manifest import MANIFEST_KIND
from .metrics import RoundStats

__all__ = ["PATH_KIND", "RoundTrace", "TraceRecorder"]

#: ``kind`` tag of per-packet path records (active routing substrates
#: append one per walked uplink; see docs/routing.md for the schema).
PATH_KIND = "path"


@dataclass(frozen=True)
class RoundTrace:
    """One round's structured trace record."""

    round_index: int
    heads: tuple[int, ...]
    n_alive: int
    generated: int
    delivered: int
    dropped_channel: int
    dropped_queue: int
    dropped_dead: int
    expired: int
    energy_consumed: float
    mean_queue_peak: float
    min_residual: float
    total_residual: float

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class TraceRecorder:
    """Collects :class:`RoundTrace` rows; attach via
    ``SimulationEngine(..., trace=recorder)``.

    ``manifest`` is the self-describing header emitted before the round
    records in JSONL dumps.  The engine fills it in automatically when
    it is still None at construction time; set it explicitly (or to a
    custom dict) to override.
    """

    records: list[RoundTrace] = field(default_factory=list)
    manifest: dict | None = None
    #: Per-packet path records (``kind: "path"``), appended by the
    #: engine when an active routing substrate walks an uplink chain.
    #: Empty under ``routing=direct`` — dumps are byte-identical to
    #: pre-substrate ones.
    paths: list[dict] = field(default_factory=list)

    def record_path(
        self,
        round_index: int,
        head: int,
        path: list[int],
        hops: int,
        frames: int,
        delivered: int,
    ) -> None:
        """One uplink's hop list: the relay chain ``head -> ... -> BS``
        (intermediate heads only), how many fused frames entered it,
        and how many reached the BS."""
        self.paths.append(
            {
                "kind": PATH_KIND,
                "round": int(round_index),
                "head": int(head),
                "path": [int(p) for p in path],
                "hops": int(hops),
                "frames": int(frames),
                "delivered": int(delivered),
            }
        )

    def record(self, stats: RoundStats, heads: np.ndarray, residual: np.ndarray) -> None:
        p = stats.packets
        self.records.append(
            RoundTrace(
                round_index=stats.round_index,
                heads=tuple(int(h) for h in np.asarray(heads)),
                n_alive=stats.n_alive,
                generated=p.generated,
                delivered=p.delivered,
                dropped_channel=p.dropped_channel,
                dropped_queue=p.dropped_queue,
                dropped_dead=p.dropped_dead,
                expired=p.expired,
                energy_consumed=stats.energy_consumed,
                mean_queue_peak=stats.mean_queue_peak,
                min_residual=float(residual.min()),
                total_residual=float(residual.sum()),
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def head_service_counts(self) -> dict[int, int]:
        """How many rounds each node served as a head — the rotation
        fairness view."""
        counts: dict[int, int] = {}
        for rec in self.records:
            for h in rec.heads:
                counts[h] = counts.get(h, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """One JSON object per line, ready for jq/pandas.

        The manifest header (when present) is the first line; round
        records follow in round order, then any per-packet path records
        (active routing substrates only) in emission order.
        """
        lines = []
        if self.manifest is not None:
            lines.append(json.dumps(self.manifest, sort_keys=True))
        lines.extend(json.dumps(rec.as_dict()) for rec in self.records)
        lines.extend(json.dumps(rec, sort_keys=True) for rec in self.paths)
        return "\n".join(lines)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl() + "\n")

    @classmethod
    def parse_jsonl(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder from a JSONL dump.

        Accepts dumps with or without the manifest header line; unknown
        keys in round records are ignored so newer dumps load under
        older record definitions (and vice versa).
        """
        recorder = cls()
        known = {f.name for f in fields(RoundTrace)}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == MANIFEST_KIND:
                if recorder.manifest is not None or recorder.records:
                    raise ValueError(
                        "manifest line must be first and appear at most once"
                    )
                recorder.manifest = obj
                continue
            if obj.get("kind") == PATH_KIND:
                recorder.paths.append(obj)
                continue
            row = {k: v for k, v in obj.items() if k in known}
            row["heads"] = tuple(row.get("heads", ()))
            recorder.records.append(RoundTrace(**row))
        return recorder

    @classmethod
    def load_jsonl(cls, path) -> "TraceRecorder":
        """Read a dump written by :meth:`write_jsonl`."""
        with open(path, encoding="utf-8") as fh:
            return cls.parse_jsonl(fh.read())
