"""Graceful-drain signal handling for long-running sweep processes.

``kill -TERM`` (or Ctrl-C) against a shard runner, the scheduler, or
``repro serve`` should not tear the process mid-cell: artifacts are
append-only and atomic per row, but an abrupt exit discards the
in-flight cell's work and leaves the status sidecar claiming
``running`` forever.  :func:`drain_on_signals` installs SIGTERM/SIGINT
handlers that merely *latch* a :class:`DrainFlag`; the work loops poll
the flag at safe boundaries (cell boundaries for sweeps, round
boundaries inside a checkpointing engine), finish the unit they are
on, snapshot/republish status, and return cleanly.

A second signal while draining falls back to the previously installed
handler (typically ``KeyboardInterrupt``/termination), so an operator
can always escalate.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager

__all__ = ["DrainFlag", "drain_on_signals"]

#: Signals a drain context latches.
_DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class DrainFlag:
    """A latchable "please stop at the next safe boundary" flag.

    Callable (``flag()``) so it slots directly into the engine's
    ``stop_requested`` hook and the sweep loops' polling sites.
    """

    def __init__(self) -> None:
        self._set = False
        #: Signal number that latched the flag (None = never latched,
        #: or latched programmatically via :meth:`request`).
        self.signum: int | None = None

    def request(self, signum: int | None = None) -> None:
        self._set = True
        if signum is not None and self.signum is None:
            self.signum = signum

    @property
    def requested(self) -> bool:
        return self._set

    def __call__(self) -> bool:
        return self._set


@contextmanager
def drain_on_signals(flag: DrainFlag | None = None):
    """Latch ``flag`` on the first SIGTERM/SIGINT; yield the flag.

    The first signal latches and *re-installs the previous handlers*,
    so a second signal behaves exactly as it would have without the
    drain context (escalation path).  Handlers are always restored on
    exit.  Must run on the main thread (CPython restricts
    ``signal.signal`` to it); worker processes never call this — the
    coordinator drains and stops assigning instead.
    """
    flag = flag if flag is not None else DrainFlag()
    previous = {}

    def restore() -> None:
        while previous:
            signum, handler = previous.popitem()
            signal.signal(signum, handler)

    def on_signal(signum, frame) -> None:
        flag.request(signum)
        restore()

    try:
        for signum in _DRAIN_SIGNALS:
            previous[signum] = signal.signal(signum, on_signal)
    except ValueError:
        # Not the main thread (or an embedded interpreter): drain
        # signals cannot be installed; the flag still works when
        # latched programmatically.
        restore()
        yield flag
        return
    try:
        yield flag
    finally:
        restore()
