"""Live shard progress: a status sidecar next to each shard artifact.

A sweep sharded ``--shard k/K`` across machines is opaque while it
runs: the artifact is an append-only stream of finished cells, so the
only way to estimate progress was to count its rows by hand.  This
module gives :func:`~repro.parallel.sharding.run_shard` a heartbeat —
a *separate* sidecar file (``<artifact>.status.jsonl``) it rewrites
atomically as cells finish, holding ``shard-status`` rows with cells
done/failed/retried, an EWMA of the per-cell latency, and an ETA.

The sidecar is deliberately **not** part of the artifact:

* the resume contract says a complete artifact is left byte-untouched
  (the shard-determinism CI gate asserts it), so progress rows cannot
  live inside it;
* status rows carry wall-clock and are per-machine ephemera — they
  never merge, never fingerprint, and a stale sidecar is harmless.

Each rewrite keeps the first row (the launch record) plus the newest
:data:`MAX_STATUS_ROWS` − 1 heartbeats, so the file stays small on
long shards while preserving the start-of-run context.  Writes go via
a sibling temp file + ``os.replace`` so a reader (``repro status``)
never sees a torn row; :func:`load_status` additionally tolerates a
torn tail for robustness against non-atomic copies.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "EWMA_ALPHA",
    "MAX_STATUS_ROWS",
    "STATUS_KIND",
    "STATUS_SCHEMA",
    "ShardStatusWriter",
    "find_status_files",
    "load_status",
    "shard_status_path",
]

#: ``kind`` discriminator of a status row.
STATUS_KIND = "shard-status"
#: Schema version of the status row layout.
STATUS_SCHEMA = 1
#: Rows kept per sidecar: the launch row plus the newest heartbeats.
MAX_STATUS_ROWS = 64
#: Smoothing factor of the per-cell latency EWMA.
EWMA_ALPHA = 0.3


def shard_status_path(artifact_path) -> Path:
    """The sidecar path for a shard artifact (``<name>.status.jsonl``)."""
    p = Path(artifact_path)
    return p.with_name(p.name + ".status.jsonl")


class ShardStatusWriter:
    """Appends heartbeat rows to a shard's status sidecar.

    Owned by :func:`~repro.parallel.sharding.run_shard`; one writer per
    shard invocation.  ``clock``/``wall`` are injectable for tests
    (monotonic seconds for latency math, Unix seconds for freshness).
    """

    def __init__(
        self,
        artifact_path,
        *,
        spec_fingerprint: str,
        shard: int,
        num_shards: int,
        cells_total: int,
        clock=time.monotonic,
        wall=time.time,
    ) -> None:
        self.path = shard_status_path(artifact_path)
        self.spec_fingerprint = spec_fingerprint
        self.shard = int(shard)
        self.num_shards = int(num_shards)
        self.cells_total = int(cells_total)
        self._clock = clock
        self._wall = wall
        self._t_start = 0.0
        self._t_last_cell = 0.0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.resumed = 0
        #: Scheduler-only counters (stay 0 under static sharding): cells
        #: a worker took from another home queue, and leases reclaimed
        #: from expired/dead workers.  Additive keys — STATUS_SCHEMA is
        #: unchanged because readers of schema 1 ignore unknown keys.
        self.steals = 0
        self.reclaimed = 0
        self.ewma_cell_seconds: float | None = None
        self._rows: list[dict] = []

    def start(self, resumed: int = 0) -> None:
        """Record the launch row (``resumed`` = cells reused as-is)."""
        self._t_start = self._clock()
        self._t_last_cell = self._t_start
        self.resumed = int(resumed)
        self.done = int(resumed)
        self._write("running")

    def cell_finished(self, *, error: bool = False, attempts: int = 1) -> None:
        """Record one finished cell (ok or error) and its latency."""
        now = self._clock()
        dt = now - self._t_last_cell
        self._t_last_cell = now
        if self.ewma_cell_seconds is None:
            self.ewma_cell_seconds = dt
        else:
            self.ewma_cell_seconds += EWMA_ALPHA * (dt - self.ewma_cell_seconds)
        self.done += 1
        if error:
            self.failed += 1
        if attempts > 1:
            self.retried += 1
        self._write("running")

    def finish(self) -> None:
        """Record the terminal row (state ``complete``)."""
        self._write("complete")

    def draining(self) -> None:
        """Record that a drain signal arrived: the shard is finishing
        its in-flight cell(s) and will stop without starting new ones."""
        self._write("draining")

    def stopped(self) -> None:
        """Record the terminal row of a drained shard (state
        ``stopped``): a clean early exit, not a completion — resuming
        the same artifact later picks up the remaining cells."""
        self._write("stopped")

    def _row(self, state: str) -> dict:
        remaining = max(0, self.cells_total - self.done)
        if state == "complete" or remaining == 0:
            eta: float | None = 0.0
        elif self.ewma_cell_seconds is None:
            eta = None
        else:
            eta = self.ewma_cell_seconds * remaining
        return {
            "kind": STATUS_KIND,
            "schema": STATUS_SCHEMA,
            "spec_fingerprint": self.spec_fingerprint,
            "shard": self.shard,
            "num_shards": self.num_shards,
            "cells_total": self.cells_total,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "resumed": self.resumed,
            "steals": self.steals,
            "reclaimed": self.reclaimed,
            "ewma_cell_seconds": self.ewma_cell_seconds,
            "eta_seconds": eta,
            "elapsed_seconds": self._clock() - self._t_start,
            "updated_unix": self._wall(),
            "state": state,
        }

    def _write(self, state: str) -> None:
        self._rows.append(self._row(state))
        if len(self._rows) > MAX_STATUS_ROWS:
            # Keep the launch row and the newest heartbeats.
            self._rows = [self._rows[0]] + self._rows[-(MAX_STATUS_ROWS - 1):]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for row in self._rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)


def load_status(path) -> dict:
    """The newest valid status row of one sidecar.

    Tolerates a torn final line (non-atomic copies of a live file);
    raises ``ValueError`` when no valid row exists at all.
    """
    last: dict | None = None
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if isinstance(row, dict) and row.get("kind") == STATUS_KIND:
                last = row
    if last is None:
        raise ValueError(f"no {STATUS_KIND!r} rows in {path}")
    return last


def find_status_files(paths) -> list[Path]:
    """Resolve CLI operands to status sidecars.

    A directory contributes every ``*.status.jsonl`` beneath it
    (sorted); a sidecar path contributes itself; any other file path
    contributes its own sidecar when one exists.
    """
    found: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found.extend(sorted(p.glob("**/*.status.jsonl")))
        elif p.name.endswith(".status.jsonl"):
            if p.exists():
                found.append(p)
        else:
            sidecar = shard_status_path(p)
            if sidecar.exists():
                found.append(sidecar)
    # De-duplicate while preserving order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for p in found:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique
