"""Sweep-level sharding: partition a grid, run shards anywhere, merge.

The slot kernel batches *within* one simulation and the telemetry layer
made per-worker results mergeable; this module is the third scale axis:
it lets one sweep grid (protocol × λ × seed) run as ``K`` independent
*shards* — separate process pools, separate invocations, separate
hosts — and folds the shard artifacts back into a
:class:`~repro.analysis.sweep.SweepResult` that is equal to the serial
run on every deterministic metric.

Identity scheme
---------------
Every grid cell gets a **stable cell ID**: a 16-hex digest of
``(protocol, lambda, seed, config_fingerprint, stop_on_death,
backend)``, where the config fingerprint covers the complete
:class:`~repro.config.SimulationConfig` the cell will run,
``stop_on_death`` is the one run knob that shapes the result without
living in the config, and ``backend`` is the *resolved* kernel-backend
name (never ``"auto"``) so artifacts carry their numeric provenance.
IDs therefore survive re-enumeration, grid extension, and host
boundaries — and change exactly when the scenario a cell would
simulate (or the backend it would run on) changes.

Shard assignment ranks cells by their ID and deals them round-robin:
``shard(cell) = rank(cell_id) mod K``.  That keeps shards balanced
(sizes differ by at most one), makes ``K = N`` produce singleton
shards, and depends only on the *set* of cell IDs, never on
enumeration order.

Artifact format
---------------
A shard writes one JSONL artifact: a ``shard-manifest`` header
(shard ``k/K``, the full sweep spec, and the spec fingerprint), then
one record per cell — ``cell`` rows carrying the summary (and the
cell's telemetry snapshot when instrumented) or ``cell-error`` rows
when a worker kept failing after retries — and a ``shard-telemetry``
trailer with the shard-level merged snapshot.  Rows are appended as
results stream back, so a crash loses at most the in-flight cells:
rerunning with ``resume=True`` skips every cell whose row is already
present with a matching config fingerprint and recomputes the rest.

Merging (:func:`merge_artifacts`) accepts any subset of artifacts in
any order, dedupes by cell ID (value-conflicts raise — that would mean
nondeterminism), reports error rows and missing cells instead of
silently dropping them, and reassembles rows in canonical grid order.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..telemetry.jsonl import (
    JsonlWriter,
    detect_compression,
    read_jsonl_tolerant,
    resolve_compression,
)
from ..telemetry.manifest import (
    SHARD_MANIFEST_KIND,
    shard_manifest,
    stable_fingerprint,
)
from ..telemetry.registry import deterministic_view, merge_snapshots
from .pool import fold_results, iter_tasks
from .status import ShardStatusWriter

__all__ = [
    "CELL_KIND",
    "CELL_ERROR_KIND",
    "SHARD_TELEMETRY_KIND",
    "MergedSweep",
    "ShardArtifact",
    "ShardRunResult",
    "SweepCell",
    "SweepSpec",
    "classify_error",
    "load_artifact",
    "merge_artifacts",
    "parse_shard_arg",
    "partition_cells",
    "run_shard",
    "write_merged_artifact",
]

#: Record discriminators inside a shard artifact (after the manifest).
CELL_KIND = "cell"
CELL_ERROR_KIND = "cell-error"
SHARD_TELEMETRY_KIND = "shard-telemetry"


# ---------------------------------------------------------------------------
# Grid specification and cell identity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """The complete, serialisable description of one sweep grid.

    This is the unit that crosses host boundaries: a spec fully
    determines the cell set, every cell's scenario config, the
    canonical row order, and (via :attr:`fingerprint`) whether two
    artifacts belong to the same sweep.
    """

    protocols: tuple[str, ...]
    lambdas: tuple[float, ...]
    seeds: tuple[int, ...]
    initial_energy: float = 0.25
    rounds: int = 20
    stop_on_death: bool = False
    telemetry: bool = False
    #: Kernel-backend selector for every cell.  The payload (and hence
    #: the spec fingerprint) keeps the selector as written — the user's
    #: intent — while cell identity uses the *resolved* name (see
    #: :meth:`cells`), so ``"auto"`` specs resumed on hosts that resolve
    #: differently recompute rather than reuse foreign-backend rows.
    backend: str = "auto"
    #: Optional chaos overlay: the name of a fault scenario from
    #: :data:`repro.faults.FAULT_SCENARIOS`, materialised against each
    #: cell's config by :func:`repro.analysis.sweep.run_cell`.  The
    #: resulting plan is a config field, so it flows into the config
    #: fingerprint and hence the cell ID — fault sweeps shard, resume,
    #: and merge exactly like fault-free ones, and never mix with them.
    faults: str | None = None
    #: Numeric equivalence tier every cell runs under
    #: (:data:`repro.kernels.EQUIVALENCE_CHOICES`).  A config field,
    #: so it flows into the config fingerprint — and it additionally
    #: hashes into the cell ID explicitly: bitwise and statistical
    #: artifacts never resume into or merge with each other
    #: (:func:`merge_artifacts` raises ``EquivalenceError``).
    equivalence: str = "bitwise"
    #: Optional distance-block memory budget (MiB) for large-N cells;
    #: a config field, hence fingerprinted.  Bit-neutral in the bitwise
    #: tier (the blocked kernel is bit-identical per row) but still run
    #: identity: it shapes peak memory, which is provenance worth
    #: pinning for a resumed large-N sweep.
    max_block_mb: float | None = None
    #: Routing substrate every cell runs under
    #: (:data:`repro.config.ROUTING_CHOICES`).  A config field
    #: (``SimulationConfig.routing``), so it flows into the config
    #: fingerprint and hence the cell ID — direct, tree, and qspt
    #: artifacts never resume into or merge with each other.
    routing: str = "direct"

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(
            self, "lambdas", tuple(float(v) for v in self.lambdas)
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not (self.protocols and self.lambdas and self.seeds):
            raise ValueError("sweep spec needs >= 1 protocol, lambda, and seed")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty selector string")
        from ..config import EQUIVALENCE_CHOICES

        if self.equivalence not in EQUIVALENCE_CHOICES:
            raise ValueError(
                f"equivalence must be one of {EQUIVALENCE_CHOICES}, "
                f"got {self.equivalence!r}"
            )
        if self.max_block_mb is not None and self.max_block_mb <= 0.0:
            raise ValueError("max_block_mb must be positive when given")
        from ..config import ROUTING_CHOICES

        if self.routing not in ROUTING_CHOICES:
            raise ValueError(
                f"routing must be one of {ROUTING_CHOICES}, "
                f"got {self.routing!r}"
            )

    # -- serialisation -------------------------------------------------
    def to_payload(self) -> dict:
        """Plain JSON-able dict (the manifest's ``spec`` value)."""
        payload = dataclasses.asdict(self)
        payload["protocols"] = list(self.protocols)
        payload["lambdas"] = list(self.lambdas)
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepSpec":
        return cls(**payload)

    @property
    def fingerprint(self) -> str:
        """Stable digest of the whole grid description."""
        return stable_fingerprint(self.to_payload())

    # -- enumeration ---------------------------------------------------
    def cell_args(self) -> list[tuple]:
        """Canonical (protocol × lambda × seed) enumeration as the
        positional argument tuples of :func:`repro.analysis.sweep.run_cell`."""
        return [
            (
                p,
                lam,
                seed,
                self.initial_energy,
                self.rounds,
                self.stop_on_death,
                self.telemetry,
                self.backend,
                self.faults,
                self.equivalence,
                self.max_block_mb,
                self.routing,
            )
            for p in self.protocols
            for lam in self.lambdas
            for seed in self.seeds
        ]

    def resolved_backend(self) -> str:
        """The concrete backend name this host would run the cells on
        (``"auto"`` resolved by availability; never ``"auto"`` itself)."""
        from ..kernels import resolve_backend_name

        return resolve_backend_name(self.backend)

    def cells(self) -> list["SweepCell"]:
        """Enumerate the grid with stable identities, in canonical order.

        Cell identity pins the *resolved* backend name — mirroring what
        :func:`repro.analysis.sweep.run_cell` writes into the cell's
        config — so rows computed under one backend are never reused or
        merged as another's (the ``stop_on_death`` lesson, applied to
        the one knob that varies by *host capability* rather than by
        spec value).
        """
        import dataclasses as _dc

        from ..config import RoutingConfig, paper_config
        from ..telemetry.manifest import config_fingerprint

        backend = self.resolved_backend()
        out = []
        for p in self.protocols:
            for lam in self.lambdas:
                for seed in self.seeds:
                    cfg = _dc.replace(
                        paper_config(
                            mean_interarrival=lam,
                            seed=seed,
                            rounds=self.rounds,
                            initial_energy=self.initial_energy,
                        ),
                        backend=backend,
                        equivalence=self.equivalence,
                        max_block_mb=self.max_block_mb,
                        routing=RoutingConfig(kind=self.routing),
                    )
                    if self.faults:
                        # Mirror run_cell exactly: the materialised plan
                        # is part of the config a worker will fingerprint.
                        from ..faults import build_fault_plan

                        cfg = cfg.replace(
                            faults=build_fault_plan(self.faults, cfg)
                        )
                    fp = config_fingerprint(cfg)
                    out.append(
                        SweepCell.build(
                            p, lam, seed, fp, self.stop_on_death, backend,
                            self.equivalence,
                        )
                    )
        return out

    def __len__(self) -> int:
        return len(self.protocols) * len(self.lambdas) * len(self.seeds)


@dataclass(frozen=True)
class SweepCell:
    """One grid point plus its stable identity."""

    protocol: str
    lam: float
    seed: int
    config_fingerprint: str
    cell_id: str
    backend: str = "numpy"
    equivalence: str = "bitwise"

    @classmethod
    def build(
        cls,
        protocol: str,
        lam: float,
        seed: int,
        config_fingerprint: str,
        stop_on_death: bool = False,
        backend: str = "numpy",
        equivalence: str = "bitwise",
    ) -> "SweepCell":
        # The ID must cover everything that determines the cell's
        # result: stop_on_death changes run_simulation's outcome but is
        # not a SimulationConfig field, so it hashes in explicitly —
        # otherwise a resume after flipping it would reuse stale rows.
        # The resolved backend and the equivalence tier also hash in
        # explicitly (besides living in the config fingerprint):
        # provenance must survive even for callers fingerprinting
        # configs without those fields, and a statistical row must
        # never satisfy a bitwise resume.
        cell_id = stable_fingerprint(
            {
                "protocol": protocol,
                "lambda": float(lam),
                "seed": int(seed),
                "config_fingerprint": config_fingerprint,
                "stop_on_death": bool(stop_on_death),
                "backend": str(backend),
                "equivalence": str(equivalence),
            }
        )
        return cls(
            protocol, float(lam), int(seed), config_fingerprint, cell_id,
            str(backend), str(equivalence),
        )


def partition_cells(
    cells: Sequence[SweepCell], num_shards: int
) -> list[list[SweepCell]]:
    """Deal cells into ``num_shards`` balanced, deterministic shards.

    Cells are ranked by cell ID (a stable hash) and assigned
    ``rank mod num_shards``; within each shard the canonical
    enumeration order of ``cells`` is preserved.  Shard sizes differ by
    at most one, and the assignment is a pure function of the cell-ID
    set — independent of enumeration order, process, and host.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    rank = {
        cell_id: i
        for i, cell_id in enumerate(sorted(c.cell_id for c in cells))
    }
    if len(rank) != len(cells):
        raise ValueError("duplicate cell IDs in grid")
    shards: list[list[SweepCell]] = [[] for _ in range(num_shards)]
    for cell in cells:
        shards[rank[cell.cell_id] % num_shards].append(cell)
    return shards


def parse_shard_arg(text: str) -> tuple[int, int]:
    """Parse the CLI's ``k/K`` shard selector (1-based)."""
    try:
        k_str, total_str = text.split("/")
        k, total = int(k_str), int(total_str)
    except ValueError:
        raise ValueError(
            f"shard selector {text!r} is not of the form k/K"
        ) from None
    if not 1 <= k <= total:
        raise ValueError(f"shard selector {text!r}: need 1 <= k <= K")
    return k, total


# ---------------------------------------------------------------------------
# Shard execution (checkpoint, resume, retry)
# ---------------------------------------------------------------------------


def _default_cell_fn(
    protocol: str,
    lam: float,
    seed: int,
    initial_energy: float,
    rounds: int,
    stop_on_death: bool,
    telemetry: bool,
    backend: str = "auto",
    faults: str | None = None,
    equivalence: str = "bitwise",
    max_block_mb: float | None = None,
    routing: str = "direct",
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_keep_last: int = 3,
):
    # Deferred import keeps repro.parallel free of an import cycle with
    # repro.analysis (which imports this package at module scope).
    from ..analysis.sweep import run_cell

    return run_cell(
        protocol,
        lam,
        seed,
        initial_energy=initial_energy,
        rounds=rounds,
        stop_on_death=stop_on_death,
        telemetry=telemetry,
        backend=backend,
        faults=faults,
        equivalence=equivalence,
        max_block_mb=max_block_mb,
        routing=routing,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_keep_last=checkpoint_keep_last,
    )


def _deterministic_errors() -> tuple:
    """Exception classes whose failures are a pure function of the
    cell's inputs — a bad value, a missing attribute, a broken
    invariant, an unpicklable payload.  Re-running the identical
    deterministic computation cannot change the outcome, so retrying
    (or re-leasing) them only burns worker time.  Everything else
    (OSError, MemoryError, RuntimeError, worker deaths, ...) is treated
    as transient: environmental causes — a flaky filesystem, memory
    pressure, a worker wedged mid-import, a SIGKILL — can heal between
    attempts.  The full taxonomy is pinned by
    ``tests/parallel/test_classify_errors.py``, which is the spec the
    scheduler's re-lease decisions run on.
    """
    import pickle

    return (
        ValueError,
        TypeError,
        LookupError,
        AttributeError,
        AssertionError,
        ArithmeticError,
        NotImplementedError,
        # Serialising the same result object fails the same way every
        # time: a pickling casualty re-leased to another worker would
        # just fail there too.
        pickle.PicklingError,
        pickle.UnpicklingError,
        # RecursionError subclasses RuntimeError, but unbounded
        # recursion is a property of the computation, not the host.
        RecursionError,
    )


_DETERMINISTIC_ERRORS = _deterministic_errors()


def classify_error(exc: BaseException) -> str:
    """Classify a cell failure as ``"deterministic"`` or ``"transient"``.

    Deterministic failures will reproduce on every retry of the same
    cell (same config, same seed, same code); transient ones might not.
    The class drives the retry policy in :func:`_guarded_cell`, the
    re-lease policy in :class:`repro.parallel.scheduler.SweepScheduler`
    (deterministic failures become ``cell-error`` rows immediately;
    transient ones re-lease), and is recorded on ``cell-error``
    artifact rows so a merge report can tell "rerun these shards"
    casualties from "fix the code" ones.  ``KeyboardInterrupt`` /
    ``SystemExit`` classify transient — an interrupted worker says
    nothing about the cell — though :func:`_guarded_cell` never absorbs
    them (BaseException rips through; the scheduler sees a dead
    worker instead).
    """
    return (
        "deterministic"
        if isinstance(exc, _DETERMINISTIC_ERRORS)
        else "transient"
    )


def _guarded_cell(cell_fn: Callable, args: tuple, retries: int) -> tuple:
    """Run one cell in a worker without ever raising.

    A raised exception would abort the whole ``pool.map``; instead the
    cell is retried up to ``retries`` extra times in place — but only
    for *transient* failures (see :func:`classify_error`): a
    deterministic failure is recorded after the first attempt, since
    replaying an identical computation cannot change its outcome.
    Either way an error payload comes home so the shard completes and
    records the casualty.
    """
    last: Exception | None = None
    attempts = 0
    for attempts in range(1, retries + 2):
        try:
            return ("ok", cell_fn(*args), attempts)
        except Exception as exc:  # noqa: BLE001 - worker boundary
            last = exc
            if classify_error(exc) == "deterministic":
                break
    return (
        "error",
        {
            "type": type(last).__name__,
            "message": str(last),
            "class": classify_error(last),
        },
        attempts,
    )


@dataclass
class ShardRunResult:
    """Outcome of one :func:`run_shard` invocation."""

    spec: SweepSpec
    shard: int
    num_shards: int
    path: Path
    cells: list[SweepCell]
    #: Cell IDs actually simulated in this invocation.
    executed: list[str] = field(default_factory=list)
    #: Cell IDs reused from the existing artifact (resume hits).
    skipped: list[str] = field(default_factory=list)
    #: Error records (post-retry) produced by this invocation.
    errors: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _jsonable(value):
    """Coerce numpy scalars so artifact rows serialise anywhere."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


def _cell_record(cell: SweepCell, summary: dict, attempts: int) -> dict:
    summary = dict(summary)
    snapshot = summary.pop("telemetry", None)
    record = {
        "kind": CELL_KIND,
        "cell_id": cell.cell_id,
        "protocol": cell.protocol,
        "lambda": cell.lam,
        "seed": cell.seed,
        "config_fingerprint": cell.config_fingerprint,
        "backend": cell.backend,
        "equivalence": cell.equivalence,
        "attempts": attempts,
        "summary": _jsonable(summary),
    }
    if snapshot is not None:
        record["telemetry"] = _jsonable(snapshot)
    return record


def _error_record(cell: SweepCell, error: dict, attempts: int) -> dict:
    return {
        "kind": CELL_ERROR_KIND,
        "cell_id": cell.cell_id,
        "protocol": cell.protocol,
        "lambda": cell.lam,
        "seed": cell.seed,
        "config_fingerprint": cell.config_fingerprint,
        "backend": cell.backend,
        "equivalence": cell.equivalence,
        "attempts": attempts,
        "error": dict(error),
    }


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True)


def artifact_compression(out_path, compression: str | None) -> str:
    """Resolve the codec one artifact (re)write should use.

    An explicit selector wins (``"auto"`` resolved by availability);
    ``None`` keeps whatever an existing artifact already uses — sniffed
    from its magic bytes, or from the path suffix for a fresh file —
    so a resumed compressed artifact stays compressed without the
    caller restating the choice.
    """
    if compression is not None:
        return resolve_compression(compression)
    return detect_compression(out_path)


def run_shard(
    spec: SweepSpec,
    shard: int,
    num_shards: int,
    out_path,
    *,
    resume: bool = True,
    max_workers: int | None = None,
    serial: bool = False,
    retries: int = 1,
    cell_fn: Callable | None = None,
    compression: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
    checkpoint_keep_last: int = 3,
    stop_requested: Callable[[], bool] | None = None,
) -> ShardRunResult:
    """Execute shard ``shard/num_shards`` of ``spec`` into a JSONL artifact.

    Parameters
    ----------
    spec:
        The full grid; this invocation runs only the cells the rank
        partition assigns to ``shard`` (1-based, as in ``--shard k/K``).
    out_path:
        Artifact path.  With ``resume=True`` an existing artifact is
        mined for reusable rows: a cell is skipped iff a ``cell`` row
        with its exact cell ID (which embeds the config fingerprint)
        is present; error rows and stale rows (fingerprint or shard
        membership mismatch) are dropped and recomputed.  When every
        cell is already present the file is left byte-untouched.
    retries:
        Extra in-worker attempts per cell before an error row is
        recorded in place of the summary.
    cell_fn:
        Override of the cell executor (module-level picklable callable
        with :func:`repro.analysis.sweep.run_cell`'s positional
        signature) — the fault-injection seam used by the tests.
    compression:
        Artifact codec selector (``auto``/``none``/``gz``/``zst``);
        ``None`` keeps an existing artifact's codec (sniffed) or picks
        by path suffix for a fresh one.  Compression is transport, not
        identity — it never enters fingerprints or cell IDs, and
        :func:`load_artifact` reads any codec transparently.
    checkpoint_every, checkpoint_dir, checkpoint_keep_last:
        Round-boundary engine checkpointing for every cell (see
        :mod:`repro.checkpoint`): a killed or retried cell resumes from
        its newest valid snapshot instead of recomputing from round 0.
        Execution detail, never identity — the extra arguments are
        appended to the worker tuples *only when enabled*, so custom
        ``cell_fn`` signatures without checkpoint parameters keep
        working, and artifacts/fingerprints are unchanged either way.
    stop_requested:
        Zero-argument drain predicate polled at every cell boundary
        (wire a :class:`repro.parallel.signals.DrainFlag` latched by
        SIGTERM/SIGINT).  When it returns True the runner stops
        consuming results, records the status sidecar as ``stopped``
        (not ``complete``), skips the telemetry trailer, and returns —
        a later ``resume=True`` invocation picks up the missing cells.
    """
    if not 1 <= shard <= num_shards:
        raise ValueError(f"shard {shard}/{num_shards} out of range")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    out_path = Path(out_path)
    codec = artifact_compression(out_path, compression)
    cells = partition_cells(spec.cells(), num_shards)[shard - 1]
    by_id = {c.cell_id: c for c in cells}

    retained: dict[str, dict] = {}
    stale = False  # anything in the file a canonical rewrite would drop
    if resume and out_path.exists():
        artifact = load_artifact(out_path)
        trailers = 0
        for record in artifact.records:
            kind = record.get("kind")
            if (
                kind == CELL_KIND
                and record.get("cell_id") in by_id
                # An instrumented resume can't reuse a row recorded
                # without its telemetry snapshot.
                and (not spec.telemetry or "telemetry" in record)
            ):
                if record["cell_id"] in retained:
                    stale = True  # duplicate row
                else:
                    retained[record["cell_id"]] = record
            elif kind == SHARD_TELEMETRY_KIND:
                trailers += 1
            else:
                stale = True  # error rows, foreign/stale-fingerprint cells
        if artifact.manifest.get("spec_fingerprint") != spec.fingerprint or (
            artifact.manifest.get("shard"),
            artifact.manifest.get("num_shards"),
        ) != (shard, num_shards):
            stale = True
        # Canonical artifact ends with exactly one telemetry trailer
        # iff the spec is instrumented.
        if spec.telemetry:
            if trailers != 1 or (
                not artifact.records
                or artifact.records[-1].get("kind") != SHARD_TELEMETRY_KIND
            ):
                stale = True
        elif trailers:
            stale = True

    pending = [c for c in cells if c.cell_id not in retained]
    result = ShardRunResult(
        spec=spec,
        shard=shard,
        num_shards=num_shards,
        path=out_path,
        cells=cells,
        skipped=sorted(retained),
    )
    # Live progress goes to a *sidecar* (never the artifact itself —
    # see repro.parallel.status); named `progress` because the cell
    # result loop below binds `status`.
    progress = ShardStatusWriter(
        out_path,
        spec_fingerprint=spec.fingerprint,
        shard=shard,
        num_shards=num_shards,
        cells_total=len(cells),
    )

    if not pending and not stale:
        # Complete artifact: recompute nothing, leave the artifact
        # byte-untouched — but still refresh the sidecar so `repro
        # status` reports this (re)invocation as complete.
        progress.start(resumed=len(retained))
        progress.finish()
        return result

    fn = cell_fn if cell_fn is not None else _default_cell_fn
    # Checkpoint knobs ride as *extra* positional arguments only when
    # enabled: custom cell_fn signatures without checkpoint parameters
    # keep working, and the default path ships byte-identical tuples.
    ckpt_extra = (
        (checkpoint_every, str(checkpoint_dir), checkpoint_keep_last)
        if checkpoint_dir is not None and checkpoint_every
        else ()
    )
    tasks = [
        (
            fn,
            (
                c.protocol,
                c.lam,
                c.seed,
                spec.initial_energy,
                spec.rounds,
                spec.stop_on_death,
                spec.telemetry,
                # The cell's *resolved* backend, not the spec selector:
                # the worker must produce exactly the fingerprint the
                # cell ID pinned at enumeration time.
                c.backend,
                spec.faults,
                # Likewise the cell's pinned tier and block budget.
                c.equivalence,
                spec.max_block_mb,
                spec.routing,
            )
            + ckpt_extra,
            retries,
        )
        for c in pending
    ]

    out_path.parent.mkdir(parents=True, exist_ok=True)
    records: list[dict] = [retained[c.cell_id] for c in cells if c.cell_id in retained]
    # Rewrite via a sibling temp file + os.replace so a crash mid-rewrite
    # never truncates away already-computed (retained) rows: the old
    # artifact survives intact until the manifest and every retained row
    # are durably on disk.  Newly computed rows then append to the
    # replaced file, keeping the stream-checkpoint property (on a
    # compressed artifact the append session is a fresh member/frame,
    # which the concatenation-aware tolerant reader handles).
    tmp_path = out_path.with_name(out_path.name + ".tmp")
    with JsonlWriter(tmp_path, compression=codec) as fh:
        fh.write_line(
            _dump(
                shard_manifest(
                    spec.to_payload(), spec.fingerprint, shard, num_shards
                )
            )
        )
        for record in records:
            fh.write_line(_dump(record))
        fh.flush(fsync=True)
    os.replace(tmp_path, out_path)
    progress.start(resumed=len(retained))
    drained = False
    fh = JsonlWriter(out_path, compression=codec, append=True)
    try:
        results = iter_tasks(
            _guarded_cell, tasks, max_workers=max_workers, serial=serial
        )
        for cell, (status, payload, attempts) in zip(pending, results):
            if status == "ok":
                record = _cell_record(cell, payload, attempts)
                result.executed.append(cell.cell_id)
            else:
                record = _error_record(cell, payload, attempts)
                result.errors.append(record)
            records.append(record)
            fh.write_line(_dump(record))
            fh.flush()
            progress.cell_finished(error=(status != "ok"), attempts=attempts)
            if stop_requested is not None and stop_requested():
                # Graceful drain: stop consuming at this cell boundary.
                # Abandoning the iterator cancels queued tasks; rows
                # already appended stay durable, and the skipped
                # telemetry trailer marks the artifact non-canonical so
                # a later resume recomputes exactly the missing cells
                # (from their snapshots, when checkpointing).
                drained = True
                progress.draining()
                break
        if spec.telemetry and not drained:
            snaps = [
                r["telemetry"] for r in records
                if r["kind"] == CELL_KIND and "telemetry" in r
            ]
            merged = fold_results(snaps, merge_snapshots) if snaps else {}
            fh.write_line(
                _dump({"kind": SHARD_TELEMETRY_KIND, "snapshot": merged})
            )
    finally:
        fh.close()
    if drained:
        progress.stopped()
    else:
        progress.finish()
    return result


# ---------------------------------------------------------------------------
# Artifact loading and merging
# ---------------------------------------------------------------------------


@dataclass
class ShardArtifact:
    """A parsed shard (or merged) artifact."""

    manifest: dict
    records: list[dict]
    path: Path | None = None

    @property
    def spec(self) -> SweepSpec:
        return SweepSpec.from_payload(self.manifest["spec"])

    @property
    def cell_rows(self) -> list[dict]:
        return [r for r in self.records if r.get("kind") == CELL_KIND]

    @property
    def error_rows(self) -> list[dict]:
        return [r for r in self.records if r.get("kind") == CELL_ERROR_KIND]

    @property
    def telemetry_snapshot(self) -> dict | None:
        """The shard-level merged snapshot (last trailer wins)."""
        for record in reversed(self.records):
            if record.get("kind") == SHARD_TELEMETRY_KIND:
                return record["snapshot"]
        return None


def load_artifact(path) -> ShardArtifact:
    """Parse a shard artifact, tolerating a torn final line.

    Goes through the shared tolerant reader
    (:func:`repro.telemetry.jsonl.read_jsonl_tolerant`), so plain,
    gzip-, and zstd-compressed artifacts all load transparently (codec
    sniffed from magic bytes) and a crash mid-append — a partial
    trailing line, or a truncated compressed tail — costs at most the
    final record: the cell it would have recorded is simply recomputed
    on resume.  Any other malformed line is an error.
    """
    path = Path(path)
    parsed = read_jsonl_tolerant(path)
    if not parsed or parsed[0].get("kind") != SHARD_MANIFEST_KIND:
        raise ValueError(f"{path}: missing {SHARD_MANIFEST_KIND!r} header")
    return ShardArtifact(manifest=parsed[0], records=parsed[1:], path=path)


@dataclass
class MergedSweep:
    """The fold of shard artifacts back into one sweep.

    ``sweep.rows`` holds every recovered cell summary in canonical grid
    order; cells that only produced error rows surface in ``errors``
    and cells no artifact covered in ``missing`` — merge never drops a
    cell silently.
    """

    spec: SweepSpec
    sweep: "SweepResult"  # noqa: F821 - runtime import below
    errors: list[dict] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.errors and not self.missing

    def require_complete(self) -> "MergedSweep":
        if not self.complete:
            raise ValueError(
                f"merge incomplete: {len(self.errors)} error cell(s) "
                f"{[e['cell_id'] for e in self.errors]}, "
                f"{len(self.missing)} missing cell(s) {self.missing}"
            )
        return self


def merge_artifacts(
    artifacts: Iterable[ShardArtifact | str | Path],
) -> MergedSweep:
    """Fold shard artifacts (any subset, any order) into a sweep.

    All artifacts must carry the same spec fingerprint.  Duplicate
    coverage of a cell is fine when the rows agree (they are the same
    deterministic computation); a value conflict raises, because that
    is exactly the nondeterminism this layer exists to rule out.
    """
    from ..analysis.sweep import SweepResult

    loaded = [
        a if isinstance(a, ShardArtifact) else load_artifact(a)
        for a in artifacts
    ]
    if not loaded:
        raise ValueError("no artifacts to merge")
    spec = loaded[0].spec
    first_tier = loaded[0].manifest.get("spec", {}).get("equivalence", "bitwise")
    for art in loaded[1:]:
        if art.manifest["spec_fingerprint"] != loaded[0].manifest["spec_fingerprint"]:
            tier = art.manifest.get("spec", {}).get("equivalence", "bitwise")
            if tier != first_tier:
                # Name the actual crime when the specs differ by tier:
                # a generic fingerprint mismatch would hide that the
                # caller is mixing numeric regimes.
                from ..kernels.base import EquivalenceError

                raise EquivalenceError(
                    f"{art.path or '<memory>'}: cannot merge a {tier!r}-tier "
                    f"artifact into a {first_tier!r}-tier sweep — the tiers "
                    "follow different numeric contracts and their rows are "
                    "not comparable; re-run the sweep under one tier"
                )
            raise ValueError(
                f"{art.path or '<memory>'}: spec fingerprint "
                f"{art.manifest['spec_fingerprint']} does not match "
                f"{loaded[0].manifest['spec_fingerprint']}"
            )

    cells = spec.cells()
    known = {c.cell_id for c in cells}
    rows_by_id: dict[str, dict] = {}
    errors_by_id: dict[str, dict] = {}
    for art in loaded:
        for record in art.cell_rows:
            cid = record["cell_id"]
            if cid not in known:
                raise ValueError(
                    f"{art.path or '<memory>'}: cell {cid} is not in the grid"
                )
            seen = rows_by_id.get(cid)
            if seen is None:
                rows_by_id[cid] = record
            # Duplicate coverage must agree only on the deterministic
            # surface: telemetry snapshots carry wall-clock ``time/``
            # metrics that legitimately differ between two runs of the
            # same cell, so they are compared through
            # deterministic_view.  Either row's snapshot serves the
            # merge (first seen wins).
            elif seen["summary"] != record["summary"] or deterministic_view(
                seen.get("telemetry") or {}
            ) != deterministic_view(record.get("telemetry") or {}):
                raise ValueError(
                    f"cell {cid} has conflicting rows across artifacts "
                    f"(nondeterministic cell?)"
                )
        for record in art.error_rows:
            errors_by_id.setdefault(record["cell_id"], record)

    rows: list[dict] = []
    snaps: list[dict] = []
    errors: list[dict] = []
    missing: list[str] = []
    for cell in cells:
        record = rows_by_id.get(cell.cell_id)
        if record is not None:
            rows.append(dict(record["summary"]))
            if "telemetry" in record:
                snaps.append(record["telemetry"])
        elif cell.cell_id in errors_by_id:
            errors.append(errors_by_id[cell.cell_id])
        else:
            missing.append(cell.cell_id)
    merged_snapshot = (
        fold_results(snaps, merge_snapshots) if snaps else None
    )
    return MergedSweep(
        spec=spec,
        sweep=SweepResult(rows=rows, telemetry=merged_snapshot),
        errors=errors,
        missing=missing,
    )


def write_merged_artifact(
    merged: MergedSweep, artifacts, path, *, compression: str | None = None
) -> Path:
    """Persist a merge as an artifact of its own (hierarchical merges).

    The output uses the reserved ``shard 0/0`` marker and the union of
    the inputs' cell and unresolved-error records, so two hosts'
    artifacts can be pre-merged locally and the halves merged again
    later: merge is subset-associative by construction.
    """
    loaded = [
        a if isinstance(a, ShardArtifact) else load_artifact(a)
        for a in artifacts
    ]
    path = Path(path)
    codec = artifact_compression(path, compression)
    resolved = set()
    records: dict[str, dict] = {}
    for art in loaded:
        for record in art.cell_rows:
            records.setdefault(record["cell_id"], record)
            resolved.add(record["cell_id"])
    for art in loaded:
        for record in art.error_rows:
            if record["cell_id"] not in resolved:
                records.setdefault(record["cell_id"], record)
    order = {c.cell_id: i for i, c in enumerate(merged.spec.cells())}
    body = sorted(records.values(), key=lambda r: order[r["cell_id"]])
    with JsonlWriter(path, compression=codec) as fh:
        fh.write_line(
            _dump(
                shard_manifest(
                    merged.spec.to_payload(), merged.spec.fingerprint, 0, 0
                )
            )
        )
        for record in body:
            fh.write_line(_dump(record))
        if merged.sweep.telemetry is not None:
            fh.write_line(
                _dump(
                    {
                        "kind": SHARD_TELEMETRY_KIND,
                        "snapshot": merged.sweep.telemetry,
                    }
                )
            )
    return path
