"""``repro serve``: a long-running sweep coordinator over a job catalog.

The scheduler (:mod:`repro.parallel.scheduler`) runs one grid well;
this module turns it into a *service*: a directory of declarative job
files (``<name>.job.json``, each holding a
:class:`~repro.parallel.sharding.SweepSpec` payload plus run options)
that a single ``repro serve <dir>`` process drains — resuming
half-finished artifacts, healing killed workers, and publishing a
machine-readable snapshot (``serve-status.json``) after every accepted
cell so observers can consume *partial* sweeps while the grid runs.

The catalog is filesystem-native on purpose: adding work while the
server runs is ``cp fig3.job.json jobs/`` (the poll loop picks it up),
state lives entirely in the artifacts (the resume contract makes every
job idempotent — a completed job's artifact is left byte-untouched on
the next pass), and killing the server loses at most in-flight cells.

Job file schema::

    {
      "spec": { ... SweepSpec payload ... },
      "workers": 2,            // optional
      "compression": "auto",   // optional artifact codec
      "retries": 1,            // optional in-worker retries
      "lease_seconds": 300.0,  // optional
      "max_lease_attempts": 3, // optional
      "checkpoint_every": 50,  // optional: snapshot cells every N rounds
      "checkpoint_keep_last": 3
    }

A job with ``checkpoint_every`` set runs its cells *preemptibly*:
engine snapshots land under ``<dir>/checkpoints/<name>/`` and a
re-leased or drained-then-resumed cell restores the newest valid one
instead of recomputing from round 0.  ``kill -TERM`` (or Ctrl-C)
against a serve loop drains gracefully: the in-flight cells finish,
the snapshot republishes with state ``stopped``, and the process
exits cleanly — the next ``repro serve`` picks up exactly the
remaining work.

The job's name is the file stem (``fig3.job.json`` → ``fig3``); its
artifact lands at ``<dir>/artifacts/<name>.jsonl`` (plus the codec
suffix), so ``repro merge`` / ``repro status`` work on a serve
directory unchanged.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..telemetry.jsonl import compression_suffix, resolve_compression
from .scheduler import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_LEASE_ATTEMPTS,
    run_scheduled,
)
from .sharding import SweepSpec, load_artifact, merge_artifacts

__all__ = [
    "JOB_SUFFIX",
    "ServeReport",
    "SweepJob",
    "discover_jobs",
    "job_snapshot",
    "load_job",
    "serve_forever",
    "serve_once",
    "serve_status_path",
]

#: Catalog entries are ``<name>.job.json`` files in the serve directory.
JOB_SUFFIX = ".job.json"


@dataclass(frozen=True)
class SweepJob:
    """One catalog entry: a spec plus its run options and artifact home."""

    name: str
    spec: SweepSpec
    artifact_path: Path
    job_path: Path | None = None
    workers: int | None = None
    compression: str | None = None
    retries: int = 0
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS
    checkpoint_every: int | None = None
    checkpoint_dir: Path | None = None
    checkpoint_keep_last: int = 3


def serve_status_path(jobs_dir) -> Path:
    """The snapshot file the serve loop publishes atomically."""
    return Path(jobs_dir) / "serve-status.json"


def _artifact_name(name: str, compression: str | None) -> str:
    codec = resolve_compression(compression) if compression else "none"
    return f"{name}.jsonl{compression_suffix(codec)}"


def load_job(path, artifacts_dir=None) -> SweepJob:
    """Parse one ``<name>.job.json`` catalog entry.

    Unknown keys raise — a typoed option silently ignored would run the
    sweep with defaults and nobody would notice until the artifact was
    wrong.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "spec" not in payload:
        raise ValueError(f"{path}: job file needs a 'spec' object")
    known = {
        "spec", "workers", "compression", "retries",
        "lease_seconds", "max_lease_attempts",
        "checkpoint_every", "checkpoint_keep_last",
    }
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"{path}: unknown job key(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    name = path.name[: -len(JOB_SUFFIX)]
    compression = payload.get("compression")
    base = (
        Path(artifacts_dir)
        if artifacts_dir is not None
        else path.parent / "artifacts"
    )
    raw_every = payload.get("checkpoint_every")
    checkpoint_every = int(raw_every) if raw_every else None
    return SweepJob(
        name=name,
        spec=SweepSpec.from_payload(payload["spec"]),
        artifact_path=base / _artifact_name(name, compression),
        job_path=path,
        workers=payload.get("workers"),
        compression=compression,
        retries=int(payload.get("retries", 0)),
        lease_seconds=float(payload.get("lease_seconds", DEFAULT_LEASE_SECONDS)),
        max_lease_attempts=int(
            payload.get("max_lease_attempts", DEFAULT_MAX_LEASE_ATTEMPTS)
        ),
        checkpoint_every=checkpoint_every,
        checkpoint_dir=(
            path.parent / "checkpoints" / name if checkpoint_every else None
        ),
        checkpoint_keep_last=int(payload.get("checkpoint_keep_last", 3)),
    )


def discover_jobs(jobs_dir) -> list[SweepJob]:
    """The catalog of ``*.job.json`` entries under ``jobs_dir``, by name."""
    jobs_dir = Path(jobs_dir)
    return [
        load_job(p)
        for p in sorted(jobs_dir.glob(f"*{JOB_SUFFIX}"))
    ]


def job_snapshot(job: SweepJob) -> dict:
    """The merge-so-far of one job's artifact, as a JSON-able summary.

    Reads the artifact through the tolerant reader, so a *live* or
    crashed artifact snapshots cleanly: cells with rows count done,
    error rows surface, everything else is pending.  This is the
    partial-\\ :class:`~repro.analysis.sweep.SweepResult` view — the
    ``rows`` key carries the completed summaries in canonical order.
    """
    total = len(job.spec)
    if not job.artifact_path.exists():
        return {
            "name": job.name, "state": "queued", "done": 0,
            "errors": 0, "missing": total, "total": total, "rows": [],
        }
    try:
        merged = merge_artifacts([load_artifact(job.artifact_path)])
    except ValueError:
        return {
            "name": job.name, "state": "corrupt", "done": 0,
            "errors": 0, "missing": total, "total": total, "rows": [],
        }
    done = len(merged.sweep.rows)
    state = (
        "complete"
        if merged.complete
        else "failed" if merged.errors and not merged.missing else "partial"
    )
    return {
        "name": job.name,
        "state": state,
        "done": done,
        "errors": len(merged.errors),
        "missing": len(merged.missing),
        "total": total,
        "rows": merged.sweep.rows,
    }


@dataclass
class ServeReport:
    """Outcome of one catalog pass (:func:`serve_once`)."""

    jobs: list[SweepJob] = field(default_factory=list)
    executed: int = 0
    resumed: int = 0
    errors: int = 0
    worker_deaths: int = 0
    reclaims: int = 0
    steals: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors


def _publish(jobs_dir: Path, jobs: list[SweepJob], *, state: str) -> None:
    """Atomically rewrite the serve snapshot (rows elided per job to a
    count when large would be premature tuning — partial consumers want
    the rows; that is the point of streaming merges)."""
    snapshot = {
        "kind": "serve-status",
        "state": state,
        "jobs": [job_snapshot(job) for job in jobs],
    }
    path = serve_status_path(jobs_dir)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snapshot, sort_keys=True), encoding="utf-8")
    tmp.replace(path)


def serve_once(
    jobs_dir,
    *,
    workers: int | None = None,
    poll_seconds: float = 0.1,
    on_progress=None,
    stop_requested=None,
) -> ServeReport:
    """Drain the current catalog once: run (or resume) every job.

    Completed jobs short-circuit through the resume contract without
    touching their artifacts; partially-run ones pick up where their
    artifact left off.  The serve snapshot is republished after every
    accepted cell, so ``serve-status.json`` is a live partial-sweep
    feed while a grid runs.  ``workers`` overrides any per-job setting
    (a host-capacity knob, not a job property).

    ``stop_requested`` (e.g. a
    :class:`~repro.parallel.signals.DrainFlag`) drains gracefully: the
    running job's in-flight cells finish and stream into its artifact,
    no further jobs start, and the snapshot republishes with state
    ``stopped`` — the next pass computes exactly the remaining cells.
    """
    jobs_dir = Path(jobs_dir)
    report = ServeReport(jobs=discover_jobs(jobs_dir))
    drained = False
    for job in report.jobs:
        if stop_requested is not None and stop_requested():
            drained = True
            break

        def _progress(scheduler, result, _job=job):
            state = (
                "draining"
                if stop_requested is not None and stop_requested()
                else "running"
            )
            _publish(jobs_dir, report.jobs, state=state)
            if on_progress is not None:
                on_progress(_job, scheduler, result)

        result = run_scheduled(
            job.spec,
            job.artifact_path,
            num_workers=workers if workers is not None else job.workers,
            retries=job.retries,
            lease_seconds=job.lease_seconds,
            max_lease_attempts=job.max_lease_attempts,
            compression=job.compression,
            poll_seconds=poll_seconds,
            on_progress=_progress,
            checkpoint_every=job.checkpoint_every,
            checkpoint_dir=job.checkpoint_dir,
            checkpoint_keep_last=job.checkpoint_keep_last,
            stop_requested=stop_requested,
        )
        report.executed += len(result.executed)
        report.resumed += len(result.skipped)
        report.errors += len(result.errors)
        report.worker_deaths += result.worker_deaths
        report.reclaims += result.reclaims
        report.steals += result.steals
        if stop_requested is not None and stop_requested():
            drained = True
            break
    _publish(jobs_dir, report.jobs, state="stopped" if drained else "idle")
    return report


def serve_forever(
    jobs_dir,
    *,
    workers: int | None = None,
    poll_seconds: float = 0.1,
    idle_seconds: float = 2.0,
    max_cycles: int | None = None,
    on_progress=None,
    sleep=time.sleep,
    stop_requested=None,
) -> ServeReport:
    """The always-on loop: drain the catalog, sleep, rescan, repeat.

    New job files dropped into ``jobs_dir`` are picked up on the next
    cycle; jobs already complete cost one resume short-circuit each
    (artifact bytes untouched).  ``max_cycles`` bounds the loop for
    tests and batch use (``repro serve --once`` is ``max_cycles=1``);
    ``sleep`` is injectable so tests never wait wall-clock time.
    ``stop_requested`` ends the loop at the next safe boundary (see
    :func:`serve_once`).  Returns the report of the *last* cycle.
    """
    cycles = 0
    report = ServeReport()
    while max_cycles is None or cycles < max_cycles:
        report = serve_once(
            jobs_dir,
            workers=workers,
            poll_seconds=poll_seconds,
            on_progress=on_progress,
            stop_requested=stop_requested,
        )
        cycles += 1
        if stop_requested is not None and stop_requested():
            break
        if max_cycles is not None and cycles >= max_cycles:
            break
        sleep(idle_seconds)
    return report
