"""Work-stealing sweep scheduler with lease-based fault recovery.

Static rank-mod-``K`` sharding (:mod:`repro.parallel.sharding`) wastes
hosts whenever cell costs are skewed: a shard that drew the large-``N``
or chaos cells runs long after its siblings went idle.  This module
replaces the frozen assignment with a *scheduler* — a work-queue over
the same stable cell IDs — while keeping every determinism contract the
static path established: a completed scheduled run merges bit-for-bit
equal to the serial ``sweep_protocols`` run on every deterministic
metric.

Two layers:

* :class:`SweepScheduler` — a **pure state machine** (no I/O, no
  processes, injectable clock).  Cells start in per-worker *home
  queues* dealt by the same :func:`~repro.parallel.sharding.partition_cells`
  rank partition, so locality mirrors static sharding when costs are
  even; an idle worker whose home queue drained **steals** from the
  longest remaining queue.  Every running cell is covered by a
  :class:`Lease` with a deadline; an expired lease — or a dead worker —
  is **reclaimed** and the cell re-queued.  Failure handling rides the
  PR-5 fault taxonomy: a *deterministic* failure
  (:func:`~repro.parallel.sharding.classify_error`) becomes a
  ``cell-error`` row immediately (replaying a pure function cannot
  change the outcome); a *transient* one re-leases up to
  ``max_lease_attempts`` times.  The machine guarantees **exactly-once
  rows**: however leases, steals, reclaims, and duplicate completions
  interleave, each cell contributes exactly one ``cell`` or
  ``cell-error`` record (the hypothesis property suite drives random
  interleavings against this invariant).

* :func:`run_scheduled` — the **process driver**.  One coordinator
  owns the state machine and the artifact; each worker is a separate
  ``multiprocessing`` process fed over a pipe.  A worker death
  (SIGKILL, OOM) surfaces as pipe EOF: the coordinator reclaims its
  lease, counts a worker death, and respawns a replacement, so a
  chaos-killed fleet heals itself.  Rows stream into the artifact as
  they are accepted (same JSONL schema as a shard artifact, under the
  reserved ``shard 0/0`` whole-grid marker, optionally zstd/gzip
  compressed), so ``merge_artifacts`` and ``repro merge`` consume a
  scheduler artifact unchanged — and :meth:`SweepScheduler.partial_sweep`
  lets a coordinator serve partial :class:`~repro.analysis.sweep.SweepResult`
  views while the grid is still running (the ``repro serve`` loop in
  :mod:`repro.parallel.serve` does exactly that).

Scheduler *events* (lease grants, steals, reclaims, requeues, worker
deaths, duplicate drops) are appended to an ``<artifact>.events.jsonl``
sidecar — like the status sidecar, they are per-run ephemera that never
merge or fingerprint, but they make a chaotic run auditable: the chaos
tests and the CI determinism gate assert re-lease decisions from them.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..telemetry.jsonl import JsonlWriter
from ..telemetry.manifest import shard_manifest
from ..telemetry.registry import merge_snapshots
from .pool import default_workers, fold_results
from .sharding import (
    CELL_KIND,
    SHARD_TELEMETRY_KIND,
    SweepCell,
    SweepSpec,
    _cell_record,
    _default_cell_fn,
    _dump,
    _error_record,
    _guarded_cell,
    artifact_compression,
    load_artifact,
    partition_cells,
)
from .status import ShardStatusWriter

__all__ = [
    "SCHED_EVENT_KIND",
    "Lease",
    "ScheduledRunResult",
    "SweepScheduler",
    "run_scheduled",
    "scheduler_events_path",
]

#: Record discriminator of one scheduler-event sidecar row.
SCHED_EVENT_KIND = "sched-event"

#: Default lease duration; generous because workers cannot heartbeat
#: mid-cell (they run the simulation synchronously) — expiry is the
#: straggler backstop, pipe EOF is the fast death path.
DEFAULT_LEASE_SECONDS = 300.0

#: Default bound on lease attempts per cell: a cell that keeps taking
#: its worker down with it must eventually become an error row, not an
#: infinite respawn loop.
DEFAULT_MAX_LEASE_ATTEMPTS = 3


def scheduler_events_path(artifact_path) -> Path:
    """The events sidecar for a scheduler artifact (``<name>.events.jsonl``)."""
    p = Path(artifact_path)
    return p.with_name(p.name + ".events.jsonl")


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one cell, bounded by a deadline."""

    cell_id: str
    worker: str
    attempt: int  # 1-based count of lease grants for this cell
    granted_at: float
    deadline: float
    stolen: bool = False


class SweepScheduler:
    """The pure work-stealing lease state machine.

    Parameters
    ----------
    cells:
        The cells still to run (canonical enumeration order; resumed
        cells are simply not handed in).
    num_queues:
        Home-queue count — normally the worker-fleet size.  Queue
        assignment is the rank partition of
        :func:`~repro.parallel.sharding.partition_cells`, so a
        never-stealing run visits cells exactly as static shards would.
    lease_seconds / max_lease_attempts:
        Lease duration and the per-cell bound on grants; exceeding the
        bound synthesises a transient ``LeaseExhausted`` error row.

    Every cell is, at any instant, in exactly one of four places:
    queued, leased, finished-as-row, or finished-as-error
    (:meth:`check_invariants` asserts the partition; the property
    suite calls it after every operation).  All mutating methods take
    ``now`` explicitly — the machine never reads a clock.
    """

    def __init__(
        self,
        cells: list[SweepCell],
        num_queues: int,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS,
    ) -> None:
        if num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_lease_attempts < 1:
            raise ValueError("max_lease_attempts must be >= 1")
        self.cells = {c.cell_id: c for c in cells}
        if len(self.cells) != len(cells):
            raise ValueError("duplicate cell IDs")
        self._order = {c.cell_id: i for i, c in enumerate(cells)}
        # Home-queue rank: same sorted-cell-ID ranking partition_cells
        # uses, so a requeued cell returns to the queue it started in.
        self._rank = {
            cid: i for i, cid in enumerate(sorted(self.cells))
        }
        self.num_queues = num_queues
        self.lease_seconds = float(lease_seconds)
        self.max_lease_attempts = int(max_lease_attempts)
        self.queues: list[deque[str]] = [
            deque(c.cell_id for c in q)
            for q in partition_cells(cells, num_queues)
        ]
        #: cell_id -> live lease (at most one per cell *and* per worker).
        self.leases: dict[str, Lease] = {}
        #: cell_id -> total lease grants so far.
        self.attempts: dict[str, int] = {}
        #: Finished cells: exactly-once rows, keyed by cell ID.
        self.rows: dict[str, dict] = {}
        self.errors: dict[str, dict] = {}
        self.events: list[dict] = []
        self.steals = 0
        self.reclaims = 0
        self.duplicates = 0
        self._seq = 0

    # -- queries -------------------------------------------------------
    @property
    def finished(self) -> bool:
        return len(self.rows) + len(self.errors) == len(self.cells)

    @property
    def outstanding(self) -> int:
        """Cells not yet finished (queued or leased)."""
        return len(self.cells) - len(self.rows) - len(self.errors)

    def lease_of(self, worker: str) -> Lease | None:
        for lease in self.leases.values():
            if lease.worker == worker:
                return lease
        return None

    # -- events --------------------------------------------------------
    def _event(self, event: str, **payload) -> dict:
        self._seq += 1
        record = {
            "kind": SCHED_EVENT_KIND,
            "seq": self._seq,
            "event": event,
            **payload,
        }
        self.events.append(record)
        return record

    # -- acquire / steal ----------------------------------------------
    def acquire(
        self, worker: str, worker_index: int, now: float
    ) -> SweepCell | None:
        """Grant ``worker`` a lease on its next cell, stealing if idle.

        Pops from the worker's home queue (``worker_index mod
        num_queues``) first; an empty home queue steals from the back
        of the *longest* other queue (ties break to the lowest index —
        victim selection is deterministic, a pure function of queue
        lengths).  Returns ``None`` when no cell is runnable right now
        (all queued work finished or leased elsewhere).
        """
        if self.lease_of(worker) is not None:
            raise ValueError(f"worker {worker!r} already holds a lease")
        home = worker_index % self.num_queues
        cell_id = self._pop(home)
        stolen = False
        if cell_id is None:
            victim = self._victim(home)
            if victim is not None:
                cell_id = self._pop(victim, steal=True)
                stolen = cell_id is not None
        if cell_id is None:
            return None
        attempt = self.attempts.get(cell_id, 0) + 1
        self.attempts[cell_id] = attempt
        lease = Lease(
            cell_id=cell_id,
            worker=worker,
            attempt=attempt,
            granted_at=now,
            deadline=now + self.lease_seconds,
            stolen=stolen,
        )
        self.leases[cell_id] = lease
        if stolen:
            self.steals += 1
        self._event(
            "steal" if stolen else "lease",
            cell_id=cell_id,
            worker=worker,
            attempt=attempt,
        )
        return self.cells[cell_id]

    def _pop(self, queue_index: int, steal: bool = False) -> str | None:
        q = self.queues[queue_index]
        while q:
            # A thief takes from the back (the victim's coldest work);
            # the owner drains from the front — the classic deque split.
            cell_id = q.pop() if steal else q.popleft()
            if cell_id not in self.rows and cell_id not in self.errors:
                return cell_id
        return None

    def _victim(self, home: int) -> int | None:
        best, best_len = None, 0
        for i, q in enumerate(self.queues):
            if i != home and len(q) > best_len:
                best, best_len = i, len(q)
        return best

    # -- heartbeat / expiry -------------------------------------------
    def heartbeat(self, worker: str, now: float) -> None:
        """Extend the deadline of ``worker``'s lease (liveness signal)."""
        lease = self.lease_of(worker)
        if lease is not None:
            self.leases[lease.cell_id] = Lease(
                cell_id=lease.cell_id,
                worker=lease.worker,
                attempt=lease.attempt,
                granted_at=lease.granted_at,
                deadline=now + self.lease_seconds,
                stolen=lease.stolen,
            )

    def reclaim_expired(self, now: float) -> list[str]:
        """Reclaim every lease whose deadline passed; requeue the cells.

        Expiry is indistinguishable from a wedged-or-dead worker, so it
        is treated as a transient failure: the cell re-leases (home
        queue of its next claimant) unless its attempt budget is
        exhausted, in which case a synthetic ``LeaseExhausted``
        transient error row records the casualty.  If the original
        worker was merely slow and completes later, the late result is
        still accepted (first result wins; the re-leased twin becomes a
        counted duplicate).
        """
        expired = [
            lease for lease in self.leases.values() if lease.deadline <= now
        ]
        reclaimed = []
        for lease in expired:
            self.reclaims += 1
            self._event(
                "reclaim",
                cell_id=lease.cell_id,
                worker=lease.worker,
                attempt=lease.attempt,
                reason="lease-expired",
            )
            self._requeue_or_exhaust(lease, reason="lease-expired")
            reclaimed.append(lease.cell_id)
        return reclaimed

    def worker_lost(self, worker: str, now: float, reason: str = "died") -> None:
        """Reclaim the lease of a worker that will never report back.

        A process death is environmental by definition — transient —
        so the in-flight cell re-queues for another worker, bounded by
        the attempt budget.
        """
        lease = self.lease_of(worker)
        self._event(
            "worker-dead",
            worker=worker,
            cell_id=None if lease is None else lease.cell_id,
            reason=reason,
        )
        if lease is None:
            return
        self.reclaims += 1
        self._event(
            "reclaim",
            cell_id=lease.cell_id,
            worker=worker,
            attempt=lease.attempt,
            reason=reason,
        )
        self._requeue_or_exhaust(lease, reason=reason)

    def _requeue_or_exhaust(self, lease: Lease, reason: str) -> None:
        del self.leases[lease.cell_id]
        if lease.attempt >= self.max_lease_attempts:
            cell = self.cells[lease.cell_id]
            self.errors[lease.cell_id] = _error_record(
                cell,
                {
                    "type": "LeaseExhausted",
                    "message": (
                        f"{lease.attempt} lease(s) lost "
                        f"(last: {reason}) without a result"
                    ),
                    "class": "transient",
                },
                lease.attempt,
            )
            self._event(
                "error",
                cell_id=lease.cell_id,
                worker=lease.worker,
                attempt=lease.attempt,
                error_class="transient",
                error_type="LeaseExhausted",
            )
        else:
            # Back of the cell's home-rank queue: the next claimant is
            # whoever drains (or steals from) that queue first.
            self._home_queue(lease.cell_id).append(lease.cell_id)
            self._event(
                "requeue",
                cell_id=lease.cell_id,
                attempt=lease.attempt,
                reason=reason,
            )

    def _home_queue(self, cell_id: str) -> deque:
        return self.queues[self._rank[cell_id] % self.num_queues]

    # -- completion / failure -----------------------------------------
    def complete(
        self, worker: str, cell_id: str, summary: dict, attempts: int, now: float
    ) -> dict | None:
        """Accept one cell result; returns the artifact record, or
        ``None`` for a duplicate.

        First result wins: a result for an already-finished cell (the
        re-leased twin of a slow-but-alive worker, or a worker whose
        lease was reclaimed) is dropped and counted — cells are
        deterministic, so the dropped copy carried the same values.  A
        result from a worker that lost its lease but whose cell is
        still unfinished is *accepted*: the computation is valid
        regardless of who holds the paper.
        """
        if cell_id not in self.cells:
            raise ValueError(f"unknown cell {cell_id}")
        if cell_id in self.rows or cell_id in self.errors:
            self.duplicates += 1
            self._event("duplicate", cell_id=cell_id, worker=worker)
            return None
        self.leases.pop(cell_id, None)
        self._purge(cell_id)
        record = _cell_record(self.cells[cell_id], summary, attempts)
        self.rows[cell_id] = record
        self._event(
            "complete", cell_id=cell_id, worker=worker, attempt=attempts
        )
        return record

    def fail(
        self, worker: str, cell_id: str, error: dict, attempts: int, now: float
    ) -> dict | None:
        """Record one cell failure; returns an error record iff the
        cell is now finished (deterministic failure or exhausted
        budget), ``None`` if it re-leased or the report was stale.

        ``error`` is the payload :func:`_guarded_cell` ships home
        (``type``/``message``/``class``).  The ``class`` decides:
        deterministic → ``cell-error`` row *immediately*, no re-lease;
        transient → requeue until ``max_lease_attempts`` grants are
        spent, then an error row.
        """
        if cell_id not in self.cells:
            raise ValueError(f"unknown cell {cell_id}")
        if cell_id in self.rows or cell_id in self.errors:
            self.duplicates += 1
            self._event("duplicate", cell_id=cell_id, worker=worker)
            return None
        lease = self.leases.get(cell_id)
        if lease is None or lease.worker != worker:
            # A reporter whose lease was reclaimed (cell re-queued, or
            # re-granted to another worker): its failure says nothing
            # the reclaim didn't already — acting on it would queue the
            # cell twice.  Late *successes* are different: complete()
            # accepts them whoever reports, first result wins.
            self._event(
                "stale-failure", cell_id=cell_id, worker=worker
            )
            return None
        del self.leases[cell_id]
        grants = self.attempts.get(cell_id, 1)
        if error.get("class") == "deterministic" or grants >= self.max_lease_attempts:
            self._purge(cell_id)
            record = _error_record(self.cells[cell_id], error, attempts)
            self.errors[cell_id] = record
            self._event(
                "error",
                cell_id=cell_id,
                worker=worker,
                attempt=grants,
                error_class=error.get("class", "transient"),
                error_type=error.get("type", "Exception"),
            )
            return record
        self._home_queue(cell_id).append(cell_id)
        self._event(
            "requeue",
            cell_id=cell_id,
            attempt=grants,
            reason=f"transient-{error.get('type', 'error')}",
        )
        return None

    def _purge(self, cell_id: str) -> None:
        """Drop a now-finished cell from any queue it still sits in."""
        for q in self.queues:
            try:
                q.remove(cell_id)
            except ValueError:
                pass

    # -- streaming merge ----------------------------------------------
    def partial_sweep(self) -> tuple[list[dict], list[dict], list[str]]:
        """The merge-so-far: ``(rows, errors, missing)``.

        Rows come back in canonical grid order — the same order a
        completed merge (and the serial sweep) would produce — so a
        coordinator can serve a monotonically-filling
        :class:`~repro.analysis.sweep.SweepResult` while the grid is
        still running.
        """
        ordered = sorted(self._order, key=self._order.__getitem__)
        rows = [
            dict(self.rows[cid]["summary"]) for cid in ordered if cid in self.rows
        ]
        errors = [self.errors[cid] for cid in ordered if cid in self.errors]
        missing = [
            cid
            for cid in ordered
            if cid not in self.rows and cid not in self.errors
        ]
        return rows, errors, missing

    # -- invariants (the property-test surface) -----------------------
    def check_invariants(self) -> None:
        """Assert the exactly-once partition; raises ``AssertionError``.

        Every cell is in exactly one of {queued, leased, row, error};
        no cell is both row and error; queues hold no finished or
        leased cells; every lease's attempt count is within budget.
        """
        queued = [cid for q in self.queues for cid in q]
        assert len(queued) == len(set(queued)), "cell queued twice"
        finished = set(self.rows) | set(self.errors)
        assert not (set(self.rows) & set(self.errors)), "cell is row AND error"
        assert not (set(queued) & finished), "finished cell still queued"
        assert not (set(self.leases) & finished), "finished cell still leased"
        assert not (set(queued) & set(self.leases)), "leased cell still queued"
        everywhere = set(queued) | set(self.leases) | finished
        assert everywhere == set(self.cells), (
            "cells lost or invented: "
            f"{set(self.cells) ^ everywhere}"
        )
        for cell_id, lease in self.leases.items():
            assert lease.cell_id == cell_id
            assert 1 <= lease.attempt <= self.max_lease_attempts


# ---------------------------------------------------------------------------
# Process driver
# ---------------------------------------------------------------------------


def _worker_main(conn, cell_fn, retries: int) -> None:
    """Worker-process loop: recv a cell, run it guarded, send the result."""
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                return
            _, cell_id, args = msg
            status, payload, attempts = _guarded_cell(
                cell_fn, tuple(args), retries
            )
            conn.send((cell_id, status, payload, attempts))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        return


@dataclass
class _Worker:
    name: str
    index: int
    process: object
    conn: object

    @classmethod
    def spawn(cls, ctx, name: str, index: int, cell_fn, retries: int) -> "_Worker":
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(child, cell_fn, retries), daemon=True
        )
        proc.start()
        child.close()  # the parent keeps only its own end
        return cls(name=name, index=index, process=proc, conn=parent)

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()


@dataclass
class ScheduledRunResult:
    """Outcome of one :func:`run_scheduled` invocation."""

    spec: SweepSpec
    path: Path
    cells: list[SweepCell]
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)
    steals: int = 0
    reclaims: int = 0
    duplicates: int = 0
    worker_deaths: int = 0
    events_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.errors


def _mine_resume(
    spec: SweepSpec, out_path: Path, cells
) -> tuple[dict[str, dict], bool]:
    """Mine an existing artifact for reusable rows.

    Returns ``(retained, stale)``: rows reusable under ``spec`` keyed
    by cell ID, and whether the file holds anything a canonical rewrite
    would drop (error rows, stale-fingerprint rows, duplicates, a
    missing or misplaced telemetry trailer).  Same retention rules as
    :func:`~repro.parallel.sharding.run_shard` — in particular a
    torn final line (dropped by the tolerant reader) just loses that
    one record, and an instrumented resume refuses rows recorded
    without their telemetry snapshot.
    """
    by_id = {c.cell_id: c for c in cells}
    retained: dict[str, dict] = {}
    if not out_path.exists():
        return retained, False
    try:
        artifact = load_artifact(out_path)
    except ValueError:
        return retained, True  # unreadable artifact: recompute everything
    stale = False
    trailers = 0
    for record in artifact.records:
        kind = record.get("kind")
        if (
            kind == CELL_KIND
            and record.get("cell_id") in by_id
            and (not spec.telemetry or "telemetry" in record)
        ):
            if record["cell_id"] in retained:
                stale = True  # duplicate row
            else:
                retained[record["cell_id"]] = record
        elif kind == SHARD_TELEMETRY_KIND:
            trailers += 1
        else:
            stale = True  # error rows, foreign/stale-fingerprint cells
    if artifact.manifest.get("spec_fingerprint") != spec.fingerprint or (
        artifact.manifest.get("shard"),
        artifact.manifest.get("num_shards"),
    ) != (0, 0):
        return {}, True
    if spec.telemetry:
        if trailers != 1 or (
            not artifact.records
            or artifact.records[-1].get("kind") != SHARD_TELEMETRY_KIND
        ):
            stale = True
    elif trailers:
        stale = True
    return retained, stale


def run_scheduled(
    spec: SweepSpec,
    out_path,
    *,
    num_workers: int | None = None,
    resume: bool = True,
    retries: int = 0,
    cell_fn: Callable | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS,
    compression: str | None = None,
    poll_seconds: float = 0.1,
    on_progress: Callable | None = None,
    mp_context: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
    checkpoint_keep_last: int = 3,
    stop_requested: Callable[[], bool] | None = None,
) -> ScheduledRunResult:
    """Run a whole sweep grid under the work-stealing scheduler.

    The artifact is the same JSONL schema `run_shard` writes, under the
    reserved whole-grid ``shard 0/0`` marker, so ``merge_artifacts`` /
    ``repro merge`` / ``repro fig3 --from-artifacts`` consume it
    unchanged; ``compression`` selects the codec
    (``auto``/``none``/``gz``/``zst``; ``None`` keeps an existing
    artifact's).  Rows stream out as results are accepted — a crash
    loses at most in-flight cells and a resume reuses the rest.

    ``on_progress`` (optional) is called as ``on_progress(scheduler,
    result)`` after every accepted record — the serve loop uses it to
    publish partial sweeps.

    Worker deaths (pipe EOF) reclaim the dead worker's lease and
    respawn a replacement; lease expiry (``lease_seconds``) is the
    backstop for wedged-but-alive workers.  Deterministic cell
    failures become ``cell-error`` rows immediately; transient ones
    re-lease up to ``max_lease_attempts`` grants.

    ``checkpoint_every`` + ``checkpoint_dir`` forward per-cell
    checkpointing to :func:`~repro.analysis.sweep.run_cell` (appended
    to the task args only when enabled, so custom ``cell_fn``
    signatures are untouched): a reclaimed or re-leased cell then
    resumes from the victim attempt's newest valid snapshot instead of
    recomputing from round 0 — bit-identical either way.  Checkpoint
    knobs are execution detail, never identity: they hash into no
    fingerprint and no cell ID.

    ``stop_requested`` (e.g. a
    :class:`~repro.parallel.signals.DrainFlag`) makes the coordinator
    drain gracefully: once it returns true, no new leases are granted,
    in-flight cells finish and their rows are accepted, the status
    sidecar passes through ``draining`` to ``stopped``, and a later
    ``resume=True`` call computes exactly the remaining cells.
    """
    import multiprocessing as mp
    from multiprocessing import connection as mp_conn

    if retries < 0:
        raise ValueError("retries must be >= 0")
    out_path = Path(out_path)
    codec = artifact_compression(out_path, compression)
    cells = spec.cells()
    retained, stale = (
        _mine_resume(spec, out_path, cells) if resume else ({}, False)
    )
    pending = [c for c in cells if c.cell_id not in retained]
    workers_n = default_workers(num_workers, n_tasks=len(pending) or None)

    result = ScheduledRunResult(
        spec=spec,
        path=out_path,
        cells=cells,
        skipped=sorted(retained),
        events_path=scheduler_events_path(out_path),
    )

    progress = ShardStatusWriter(
        out_path,
        spec_fingerprint=spec.fingerprint,
        shard=0,
        num_shards=0,
        cells_total=len(cells),
    )

    if not pending and not stale:
        # Complete, canonical artifact: same resume contract as
        # run_shard — recompute nothing, leave the bytes untouched,
        # refresh only the status sidecar.
        progress.start(resumed=len(retained))
        progress.finish()
        return result

    # Atomic canonical rewrite (manifest + retained rows), then stream
    # appends — the same crash-safety recipe as run_shard.
    out_path.parent.mkdir(parents=True, exist_ok=True)
    manifest = shard_manifest(
        spec.to_payload(),
        spec.fingerprint,
        0,
        0,
        extra={
            "scheduler": {
                "workers": workers_n,
                "lease_seconds": float(lease_seconds),
                "max_lease_attempts": int(max_lease_attempts),
                "compression": codec,
            }
        },
    )
    records: list[dict] = [
        retained[c.cell_id] for c in cells if c.cell_id in retained
    ]
    tmp_path = out_path.with_name(out_path.name + ".tmp")
    with JsonlWriter(tmp_path, compression=codec) as fh:
        fh.write_line(_dump(manifest))
        for record in records:
            fh.write_line(_dump(record))
        fh.flush(fsync=True)
    os.replace(tmp_path, out_path)
    progress.start(resumed=len(retained))

    scheduler = SweepScheduler(
        pending,
        workers_n,
        lease_seconds=lease_seconds,
        max_lease_attempts=max_lease_attempts,
    )
    events = JsonlWriter(result.events_path, compression="none")
    events_flushed = 0

    def _drain_events() -> None:
        nonlocal events_flushed
        while events_flushed < len(scheduler.events):
            events.write_record(scheduler.events[events_flushed])
            events_flushed += 1
        events.flush()

    fn = cell_fn if cell_fn is not None else _default_cell_fn
    ctx = mp.get_context(mp_context) if mp_context else mp.get_context()
    fleet: dict[str, _Worker] = {}
    deaths = 0
    draining = False

    # Appended only when enabled, so custom cell_fns with the fixed
    # 12-argument signature keep working unchanged.
    ckpt_extra = (
        (checkpoint_every, str(checkpoint_dir), checkpoint_keep_last)
        if checkpoint_dir is not None and checkpoint_every
        else ()
    )

    def _args_for(cell: SweepCell) -> tuple:
        return (
            cell.protocol,
            cell.lam,
            cell.seed,
            spec.initial_energy,
            spec.rounds,
            spec.stop_on_death,
            spec.telemetry,
            cell.backend,
            spec.faults,
            cell.equivalence,
            spec.max_block_mb,
            spec.routing,
        ) + ckpt_extra

    fh = JsonlWriter(out_path, compression=codec, append=True)

    def _accept(record: dict, *, error: bool, attempts: int) -> None:
        records.append(record)
        if error:
            result.errors.append(record)
        else:
            result.executed.append(record["cell_id"])
        fh.write_line(_dump(record))
        fh.flush()
        progress.steals = scheduler.steals
        progress.reclaimed = scheduler.reclaims
        progress.cell_finished(error=error, attempts=attempts)
        if on_progress is not None:
            on_progress(scheduler, result)

    def _flush_synthetic_errors() -> None:
        """Error rows minted *inside* the state machine (LeaseExhausted
        on reclaim) have no worker report to accept; sweep any error
        the artifact hasn't recorded yet into it."""
        recorded = {r["cell_id"] for r in result.errors}
        for cell_id, record in scheduler.errors.items():
            if cell_id not in recorded:
                _accept(record, error=True, attempts=record["attempts"])

    def _assign(worker: _Worker) -> bool:
        cell = scheduler.acquire(worker.name, worker.index, time.monotonic())
        if cell is None:
            return False
        try:
            worker.conn.send(("run", cell.cell_id, _args_for(cell)))
        except (BrokenPipeError, OSError):
            _bury(worker, reason="send-failed")
            return True  # the cell was reclaimed; caller re-loops
        return True

    def _bury(worker: _Worker, reason: str) -> None:
        nonlocal deaths
        deaths += 1
        scheduler.worker_lost(worker.name, time.monotonic(), reason=reason)
        _flush_synthetic_errors()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.process.join(timeout=1)
        fleet.pop(worker.name, None)
        if not scheduler.finished and not draining:
            # Same slot, fresh process: the replacement inherits the
            # home queue, so locality survives the respawn.
            name = f"{worker.name.split('+')[0]}+{deaths}"
            fleet[name] = _Worker.spawn(ctx, name, worker.index, fn, retries)
            _assign(fleet[name])

    def _check_drain() -> bool:
        # Latch at most once; polled at every safe boundary (loop top
        # and each accepted record) so a worker is never handed a new
        # lease after the drain request.
        nonlocal draining
        if not draining and stop_requested is not None and stop_requested():
            # Graceful drain: grant no new leases; in-flight cells
            # finish and their rows are accepted; queued cells stay
            # queued for a later resume.
            draining = True
            progress.draining()
        return draining

    try:
        if pending:
            for i in range(workers_n):
                fleet[f"w{i}"] = _Worker.spawn(ctx, f"w{i}", i, fn, retries)
            for worker in list(fleet.values()):
                _assign(worker)

        while not scheduler.finished:
            _drain_events()
            if _check_drain() and not scheduler.leases:
                break
            conns = {w.conn: w for w in fleet.values()}
            ready = mp_conn.wait(list(conns), timeout=poll_seconds)
            now = time.monotonic()
            for conn in ready:
                worker = conns[conn]
                try:
                    cell_id, status, payload, attempts = conn.recv()
                except (EOFError, OSError):
                    _bury(worker, reason="worker-died")
                    continue
                if status == "ok":
                    record = scheduler.complete(
                        worker.name, cell_id, payload, attempts, now
                    )
                    if record is not None:
                        _accept(record, error=False, attempts=attempts)
                else:
                    record = scheduler.fail(
                        worker.name, cell_id, payload, attempts, now
                    )
                    if record is not None:
                        _accept(record, error=True, attempts=attempts)
                if not _check_drain():
                    _assign(worker)
            scheduler.reclaim_expired(now)
            _flush_synthetic_errors()
            # Reclaimed / requeued cells may have idled workers waiting.
            if not draining:
                for worker in list(fleet.values()):
                    if scheduler.lease_of(worker.name) is None:
                        _assign(worker)
        _drain_events()
        # A drained run skips the trailer on purpose: the artifact is
        # left non-canonical, so the next resume rewrites it and
        # computes exactly the missing cells.
        if spec.telemetry and scheduler.finished:
            snaps = [
                r["telemetry"] for r in records
                if r["kind"] == CELL_KIND and "telemetry" in r
            ]
            merged = fold_results(snaps, merge_snapshots) if snaps else {}
            fh.write_line(
                _dump({"kind": SHARD_TELEMETRY_KIND, "snapshot": merged})
            )
    finally:
        fh.close()
        for worker in list(fleet.values()):
            worker.stop()
        _drain_events()
        events.close()

    result.steals = scheduler.steals
    result.reclaims = scheduler.reclaims
    result.duplicates = scheduler.duplicates
    result.worker_deaths = deaths
    progress.steals = scheduler.steals
    progress.reclaimed = scheduler.reclaims
    if draining and not scheduler.finished:
        progress.stopped()
    else:
        progress.finish()
    return result
