"""Parallel sweep machinery: process pools, seeds, and sweep sharding."""

from .pool import default_workers, fold_results, iter_tasks, run_tasks
from .rng import SeedFactory, spawn_generators
from .sharding import (
    MergedSweep,
    ShardArtifact,
    ShardRunResult,
    SweepCell,
    SweepSpec,
    classify_error,
    load_artifact,
    merge_artifacts,
    parse_shard_arg,
    partition_cells,
    run_shard,
    write_merged_artifact,
)
from .status import (
    STATUS_KIND,
    STATUS_SCHEMA,
    ShardStatusWriter,
    find_status_files,
    load_status,
    shard_status_path,
)

__all__ = [
    "MergedSweep",
    "STATUS_KIND",
    "STATUS_SCHEMA",
    "SeedFactory",
    "ShardArtifact",
    "ShardRunResult",
    "ShardStatusWriter",
    "SweepCell",
    "SweepSpec",
    "classify_error",
    "default_workers",
    "find_status_files",
    "fold_results",
    "iter_tasks",
    "load_artifact",
    "load_status",
    "merge_artifacts",
    "parse_shard_arg",
    "partition_cells",
    "run_shard",
    "run_tasks",
    "shard_status_path",
    "spawn_generators",
    "write_merged_artifact",
]
