"""Parallel sweep machinery: process pools + deterministic seeds."""

from .pool import default_workers, run_tasks
from .rng import SeedFactory, spawn_generators

__all__ = ["SeedFactory", "default_workers", "run_tasks", "spawn_generators"]
