"""Parallel sweep machinery: process pools, seeds, and sweep sharding."""

from .pool import default_workers, fold_results, iter_tasks, run_tasks
from .rng import SeedFactory, spawn_generators
from .sharding import (
    MergedSweep,
    ShardArtifact,
    ShardRunResult,
    SweepCell,
    SweepSpec,
    classify_error,
    load_artifact,
    merge_artifacts,
    parse_shard_arg,
    partition_cells,
    run_shard,
    write_merged_artifact,
)

__all__ = [
    "MergedSweep",
    "SeedFactory",
    "ShardArtifact",
    "ShardRunResult",
    "SweepCell",
    "SweepSpec",
    "classify_error",
    "default_workers",
    "fold_results",
    "iter_tasks",
    "load_artifact",
    "merge_artifacts",
    "parse_shard_arg",
    "partition_cells",
    "run_shard",
    "run_tasks",
    "spawn_generators",
    "write_merged_artifact",
]
