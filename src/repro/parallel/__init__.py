"""Parallel sweep machinery: process pools, seeds, and sweep sharding."""

from .pool import default_workers, fold_results, iter_tasks, run_tasks
from .rng import SeedFactory, spawn_generators
from .scheduler import (
    SCHED_EVENT_KIND,
    Lease,
    ScheduledRunResult,
    SweepScheduler,
    run_scheduled,
    scheduler_events_path,
)
from .sharding import (
    MergedSweep,
    ShardArtifact,
    ShardRunResult,
    SweepCell,
    SweepSpec,
    artifact_compression,
    classify_error,
    load_artifact,
    merge_artifacts,
    parse_shard_arg,
    partition_cells,
    run_shard,
    write_merged_artifact,
)
from .signals import DrainFlag, drain_on_signals
from .status import (
    STATUS_KIND,
    STATUS_SCHEMA,
    ShardStatusWriter,
    find_status_files,
    load_status,
    shard_status_path,
)

__all__ = [
    "DrainFlag",
    "Lease",
    "MergedSweep",
    "SCHED_EVENT_KIND",
    "STATUS_KIND",
    "STATUS_SCHEMA",
    "ScheduledRunResult",
    "SeedFactory",
    "ShardArtifact",
    "ShardRunResult",
    "ShardStatusWriter",
    "SweepCell",
    "SweepScheduler",
    "SweepSpec",
    "artifact_compression",
    "classify_error",
    "default_workers",
    "drain_on_signals",
    "find_status_files",
    "fold_results",
    "iter_tasks",
    "load_artifact",
    "load_status",
    "merge_artifacts",
    "parse_shard_arg",
    "partition_cells",
    "run_scheduled",
    "run_shard",
    "run_tasks",
    "scheduler_events_path",
    "shard_status_path",
    "spawn_generators",
    "write_merged_artifact",
]
