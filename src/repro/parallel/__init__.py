"""Parallel sweep machinery: process pools + deterministic seeds."""

from .pool import default_workers, fold_results, run_tasks
from .rng import SeedFactory, spawn_generators

__all__ = [
    "SeedFactory",
    "default_workers",
    "fold_results",
    "run_tasks",
    "spawn_generators",
]
