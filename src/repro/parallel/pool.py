"""Process-pool execution of embarrassingly parallel experiment sweeps.

A sweep is a grid of independent simulation cells; this module fans
them out over a :class:`concurrent.futures.ProcessPoolExecutor` (the
natural Python analogue of the MPI fan-out pattern in the HPC guides:
no shared state, explicit task messages, deterministic per-task RNG).

Design notes
------------
* Tasks must be *picklable*: we ship (callable, args) pairs, so sweep
  callables are defined at module top level.
* Worker count defaults to ``os.cpu_count() - 1`` (leave one core for
  the parent), and the pool degrades gracefully to serial execution
  when only one task or one core is available — which also keeps unit
  tests fast and debuggable.
* Results come back in *submission order*, not completion order, so a
  sweep's output table is deterministic.
* Per-worker accumulators (telemetry registries, ``PacketStats``,
  ``LatencyReservoir``) come home as picklable values and fold with an
  *order-insensitive* merge; :func:`fold_results` runs that reduction
  in submission order so pool and serial execution agree exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = ["run_tasks", "iter_tasks", "fold_results", "default_workers"]


def default_workers(
    max_workers: int | None = None, n_tasks: int | None = None
) -> int:
    """Resolve a worker count: explicit value, else cpu_count - 1.

    ``n_tasks`` caps the answer at the number of tasks to run, so a
    2-cell shard never spawns a ``cpu_count - 1`` pool only to leave
    most workers idle at fork cost.
    """
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        workers = max_workers
    else:
        workers = max(1, (os.cpu_count() or 2) - 1)
    if n_tasks is not None:
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        workers = min(workers, n_tasks)
    return workers


def _call(task: tuple[Callable[..., Any], tuple]) -> Any:
    fn, args = task
    return fn(*args)


def run_tasks(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple] | Iterable[tuple],
    max_workers: int | None = None,
    serial: bool = False,
    chunksize: int = 1,
) -> list[Any]:
    """Execute ``fn(*args)`` for every tuple in ``argtuples``.

    Parameters
    ----------
    fn:
        Top-level (picklable) callable.
    argtuples:
        One tuple of positional arguments per task.
    max_workers:
        Pool size; ``None`` uses cpu_count - 1.
    serial:
        Force in-process execution (useful under debuggers, in tests,
        and on single-core machines).
    chunksize:
        Tasks per worker dispatch; raise for many tiny tasks to
        amortise IPC (the usual map-chunking tradeoff).

    Returns
    -------
    list
        Results in the order of ``argtuples``.
    """
    return list(
        iter_tasks(
            fn,
            argtuples,
            max_workers=max_workers,
            serial=serial,
            chunksize=chunksize,
        )
    )


def iter_tasks(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple] | Iterable[tuple],
    max_workers: int | None = None,
    serial: bool = False,
    chunksize: int = 1,
) -> Iterator[Any]:
    """Streaming variant of :func:`run_tasks`.

    Yields results in submission order as they become available, which
    lets callers checkpoint incrementally (the shard runner appends a
    row to its artifact after every completed cell, so a crash loses at
    most the in-flight cells).  Exhausting the iterator is equivalent
    to :func:`run_tasks`; abandoning it tears the pool down.

    Arguments are validated here, eagerly — a bad ``chunksize`` or
    ``max_workers`` raises at the call site, not on the first
    ``next()`` of a generator someone may hold unadvanced for a while.
    """
    tasks = [(fn, tuple(args)) for args in argtuples]
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    workers = default_workers(max_workers, n_tasks=len(tasks) or None)
    return _iter_tasks(tasks, workers, serial, chunksize)


def _iter_tasks(
    tasks: list[tuple], workers: int, serial: bool, chunksize: int
) -> Iterator[Any]:
    if not tasks:
        return
    if serial or workers == 1 or len(tasks) == 1:
        for t in tasks:
            yield _call(t)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(_call, tasks, chunksize=chunksize)


def fold_results(
    results: Iterable[Any], merge: Callable[[Any, Any], Any]
) -> Any:
    """Reduce per-task results with a two-argument ``merge``.

    ``run_tasks`` already returns results in submission order, so this
    left fold is deterministic for any pool size; when ``merge`` is
    additionally commutative (the telemetry / ``PacketStats`` merge
    contract), the fold equals the serial sweep's accumulation exactly.
    Returns ``None`` for an empty iterable.
    """
    acc = None
    first = True
    for r in results:
        if first:
            acc, first = r, False
        else:
            acc = merge(acc, r)
    return acc
