"""Deterministic random-stream management for parallel sweeps.

Every experiment cell (protocol x lambda x replicate) gets its own
:class:`numpy.random.SeedSequence` child, so results are bit-identical
regardless of how cells are scheduled across worker processes — the
standard reproducibility discipline for parallel Monte-Carlo (and the
reason none of this code ever calls ``np.random.seed``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeedFactory", "spawn_generators"]


def spawn_generators(seed: int, n: int) -> list[np.random.Generator]:
    """n independent generators rooted at ``seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


@dataclass(frozen=True)
class SeedFactory:
    """Stable per-cell seed derivation.

    ``seed_for(*key)`` hashes an arbitrary tuple key (protocol name,
    lambda, replicate index, ...) together with the root seed into a
    64-bit seed.  The same key always yields the same stream; distinct
    keys yield independent ones (SeedSequence entropy mixing).
    """

    root: int = 0

    def seed_for(self, *key) -> int:
        material = [self.root]
        for part in key:
            if isinstance(part, (int, np.integer)):
                material.append(int(part) & 0xFFFFFFFF)
            else:
                # Stable string hash (Python's hash() is salted per
                # process, which would break cross-process determinism).
                acc = 2166136261
                for ch in str(part).encode():
                    acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
                material.append(acc)
        return int(
            np.random.SeedSequence(material).generate_state(1, dtype=np.uint64)[0]
        )

    def generator_for(self, *key) -> np.random.Generator:
        return np.random.default_rng(self.seed_for(*key))
