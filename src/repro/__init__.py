"""repro — a full reproduction of QLEC (Li et al., ICPP 2019).

QLEC is a machine-learning-based energy-efficient clustering algorithm
for IoT wireless sensor networks in 3-D space: an improved DEEC
cluster-head selection phase plus a Q-learning data-transmission phase.
This package implements the algorithm, every substrate it runs on (3-D
deployments, first-order radio energy model, lossy channel, cluster-
head queues, Poisson traffic, a round-based simulator), the paper's
baselines (FCM-based hierarchical scheme, classic k-means, LEACH,
classic DEEC, direct transmission), and drivers regenerating every
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import paper_config, QLECProtocol, run_simulation
>>> result = run_simulation(paper_config(seed=1), QLECProtocol())
>>> 0.0 <= result.delivery_rate <= 1.0
True

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
figure regenerations.
"""

from .baselines import (
    ClusteringProtocol,
    DEECProtocol,
    DirectProtocol,
    FCMProtocol,
    KMeansProtocol,
    LEACHProtocol,
    fuzzy_c_means,
    kmeans,
)
from .config import (
    DeploymentConfig,
    PaperConfig,
    QLearningConfig,
    QueueConfig,
    RadioConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
)
from .core import (
    ImprovedDEECSelector,
    QLECProtocol,
    QRouter,
    RewardModel,
    SelectionConfig,
    cluster_radius,
    optimal_cluster_count,
    optimal_cluster_count_int,
)
from .energy import EnergyLedger, FirstOrderRadio
from .network import (
    BaseStation,
    Channel,
    NodeArray,
    Topology,
    mountain_terrain,
    underwater_column,
    uniform_cube,
)
from .simulation import (
    NetworkState,
    SimulationEngine,
    SimulationResult,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "BaseStation",
    "Channel",
    "ClusteringProtocol",
    "DEECProtocol",
    "DeploymentConfig",
    "DirectProtocol",
    "EnergyLedger",
    "FCMProtocol",
    "FirstOrderRadio",
    "ImprovedDEECSelector",
    "KMeansProtocol",
    "LEACHProtocol",
    "NetworkState",
    "NodeArray",
    "PaperConfig",
    "QLECProtocol",
    "QLearningConfig",
    "QRouter",
    "QueueConfig",
    "RadioConfig",
    "RewardModel",
    "SelectionConfig",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "Topology",
    "TrafficConfig",
    "cluster_radius",
    "fuzzy_c_means",
    "kmeans",
    "mountain_terrain",
    "optimal_cluster_count",
    "optimal_cluster_count_int",
    "paper_config",
    "run_simulation",
    "underwater_column",
    "uniform_cube",
]
