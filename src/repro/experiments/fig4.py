"""Experiment E-F4: the §5.3 large-scale dataset run (paper Fig. 4).

The paper runs QLEC over 2896 power-plant nodes in China (k_opt = 272
heads) and plots each node's energy-consumption *ratio* (consumed /
initial) on the map, observing that "nodes with high energy consumption
rate ... are evenly distributed in the network", i.e. QLEC spreads the
drain instead of burning hotspots.

We regenerate the quantitative content of that figure: the per-node
consumption-ratio distribution, its spatial evenness (consumption of
spatial quadrants, Jain's index, and the correlation between a node's
consumption ratio and its distance to the BS — a hotspot protocol shows
strong structure; QLEC should not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import jains_index, render_kv, render_table
from ..config import (
    DeploymentConfig,
    QLearningConfig,
    QueueConfig,
    RadioConfig,
    SimulationConfig,
    TrafficConfig,
)
from ..baselines import FCMProtocol, KMeansProtocol
from ..baselines.base import ClusteringProtocol
from ..core import QLECProtocol
from ..datasets import load_power_plants
from ..simulation import SimulationResult, run_simulation

__all__ = ["Fig4Config", "Fig4Report", "run_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    """Knobs of the large-scale run."""

    n_nodes: int = 2896
    #: The paper derives k_opt = 272 for this network via Theorem 1.
    n_clusters: int = 272
    rounds: int = 10
    mean_interarrival: float = 16.0
    #: Positions are rescaled into a cube of this side so the radio
    #: constants stay in their calibrated regime (the raw map spans
    #: thousands of km, far beyond any sensor radio).  250 keeps the
    #: dense east within the free-space radius of its heads.
    side: float = 250.0
    seed: int = 0
    dataset_path: str | None = None
    #: Spatial grid used for the evenness report (g x g quadrants).
    grid: int = 4
    #: Baselines to run on the identical network for the relative
    #: evenness comparison ("qlec" always runs).
    compare: tuple[str, ...] = ()
    #: Kernel-backend selector (``auto``/``numpy``/...); the large grid
    #: is where a compiled backend pays off most.
    backend: str = "auto"
    #: Numeric equivalence tier; the large grid is also where the
    #: statistical tier's GEMM distances pay off most.
    equivalence: str = "bitwise"
    #: Optional distance-block memory budget in MiB.
    max_block_mb: float | None = None


@dataclass
class Fig4Report:
    """Quantitative restatement of Fig. 4."""

    result: SimulationResult
    consumption_ratio: np.ndarray
    balance_index: float
    quadrant_means: np.ndarray
    distance_correlation: float
    k: int
    #: protocol name -> balance index on the identical network.
    comparison: dict[str, float] | None = None

    def render(self) -> str:
        c = self.consumption_ratio
        header = render_kv(
            {
                "nodes": c.size,
                "clusters (k)": self.k,
                "pdr": self.result.delivery_rate,
                "total energy [J]": self.result.total_energy,
                "balance index (Jain)": self.balance_index,
                "consumption ratio mean": float(c.mean()),
                "consumption ratio std": float(c.std()),
                "corr(ratio, d_to_bs)": self.distance_correlation,
            },
            title="Fig. 4 — energy consumption rate, large-scale dataset",
        )
        rows = []
        g = self.quadrant_means.shape[0]
        for i in range(g):
            row = {"quadrant row": i}
            for j in range(g):
                row[f"col {j}"] = float(self.quadrant_means[i, j])
            rows.append(row)
        out = header + "\n\n" + render_table(
            rows, title="mean consumption ratio per spatial quadrant"
        )
        if self.comparison:
            comp_rows = [
                {"protocol": name, "balance index": value}
                for name, value in self.comparison.items()
            ]
            out += "\n\n" + render_table(
                comp_rows,
                title="relative evenness on the identical network",
            )
        return out


def run_fig4(config: Fig4Config | None = None) -> Fig4Report:
    """Build the dataset network, run QLEC, and measure evenness."""
    cfg = config if config is not None else Fig4Config()
    rng = np.random.default_rng(cfg.seed)
    dataset = load_power_plants(cfg.dataset_path, n_fallback=cfg.n_nodes, rng=rng)
    nodes, bs, energies = dataset.to_network(side=cfg.side)

    sim_config = SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=nodes.n,
            side=cfg.side,
            # Per-node energies are heterogeneous; the deployment value
            # is a placeholder (the engine takes initial_energy below).
            initial_energy=float(energies.mean()),
            bs_position=tuple(bs.position),
        ),
        radio=RadioConfig(),
        qlearning=QLearningConfig(),
        traffic=TrafficConfig(mean_interarrival=cfg.mean_interarrival),
        queue=QueueConfig(),
        rounds=cfg.rounds,
        n_clusters=cfg.n_clusters,
        seed=cfg.seed,
        backend=cfg.backend,
        equivalence=cfg.equivalence,
        max_block_mb=cfg.max_block_mb,
    )
    def run_protocol(protocol: ClusteringProtocol) -> SimulationResult:
        return run_simulation(
            sim_config, protocol, nodes=nodes, bs=bs, initial_energy=energies
        )

    result = run_protocol(QLECProtocol())

    comparison: dict[str, float] | None = None
    if cfg.compare:
        factories = {"fcm": FCMProtocol, "kmeans": KMeansProtocol}
        comparison = {"qlec": jains_index(result.consumption_ratio)}
        for name in cfg.compare:
            if name == "qlec":
                continue
            other = run_protocol(factories[name]())
            comparison[name] = jains_index(other.consumption_ratio)

    ratio = result.consumption_ratio
    positions = result.positions
    # Spatial quadrants over the (x, y) footprint.
    g = cfg.grid
    x_edges = np.linspace(positions[:, 0].min(), positions[:, 0].max() + 1e-9, g + 1)
    y_edges = np.linspace(positions[:, 1].min(), positions[:, 1].max() + 1e-9, g + 1)
    quadrant = np.zeros((g, g))
    for i in range(g):
        for j in range(g):
            mask = (
                (positions[:, 0] >= x_edges[i])
                & (positions[:, 0] < x_edges[i + 1])
                & (positions[:, 1] >= y_edges[j])
                & (positions[:, 1] < y_edges[j + 1])
            )
            quadrant[i, j] = float(ratio[mask].mean()) if mask.any() else np.nan

    d_bs = np.linalg.norm(positions - np.asarray(bs.position), axis=1)
    if ratio.std() > 0 and d_bs.std() > 0:
        corr = float(np.corrcoef(ratio, d_bs)[0, 1])
    else:
        corr = 0.0

    return Fig4Report(
        result=result,
        consumption_ratio=ratio,
        balance_index=jains_index(ratio),
        quadrant_means=quadrant,
        distance_correlation=corr,
        k=cfg.n_clusters,
        comparison=comparison,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
