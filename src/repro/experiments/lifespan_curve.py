"""Alive-nodes-over-time curves and FND/HND/LND lifespan metrics.

The paper reports lifespan as a single number per condition (Fig. 3(c)).
The WSN literature the paper builds on (LEACH, DEEC) standardises three
richer milestones — First Node Death, Half Nodes Death, Last Node
Death — readable off the alive-count curve.  This driver runs every
protocol on an energy-constrained Table-2 scenario until (near) total
depletion and tabulates both the curve and the milestones.

Expected shape: QLEC's curve stays flat longest and then drops *steeply*
(even drain means nodes die together), while the energy-blind baselines
bleed nodes early; QLEC's FND is the latest, while its LND is not
necessarily so — a protocol that burns one hotspot node early can
stretch its last survivor for a long time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_series, render_table
from ..analysis.sweep import PROTOCOLS
from ..config import paper_config
from ..simulation import SimulationResult, run_simulation

__all__ = ["LifespanCurveConfig", "LifespanCurveResult", "run_lifespan_curves"]


@dataclass(frozen=True)
class LifespanCurveConfig:
    protocols: tuple[str, ...] = ("qlec", "fcm", "kmeans", "deec", "leach")
    seeds: tuple[int, ...] = (0, 1, 2)
    mean_interarrival: float = 4.0
    #: Tight budget + long horizon so every protocol reaches HND.
    initial_energy: float = 0.1
    rounds: int = 60
    #: Curve sampling stride for the printed table.
    stride: int = 5


@dataclass
class LifespanCurveResult:
    config: LifespanCurveConfig
    #: protocol -> mean alive-count curve, shape (rounds,).
    curves: dict[str, np.ndarray]
    #: protocol -> (FND, HND, LND) means (NaN where censored everywhere).
    milestones: dict[str, tuple[float, float, float]]

    def render(self) -> str:
        cfg = self.config
        rounds = np.arange(1, cfg.rounds + 1)
        sampled = rounds[:: cfg.stride]
        series = {
            name: curve[:: cfg.stride].tolist()
            for name, curve in self.curves.items()
        }
        curve_block = render_series(
            "round", sampled.tolist(), series,
            precision=1,
            title="alive nodes per round (mean over seeds)",
        )
        rows = [
            {
                "protocol": name,
                "FND": fnd,
                "HND": hnd,
                "LND": lnd,
            }
            for name, (fnd, hnd, lnd) in self.milestones.items()
        ]
        milestone_block = render_table(
            rows, precision=1,
            title="lifespan milestones [rounds] (NaN = beyond the horizon)",
        )
        return curve_block + "\n\n" + milestone_block


def _milestones(results: list[SimulationResult], horizon: int):
    def mean_or_nan(values):
        vals = [v for v in values if v is not None]
        return float(np.mean(vals)) if vals else float("nan")

    return (
        mean_or_nan([r.first_death_round for r in results]),
        mean_or_nan([r.half_death_round for r in results]),
        mean_or_nan([r.last_death_round for r in results]),
    )


def run_lifespan_curves(
    config: LifespanCurveConfig | None = None,
) -> LifespanCurveResult:
    cfg = config if config is not None else LifespanCurveConfig()
    curves: dict[str, np.ndarray] = {}
    milestones: dict[str, tuple[float, float, float]] = {}
    for name in cfg.protocols:
        results = []
        for seed in cfg.seeds:
            sim_config = paper_config(
                mean_interarrival=cfg.mean_interarrival,
                seed=seed,
                rounds=cfg.rounds,
                initial_energy=cfg.initial_energy,
            )
            results.append(run_simulation(sim_config, PROTOCOLS[name]()))
        stacked = np.stack([r.alive_curve() for r in results])
        curves[name] = stacked.mean(axis=0)
        milestones[name] = _milestones(results, cfg.rounds)
    return LifespanCurveResult(config=cfg, curves=curves, milestones=milestones)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_lifespan_curves().render())


if __name__ == "__main__":  # pragma: no cover
    main()
