"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from .ablation import ABLATION_VARIANTS, AblationRow, render_ablation, run_ablation
from .convergence_x import (
    XMeasurement,
    measure_x,
    render_convergence_study,
    run_convergence_study,
)
from .lifespan_curve import (
    LifespanCurveConfig,
    LifespanCurveResult,
    run_lifespan_curves,
)
from .complexity import (
    QLearningCostRow,
    SelectionScalingRow,
    measure_qlearning_updates,
    measure_selection_scaling,
    render_complexity_report,
)
from .fig1 import Fig1View, run_fig1
from .fig3 import (
    DEFAULT_LAMBDAS,
    Fig3Config,
    Fig3Result,
    fig3_from_artifacts,
    fig3_spec,
    run_fig3,
)
from .fig4 import Fig4Config, Fig4Report, run_fig4
from .kopt_validation import KoptReport, run_kopt_validation
from .sensitivity import (
    SENSITIVITY_AXES,
    SensitivityRow,
    render_sensitivity,
    run_sensitivity,
)

__all__ = [
    "ABLATION_VARIANTS",
    "AblationRow",
    "DEFAULT_LAMBDAS",
    "Fig1View",
    "Fig3Config",
    "Fig3Result",
    "Fig4Config",
    "Fig4Report",
    "KoptReport",
    "SENSITIVITY_AXES",
    "SensitivityRow",
    "LifespanCurveConfig",
    "LifespanCurveResult",
    "QLearningCostRow",
    "XMeasurement",
    "SelectionScalingRow",
    "fig3_from_artifacts",
    "fig3_spec",
    "measure_qlearning_updates",
    "measure_x",
    "measure_selection_scaling",
    "render_ablation",
    "render_complexity_report",
    "render_convergence_study",
    "render_sensitivity",
    "run_ablation",
    "run_convergence_study",
    "run_fig1",
    "run_fig3",
    "run_lifespan_curves",
    "run_sensitivity",
    "run_fig4",
    "run_kopt_validation",
]
