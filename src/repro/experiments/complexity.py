"""Experiment E-C1: empirical check of the §4.3 complexity claims.

Lemma 2: the cluster-head-selection phase runs in O(RN).
Lemma 3 / Theorem 3: the Q-learning phase runs in O(kX), X being the
number of V-table updates until convergence.

We measure (a) wall-clock of the selection phase as N scales at fixed
R — the growth should be ~linear; (b) the per-relax Q-evaluation count,
which must equal (k + 1) * updates exactly (each Send-Data evaluates
one Q per head plus the BS action); and (c) the convergence sweep count
X of the expected-backup relaxation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..config import paper_config
from ..core import QLECProtocol
from ..core.selection import ImprovedDEECSelector
from ..simulation.state import NetworkState

__all__ = [
    "SelectionScalingRow",
    "measure_selection_scaling",
    "measure_qlearning_updates",
    "QLearningCostRow",
    "render_complexity_report",
]


@dataclass(frozen=True)
class SelectionScalingRow:
    n_nodes: int
    rounds: int
    seconds: float

    @property
    def seconds_per_node_round(self) -> float:
        return self.seconds / (self.n_nodes * self.rounds)


def measure_selection_scaling(
    n_values=(50, 100, 200, 400, 800),
    rounds: int = 20,
    k: int = 5,
    seed: int = 0,
) -> list[SelectionScalingRow]:
    """Time Algorithm 2+3 alone (no data plane) across N."""
    rows = []
    for n in n_values:
        config = paper_config(seed=seed, rounds=rounds)
        config = config.replace(
            deployment=config.deployment.__class__(
                n_nodes=int(n),
                side=config.deployment.side,
                initial_energy=config.deployment.initial_energy,
            ),
            n_clusters=k,
        )
        state = NetworkState(config)
        selector = ImprovedDEECSelector(k)
        start = time.perf_counter()
        for r in range(rounds):
            state.round_index = r
            result = selector.select(state)
            state.mark_cluster_heads(result.heads)
        elapsed = time.perf_counter() - start
        rows.append(SelectionScalingRow(int(n), rounds, elapsed))
    return rows


@dataclass(frozen=True)
class QLearningCostRow:
    n_nodes: int
    k: int
    sweeps_to_converge: int
    v_updates: int
    q_evaluations: int

    @property
    def evaluations_per_update(self) -> float:
        """Must equal k + 1 exactly (Lemma 3's per-step cost)."""
        if self.v_updates == 0:
            return 0.0
        return self.q_evaluations / self.v_updates


def measure_qlearning_updates(
    n_nodes: int = 100, k: int = 5, seed: int = 0
) -> QLearningCostRow:
    """Relax the V table to convergence and count updates (the X)."""
    config = paper_config(seed=seed)
    config = config.replace(n_clusters=k)
    state = NetworkState(config)
    protocol = QLECProtocol()
    protocol.prepare(state)
    heads = protocol.select_cluster_heads(state)
    router = protocol.router
    assert router is not None
    members = np.setdiff1d(state.alive_indices(), heads)
    sweeps = router.relax(members, heads)
    return QLearningCostRow(
        n_nodes=n_nodes,
        k=int(heads.size),
        sweeps_to_converge=sweeps,
        v_updates=router.v.update_count,
        q_evaluations=router.q_evaluations,
    )


def render_complexity_report(
    selection: list[SelectionScalingRow], qlearning: QLearningCostRow
) -> str:
    sel_rows = [
        {
            "N": r.n_nodes,
            "R": r.rounds,
            "seconds": r.seconds,
            "us / (N*R)": r.seconds_per_node_round * 1e6,
        }
        for r in selection
    ]
    q_rows = [
        {
            "N": qlearning.n_nodes,
            "k": qlearning.k,
            "sweeps (X/|B|)": qlearning.sweeps_to_converge,
            "V updates (X)": qlearning.v_updates,
            "Q evals": qlearning.q_evaluations,
            "Q evals / update": qlearning.evaluations_per_update,
        }
    ]
    return (
        render_table(sel_rows, precision=6,
                     title="Lemma 2 — selection phase scaling (O(RN))")
        + "\n\n"
        + render_table(q_rows, precision=3,
                       title="Lemma 3 — Q-learning cost (O(kX))")
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_complexity_report(
        measure_selection_scaling(), measure_qlearning_updates()
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
