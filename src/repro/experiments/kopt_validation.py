"""Experiment E-TH1: numeric validation of Theorem 1 (optimal k).

Theorem 1 claims the k minimizing the per-round network energy of
Eq. (6) (with Lemma 1's E{d^2_toCH} substituted) is

    k_opt = 3/(4 pi) * (8 pi N eps_fs / (15 eps_mp))^(3/5)
            * M^(6/5) / d_toBS^(12/5).

Two validations:

1. *analytic*: the argmin of the Eq. (6) curve over integer k matches
   the closed form (up to rounding);
2. *Monte-Carlo*: Lemma 1's closed-form E{d^2_toCH} matches the
   empirical mean squared distance of uniform points in a ball of
   radius d_c.

Plus the Table-2 instantiation the paper quotes ("k_opt is
approximately 5") — with the faithful formula and a centred BS the
value is ~11; the discrepancy is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_kv, render_table
from ..config import RadioConfig
from ..core.theory import (
    cluster_radius,
    expected_sq_distance_to_ch,
    mean_distance_to_point,
    optimal_cluster_count,
    round_energy_curve,
)

__all__ = ["KoptReport", "run_kopt_validation"]


@dataclass
class KoptReport:
    """Analytic-vs-numeric comparison for one scenario."""

    n_nodes: int
    side: float
    d_to_bs: float
    k_closed_form: float
    k_numeric_argmin: int
    curve_k: np.ndarray
    curve_energy: np.ndarray
    lemma1_analytic: float
    lemma1_monte_carlo: float

    @property
    def matches(self) -> bool:
        """Closed form within one integer step of the numeric argmin."""
        return abs(self.k_closed_form - self.k_numeric_argmin) <= 1.0

    def render(self) -> str:
        header = render_kv(
            {
                "N": self.n_nodes,
                "M": self.side,
                "d_toBS": self.d_to_bs,
                "k_opt (Theorem 1)": self.k_closed_form,
                "k argmin of Eq. (6)": self.k_numeric_argmin,
                "agreement (<= 1)": self.matches,
                "Lemma 1 E{d^2} analytic": self.lemma1_analytic,
                "Lemma 1 E{d^2} Monte-Carlo": self.lemma1_monte_carlo,
            },
            title="Theorem 1 validation",
        )
        rows = [
            {"k": int(k), "E_round [J]": float(e)}
            for k, e in zip(self.curve_k, self.curve_energy)
        ]
        return header + "\n\n" + render_table(
            rows, precision=6, title="Eq. (6) energy vs cluster count"
        )


def run_kopt_validation(
    n_nodes: int = 100,
    side: float = 200.0,
    bits: float = 4000.0,
    radio: RadioConfig | None = None,
    k_max: int | None = None,
    mc_samples: int = 200_000,
    seed: int = 0,
) -> KoptReport:
    """Validate Theorem 1 on one scenario (Table 2 by default)."""
    radio = radio if radio is not None else RadioConfig()
    centre = (side / 2.0,) * 3
    d_to_bs = mean_distance_to_point(side, centre, n_samples=mc_samples, rng=seed)
    k_cf = optimal_cluster_count(n_nodes, side, d_to_bs, radio)

    k_hi = k_max if k_max is not None else max(2 * int(np.ceil(k_cf)) + 5, 20)
    ks = np.arange(1, min(k_hi, n_nodes) + 1)
    curve = round_energy_curve(bits, n_nodes, ks, side, d_to_bs, radio)
    k_argmin = int(ks[np.argmin(curve)])

    # Lemma 1 Monte-Carlo: uniform points in a ball of radius d_c.
    k_probe = max(1, round(k_cf))
    d_c = cluster_radius(k_probe, side)
    rng = np.random.default_rng(seed + 1)
    # Rejection-free ball sampling: radius ~ U^(1/3) * d_c.
    r = d_c * rng.random(mc_samples) ** (1.0 / 3.0)
    lemma1_mc = float((r ** 2).mean())
    lemma1_an = expected_sq_distance_to_ch(k_probe, side)
    # Note: Lemma 1's closed form folds the d_c(k) relation of Eq. (5)
    # into the constants, so both quantities are directly comparable.

    return KoptReport(
        n_nodes=n_nodes,
        side=side,
        d_to_bs=d_to_bs,
        k_closed_form=float(k_cf),
        k_numeric_argmin=k_argmin,
        curve_k=ks,
        curve_energy=curve,
        lemma1_analytic=lemma1_an,
        lemma1_monte_carlo=lemma1_mc,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_kopt_validation().render())


if __name__ == "__main__":  # pragma: no cover
    main()
