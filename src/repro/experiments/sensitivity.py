"""Hyperparameter sensitivity of QLEC (robustness study, ours).

The paper fixes its hyperparameters in Table 2 without justification
(γ = 0.95, α₁ = β₁ = 0.05, α₂ = β₂ = 1.05, plus the penalty l and
the un-published ACK-estimator settings).  This study perturbs each
knob independently around the Table-2 point and measures the damage on
the three headline metrics — the standard one-at-a-time robustness
sweep a reviewer would ask for.

A robust reproduction should show a *plateau*: QLEC's advantage should
not hinge on a razor-edge hyperparameter choice.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis import render_table
from ..config import paper_config
from ..core import QLECProtocol
from ..simulation import run_simulation

__all__ = ["SensitivityRow", "SENSITIVITY_AXES", "run_sensitivity",
           "render_sensitivity"]


#: axis name -> (values, config-patch builder).
SENSITIVITY_AXES: dict[str, tuple[tuple, ...]] = {
    "gamma": ((0.5, 0.8, 0.95, 0.99),),
    "alpha2": ((0.25, 1.05, 2.0, 4.0),),
    "bs_penalty": ((1.0, 10.0, 100.0, 1000.0),),
    "g": ((0.0, 0.1, 0.5),),
    "estimator_alpha": ((0.02, 0.08, 0.3),),
    "estimator_shared": ((False, True),),
}


@dataclass(frozen=True)
class SensitivityRow:
    axis: str
    value: object
    is_default: bool
    pdr: float
    energy: float
    lifespan: float
    balance: float

    def as_dict(self) -> dict:
        return {
            "axis": self.axis,
            "value": self.value,
            "default": self.is_default,
            "pdr": self.pdr,
            "energy_J": self.energy,
            "lifespan": self.lifespan,
            "balance": self.balance,
        }


def _patched_config(axis: str, value, mean_interarrival: float, seed: int):
    config = paper_config(mean_interarrival=mean_interarrival, seed=seed)
    q = config.qlearning
    if axis == "gamma":
        q = dataclasses.replace(q, gamma=value)
    elif axis == "alpha2":
        q = dataclasses.replace(q, alpha2=value, beta2=value)
    elif axis == "bs_penalty":
        q = dataclasses.replace(q, bs_penalty=value)
    elif axis == "g":
        q = dataclasses.replace(q, g=value)
    elif axis == "estimator_alpha":
        return config.replace(estimator_alpha=value)
    elif axis == "estimator_shared":
        return config.replace(estimator_shared=value)
    else:
        raise KeyError(f"unknown sensitivity axis {axis!r}")
    return config.replace(qlearning=q)


_DEFAULTS = {
    "gamma": 0.95,
    "alpha2": 1.05,
    "bs_penalty": 100.0,
    "g": 0.1,
    "estimator_alpha": 0.08,
    "estimator_shared": True,
}


def run_sensitivity(
    axes: Sequence[str] | None = None,
    seeds: Sequence[int] = (0, 1),
    mean_interarrival: float = 4.0,
) -> list[SensitivityRow]:
    """One-at-a-time perturbation around the Table-2 point."""
    chosen = list(axes) if axes is not None else list(SENSITIVITY_AXES)
    rows: list[SensitivityRow] = []
    for axis in chosen:
        (values,) = SENSITIVITY_AXES[axis]
        for value in values:
            results = [
                run_simulation(
                    _patched_config(axis, value, mean_interarrival, seed),
                    QLECProtocol(),
                )
                for seed in seeds
            ]
            rows.append(
                SensitivityRow(
                    axis=axis,
                    value=value,
                    is_default=value == _DEFAULTS[axis],
                    pdr=float(np.mean([r.delivery_rate for r in results])),
                    energy=float(np.mean([r.total_energy for r in results])),
                    lifespan=float(np.mean([r.lifespan for r in results])),
                    balance=float(
                        np.mean([r.energy_balance_index() for r in results])
                    ),
                )
            )
    return rows


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    return render_table(
        [r.as_dict() for r in rows],
        precision=4,
        title="QLEC hyperparameter sensitivity (Table-2 scenario, lambda = 4)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_sensitivity(run_sensitivity()))


if __name__ == "__main__":  # pragma: no cover
    main()
