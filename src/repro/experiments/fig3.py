"""Experiment E-F3: regenerate the three panels of the paper's Fig. 3.

Fig. 3 compares QLEC, the FCM-based scheme, and classic k-means over
four network conditions (Poisson mean inter-arrival lambda) on:

* (a) packet delivery rate,
* (b) total energy consumption over R = 20 rounds,
* (c) network lifespan (rounds until the first node crosses the death
  line).

Expected shape (not absolute values — see EXPERIMENTS.md): QLEC holds
the highest delivery rate as congestion grows, with the FCM scheme
losing >10 % when congested (multi-hop) and k-means degrading from dead
static heads; QLEC outlives both by a wide margin; QLEC consumes less
than the FCM scheme, with per-delivered-packet energy lowest overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import SweepResult, render_series, sweep_protocols
from ..parallel import SweepSpec, merge_artifacts

__all__ = [
    "Fig3Config",
    "Fig3Result",
    "fig3_from_artifacts",
    "fig3_spec",
    "run_fig3",
    "DEFAULT_LAMBDAS",
]

#: The four network conditions, congested -> idle.  The paper does not
#: publish its lambda values; these four span saturation to idleness
#: for the Table-2 scenario.
DEFAULT_LAMBDAS = (2.0, 4.0, 8.0, 16.0)

#: The trio of Fig. 3.
FIG3_PROTOCOLS = ("qlec", "fcm", "kmeans")


@dataclass(frozen=True)
class Fig3Config:
    """Knobs of the Fig. 3 regeneration."""

    lambdas: tuple[float, ...] = DEFAULT_LAMBDAS
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    protocols: tuple[str, ...] = FIG3_PROTOCOLS
    initial_energy: float = 0.25
    rounds: int = 20
    serial: bool = False
    max_workers: int | None = None
    #: Instrument every cell and keep the merged metric snapshot on
    #: ``Fig3Result.telemetry``.
    telemetry: bool = False
    #: Kernel-backend selector for every cell (``auto``/``numpy``/...).
    backend: str = "auto"
    #: Numeric equivalence tier (``bitwise``/``statistical``).
    equivalence: str = "bitwise"
    #: Optional distance-block memory budget in MiB (large-N runs).
    max_block_mb: float | None = None


@dataclass
class Fig3Result:
    """The three series blocks plus the raw sweep."""

    config: Fig3Config
    sweep: SweepResult
    pdr: dict[str, list[float]] = field(default_factory=dict)
    energy: dict[str, list[float]] = field(default_factory=dict)
    lifespan: dict[str, list[float]] = field(default_factory=dict)
    latency: dict[str, list[float]] = field(default_factory=dict)

    @property
    def telemetry(self) -> dict | None:
        """Merged metric snapshot across all cells (None unless the
        sweep ran with ``Fig3Config.telemetry=True``)."""
        return self.sweep.telemetry

    def render(self) -> str:
        lams = list(self.config.lambdas)
        blocks = [
            render_series(
                "lambda", lams, self.pdr,
                title="Fig. 3(a) — packet delivery rate",
            ),
            render_series(
                "lambda", lams, self.energy,
                title="Fig. 3(b) — total energy consumption [J]",
            ),
            render_series(
                "lambda", lams, self.lifespan,
                title="Fig. 3(c) — network lifespan [rounds until first death]",
            ),
            render_series(
                "lambda", lams, self.latency,
                title="(extra) mean transmission latency [slots]",
            ),
        ]
        return "\n\n".join(blocks)


def fig3_spec(config: Fig3Config | None = None) -> SweepSpec:
    """The sharding-layer grid description of a Fig. 3 regeneration.

    ``repro sweep --shard k/K`` with this spec's parameters runs any
    slice of the figure's grid on any host; the merged artifacts feed
    back through :func:`fig3_from_artifacts`.
    """
    cfg = config if config is not None else Fig3Config()
    return SweepSpec(
        protocols=cfg.protocols,
        lambdas=cfg.lambdas,
        seeds=cfg.seeds,
        initial_energy=cfg.initial_energy,
        rounds=cfg.rounds,
        telemetry=cfg.telemetry,
        equivalence=cfg.equivalence,
        max_block_mb=cfg.max_block_mb,
    )


def run_fig3(
    config: Fig3Config | None = None, sweep: SweepResult | None = None
) -> Fig3Result:
    """Run the sweep (or aggregate a pre-merged one) into the panels."""
    cfg = config if config is not None else Fig3Config()
    if sweep is None:
        sweep = sweep_protocols(
            protocols=cfg.protocols,
            lambdas=cfg.lambdas,
            seeds=cfg.seeds,
            initial_energy=cfg.initial_energy,
            rounds=cfg.rounds,
            serial=cfg.serial,
            max_workers=cfg.max_workers,
            telemetry=cfg.telemetry,
            backend=cfg.backend,
            equivalence=cfg.equivalence,
            max_block_mb=cfg.max_block_mb,
        )
    lams = list(cfg.lambdas)
    return Fig3Result(
        config=cfg,
        sweep=sweep,
        pdr=sweep.series("pdr", cfg.protocols, lams),
        energy=sweep.series("energy_J", cfg.protocols, lams),
        lifespan=sweep.series("lifespan", cfg.protocols, lams),
        latency=sweep.series("latency_slots", cfg.protocols, lams),
    )


def fig3_from_artifacts(paths) -> Fig3Result:
    """Rebuild the Fig. 3 panels from merged shard artifacts.

    The grid shape (protocols, lambdas, seeds, energy, rounds) is read
    from the artifacts' shared sweep spec, so the panels are exactly
    those the equivalent single-host ``run_fig3`` would produce.
    Raises if the artifacts leave cells missing or errored — a figure
    silently aggregated over a partial grid is worse than no figure.
    """
    merged = merge_artifacts(paths).require_complete()
    spec = merged.spec
    cfg = Fig3Config(
        lambdas=spec.lambdas,
        seeds=spec.seeds,
        protocols=spec.protocols,
        initial_energy=spec.initial_energy,
        rounds=spec.rounds,
        telemetry=spec.telemetry,
        equivalence=spec.equivalence,
        max_block_mb=spec.max_block_mb,
    )
    return run_fig3(cfg, sweep=merged.sweep)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
