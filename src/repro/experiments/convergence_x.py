"""Experiment: measuring X, the Q-learning convergence count (§4.3).

Theorem 3 argues QLEC runs in O(kX) because "it usually takes many
times to update all V values in a large-scale wireless sensor network.
Hence, X tends to be much larger than N or R."  This driver quantifies
X directly: for growing network sizes it relaxes the V table to
convergence (sup-norm tolerance) and reports

* X — total single-entry V updates to convergence,
* X / N — sweeps needed (does the paper's "X >> N" claim hold?),
* wall-clock per update, and the O(k) per-update cost.

It also exposes the convergence *trajectory* (sup-norm deltas per
sweep) so the geometric gamma-contraction is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..config import paper_config
from ..core import QLECProtocol
from ..rl.convergence import ConvergenceTracker
from ..simulation.state import NetworkState

__all__ = ["XMeasurement", "measure_x", "run_convergence_study"]


@dataclass(frozen=True)
class XMeasurement:
    n_nodes: int
    k: int
    sweeps: int
    x_updates: int
    q_evaluations: int
    deltas: tuple[float, ...]
    mode: str = "expected"

    @property
    def x_over_n(self) -> float:
        return self.x_updates / self.n_nodes

    @property
    def contraction_rate(self) -> float:
        """Geometric decay estimate from consecutive finite deltas."""
        finite = [d for d in self.deltas if np.isfinite(d) and d > 0.0]
        if len(finite) < 2:
            return 0.0
        ratios = [b / a for a, b in zip(finite, finite[1:]) if a > 0]
        return float(np.median(ratios)) if ratios else 0.0


def measure_x(
    n_nodes: int = 100,
    k: int = 5,
    seed: int = 0,
    tol: float = 1e-6,
    mode: str = "expected",
    learning_rate: float = 0.3,
) -> XMeasurement:
    """Relax a fresh QLEC V table to convergence and count everything.

    ``mode="expected"`` is the paper's model-based backup (V jumps to
    max Q each update — converges in a handful of sweeps).
    ``mode="sampled"`` moves V by a partial TD step instead, the
    classical online regime in which the paper's "X tends to be much
    larger than N" discussion actually holds.
    """
    if mode not in ("expected", "sampled"):
        raise ValueError("mode must be 'expected' or 'sampled'")
    config = paper_config(seed=seed)
    config = config.replace(
        deployment=config.deployment.__class__(
            n_nodes=n_nodes,
            side=config.deployment.side,
            initial_energy=config.deployment.initial_energy,
        ),
        n_clusters=k,
    )
    state = NetworkState(config)
    protocol = QLECProtocol()
    protocol.prepare(state)
    heads = protocol.select_cluster_heads(state)
    router = protocol.router
    assert router is not None
    members = np.setdiff1d(state.alive_indices(), heads)

    tracker = ConvergenceTracker(tol=tol)
    sweeps = 0
    for _ in range(router.cfg.max_backups):
        for node in members:
            q, _ = router.q_values(int(node), heads)
            target = float(q.max())
            if mode == "expected":
                router.v[int(node)] = target
            else:
                old = router.v[int(node)]
                router.v[int(node)] = old + learning_rate * (target - old)
        sweeps += 1
        tracker.observe(router.v.values)
        if tracker.converged:
            break
    return XMeasurement(
        n_nodes=n_nodes,
        k=int(heads.size),
        sweeps=sweeps,
        x_updates=router.v.update_count,
        q_evaluations=router.q_evaluations,
        deltas=tuple(tracker.deltas),
        mode=mode,
    )


def run_convergence_study(
    n_values=(50, 100, 200, 400),
    k: int = 5,
    seed: int = 0,
    modes=("expected", "sampled"),
) -> list[XMeasurement]:
    return [
        measure_x(n_nodes=int(n), k=k, seed=seed, mode=mode)
        for mode in modes
        for n in n_values
    ]


def render_convergence_study(rows: list[XMeasurement]) -> str:
    table = [
        {
            "mode": r.mode,
            "N": r.n_nodes,
            "k": r.k,
            "sweeps": r.sweeps,
            "X (V updates)": r.x_updates,
            "X / N": r.x_over_n,
            "Q evals": r.q_evaluations,
            "contraction": r.contraction_rate,
        }
        for r in rows
    ]
    return render_table(
        table, precision=3,
        title="X — V updates to convergence (Theorem 3's quantity)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_convergence_study(run_convergence_study()))


if __name__ == "__main__":  # pragma: no cover
    main()
