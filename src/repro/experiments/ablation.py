"""Experiment E-AB1: ablation of QLEC's design choices.

The paper motivates three additions over its substrates; this
experiment switches each off independently and measures the damage:

* Eq. (4) energy threshold (keep drained nodes out of the election);
* Algorithm 3 redundancy reduction (d_c-spaced heads);
* Q-learning relay choice vs plain nearest-head joining;
* the paper's expected backup vs a sampled-TD variant (extension);
* classic DEEC / LEACH / HEED / adaptive k-means / direct anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import render_table
from ..baselines import (
    DEECProtocol,
    DirectProtocol,
    HEEDProtocol,
    KMeansProtocol,
    LEACHProtocol,
)
from ..baselines.base import ClusteringProtocol
from ..config import paper_config
from ..core import QLECProtocol, SelectionConfig
from ..simulation import run_simulation

__all__ = ["AblationRow", "ABLATION_VARIANTS", "run_ablation", "render_ablation"]


class _NearestJoinQLEC(QLECProtocol):
    """QLEC's head selection but members simply join the nearest head
    (ablates the whole Q-learning transmission phase)."""

    name = "qlec/no-qlearning"

    def choose_relay(self, state, node, heads, queue_lengths):
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])


#: name -> factory for each ablation variant.
ABLATION_VARIANTS: dict[str, object] = {
    "qlec (full)": lambda: QLECProtocol(),
    "qlec w/o energy threshold": lambda: QLECProtocol(
        selection=SelectionConfig(use_energy_threshold=False)
    ),
    "qlec w/o redundancy reduction": lambda: QLECProtocol(
        selection=SelectionConfig(use_redundancy_reduction=False)
    ),
    "qlec w/o rotation": lambda: QLECProtocol(
        selection=SelectionConfig(use_rotation=False)
    ),
    "qlec w/o q-learning (nearest join)": _NearestJoinQLEC,
    "qlec sampled-TD backup": lambda: QLECProtocol(learning_rate=0.3),
    "qlec eps-greedy 0.05": lambda: QLECProtocol(epsilon=0.05),
    "deec (classic)": DEECProtocol,
    "leach": LEACHProtocol,
    "heed": HEEDProtocol,
    "kmeans (adaptive)": lambda: KMeansProtocol(recluster_every=1),
    "direct": DirectProtocol,
}


@dataclass(frozen=True)
class AblationRow:
    variant: str
    pdr: float
    energy: float
    lifespan: float
    censored_runs: int
    balance: float

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "pdr": self.pdr,
            "energy_J": self.energy,
            "lifespan": self.lifespan,
            "censored": self.censored_runs,
            "balance": self.balance,
        }


def run_ablation(
    variants: dict | None = None,
    mean_interarrival: float = 4.0,
    seeds=(0, 1, 2),
    initial_energy: float = 0.25,
    rounds: int = 20,
) -> list[AblationRow]:
    """Run every variant over the same scenarios and summarize."""
    table = variants if variants is not None else ABLATION_VARIANTS
    rows = []
    for name, factory in table.items():
        results = []
        for seed in seeds:
            config = paper_config(
                mean_interarrival=mean_interarrival,
                seed=seed,
                rounds=rounds,
                initial_energy=initial_energy,
            )
            protocol: ClusteringProtocol = factory()
            results.append(run_simulation(config, protocol))
        rows.append(
            AblationRow(
                variant=name,
                pdr=float(np.mean([r.delivery_rate for r in results])),
                energy=float(np.mean([r.total_energy for r in results])),
                lifespan=float(np.mean([r.lifespan for r in results])),
                censored_runs=sum(r.lifespan_censored for r in results),
                balance=float(
                    np.mean([r.energy_balance_index() for r in results])
                ),
            )
        )
    return rows


def render_ablation(rows: list[AblationRow]) -> str:
    return render_table(
        [r.as_dict() for r in rows],
        precision=4,
        title="QLEC ablation (lambda = 4.0, Table-2 scenario)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
