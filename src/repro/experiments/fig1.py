"""Experiment E-F1: regenerate Fig. 1 (clustered network structure).

Figure 1 of the paper illustrates "a simple 3-dimensional network
structure after implementing DEEC clustering": a cube of sensors, the
sink in the centre, black cluster heads, gray members.  This driver
deploys the Table-2 cube, runs one improved-DEEC selection round, and
renders the x-y projection as a character raster — members ``.``,
heads ``H``, sink ``S`` — plus the cluster membership census.

(Figure 2, the agent-environment interaction diagram, is a conceptual
illustration of standard RL with no quantitative content; its
executable counterpart is the MDP machinery in :mod:`repro.rl.mdp`.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import network_ascii, render_table
from ..config import paper_config
from ..core import QLECProtocol
from ..simulation.state import NetworkState

__all__ = ["Fig1View", "run_fig1"]


@dataclass
class Fig1View:
    """The rendered structure plus the cluster census."""

    layout: str
    heads: np.ndarray
    members_per_head: dict[int, int]
    mean_member_distance: float

    def render(self) -> str:
        rows = [
            {
                "head": h,
                "members": n,
            }
            for h, n in sorted(self.members_per_head.items())
        ]
        return (
            "Fig. 1 — network structure after cluster-head selection\n"
            "(members '.', heads 'H', sink 'S'; x-y projection)\n\n"
            + self.layout
            + "\n\n"
            + render_table(rows, title="cluster census")
            + f"\n\nmean member->head distance: {self.mean_member_distance:.1f} m"
        )


def run_fig1(seed: int = 0, width: int = 64, height: int = 24) -> Fig1View:
    """One selection round on the Table-2 cube, rendered."""
    state = NetworkState(paper_config(seed=seed))
    protocol = QLECProtocol()
    protocol.prepare(state)
    heads = protocol.select_cluster_heads(state)

    # Nearest-head membership for the census (Fig. 1 shows static
    # clusters; transmission-phase choices are dynamic).
    members = np.setdiff1d(np.arange(state.n), heads)
    d = state.topology.distances_to_subset(heads)[members]
    assignment = heads[d.argmin(axis=1)]
    census = {int(h): int((assignment == h).sum()) for h in heads}
    mean_d = float(d.min(axis=1).mean())

    layout = network_ascii(
        state.nodes.positions,
        heads=heads,
        bs_position=state.bs.position,
        width=width,
        height=height,
    )
    return Fig1View(
        layout=layout,
        heads=heads,
        members_per_head=census,
        mean_member_distance=mean_d,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
