"""Deterministic fault injection: seeded, schedulable chaos.

``FaultPlan`` (pure data, fingerprintable) describes timed fault
events; ``PlanInjector`` applies one against live simulation state at
the engine's phase boundaries; the catalog names reusable chaos
recipes for the CLI (``--faults``), the scenario registry, and sweep
sharding.  Without a plan the engine holds :data:`NULL_INJECTOR` and
the no-fault path is bit-identical to the golden traces (enforced by
``scripts/check_fault_null_equivalence.py`` in CI).
"""

from .catalog import FAULT_SCENARIOS, build_fault_plan, fault_scenario_names
from .injector import NULL_INJECTOR, NullInjector, PlanInjector
from .metrics import per_round_pdr, rounds_to_recover
from .plan import EVENT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "EVENT_KINDS",
    "FAULT_SCENARIOS",
    "FaultEvent",
    "FaultPlan",
    "NULL_INJECTOR",
    "NullInjector",
    "PlanInjector",
    "build_fault_plan",
    "fault_scenario_names",
    "per_round_pdr",
    "rounds_to_recover",
]
