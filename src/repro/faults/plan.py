"""Pure-data fault plans: what goes wrong, when, and to whom.

A :class:`FaultPlan` is a frozen, JSON-able description of timed fault
events plus the recovery knobs the engine's degradation machinery uses.
It contains no behaviour — the :mod:`repro.faults.injector` interprets
it against live simulation state — so a plan can cross process and host
boundaries, hash into config fingerprints and sharding cell IDs, and be
rebuilt bit-identically from its payload.

Determinism contract
--------------------
Everything stochastic about a fault (which nodes a ``count`` event
picks) is drawn from the dedicated fault RNG stream
(``NetworkState.fault_rng``), never from the traffic/channel/protocol
streams — so two runs of the same (config, plan, seed) inject the same
faults, and a run *without* a plan consumes exactly the streams it
always did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry.manifest import stable_fingerprint

__all__ = ["EVENT_KINDS", "FaultEvent", "FaultPlan"]

#: Every event kind the injector understands.
#:
#: ``crash``          kill nodes outright (non-battery death)
#: ``revive``         bring crashed nodes back (residual permitting)
#: ``ch_kill``        kill cluster heads — at election (``slot=None``)
#:                    or mid-round after transmission slot ``slot``
#: ``blackout``       total channel outage for ``duration`` rounds
#: ``degrade``        multiply every link's delivery probability by
#:                    ``factor`` for ``duration`` rounds
#: ``link_degrade``   multiply the delivery probability of every link
#:                    incident to the chosen nodes (a failing radio)
#: ``queue_clamp``    clamp CH queue capacity to ``capacity`` for
#:                    ``duration`` rounds
#: ``battery_drain``  drain ``factor`` of each chosen node's residual
#:                    (a battery anomaly, not radio spend)
EVENT_KINDS = (
    "crash",
    "revive",
    "ch_kill",
    "blackout",
    "degrade",
    "link_degrade",
    "queue_clamp",
    "battery_drain",
)

_WINDOW_KINDS = ("blackout", "degrade", "link_degrade", "queue_clamp")
_NODE_KINDS = ("crash", "revive", "ch_kill", "link_degrade", "battery_drain")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    round:
        0-based simulation round at which the event fires.
    slot:
        Only for ``ch_kill``: ``None`` strikes at election time
        (before any slot runs); an integer strikes after that
        transmission slot of the round.
    nodes:
        Explicit victim indices.  Mutually exclusive with ``count``.
    count:
        Number of victims to draw (without replacement, from the
        eligible pool) on the fault RNG stream.
    duration:
        Window length in rounds for the window kinds
        (blackout/degrade/link_degrade/queue_clamp).
    factor:
        Delivery-probability multiplier (degrade kinds, in [0, 1]) or
        residual fraction to drain (``battery_drain``, in [0, 1]).
    capacity:
        Clamped queue capacity for ``queue_clamp``.
    """

    kind: str
    round: int
    slot: int | None = None
    nodes: tuple[int, ...] | None = None
    count: int = 0
    duration: int = 1
    factor: float = 0.0
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {EVENT_KINDS}"
            )
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if self.nodes is not None:
            object.__setattr__(
                self, "nodes", tuple(int(i) for i in self.nodes)
            )
            if len(self.nodes) == 0:
                raise ValueError("nodes, when given, must be non-empty")
            if any(i < 0 for i in self.nodes):
                raise ValueError("node indices must be >= 0")
            if self.count:
                raise ValueError("give nodes or count, not both")
        elif self.kind in _NODE_KINDS and self.count < 1:
            raise ValueError(f"{self.kind!r} needs nodes or count >= 1")
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.slot is not None:
            if self.kind != "ch_kill":
                raise ValueError("slot applies to ch_kill events only")
            if self.slot < 0:
                raise ValueError("slot must be >= 0")
        if self.kind in _WINDOW_KINDS and self.duration < 1:
            raise ValueError(f"{self.kind!r} needs duration >= 1")
        if self.kind in ("degrade", "link_degrade", "battery_drain"):
            if not 0.0 <= self.factor <= 1.0:
                raise ValueError(f"{self.kind!r} needs factor in [0, 1]")
        if self.kind == "queue_clamp" and self.capacity < 0:
            raise ValueError("queue_clamp capacity must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of :class:`FaultEvent` plus recovery knobs.

    Presence of a plan (even an empty one) arms the engine's
    degradation machinery — dead-head masking, per-sender
    retry-with-backoff budgets — which legitimately changes ARQ
    behaviour; only ``config.faults is None`` is the bit-identical
    golden-trace path.

    Attributes
    ----------
    events:
        The fault schedule; applied in declaration order within a round.
    recovery:
        When True (default), non-CH senders mask dead cluster heads out
        of their action sets (re-attaching to a live head or the BS the
        same round) and retries are bounded by the backoff budget
        below.  False degrades "naively": the stock ARQ keeps banging
        on dead heads until per-packet retries run out.
    retry_budget:
        Per-sender cap on link-layer retransmissions per round while
        recovering (bounds how much energy a node can burn re-sending
        into a failing neighbourhood).
    backoff_base:
        Base backoff delay in slots; after its k-th retransmission this
        round a sender waits ``backoff_base * 2^min(k, 4)`` slots
        before transmitting again.  0 disables the delay while keeping
        the budget.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)
    recovery: bool = True
    retry_budget: int = 8
    backoff_base: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError("events must be FaultEvent instances")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")

    # -- serialisation -------------------------------------------------
    def to_payload(self) -> dict:
        """Plain JSON-able dict; round-trips via :meth:`from_payload`."""
        return {
            "events": [
                {
                    "kind": ev.kind,
                    "round": ev.round,
                    "slot": ev.slot,
                    "nodes": list(ev.nodes) if ev.nodes is not None else None,
                    "count": ev.count,
                    "duration": ev.duration,
                    "factor": ev.factor,
                    "capacity": ev.capacity,
                }
                for ev in self.events
            ],
            "recovery": self.recovery,
            "retry_budget": self.retry_budget,
            "backoff_base": self.backoff_base,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        events = tuple(
            FaultEvent(
                kind=e["kind"],
                round=e["round"],
                slot=e.get("slot"),
                nodes=tuple(e["nodes"]) if e.get("nodes") is not None else None,
                count=e.get("count", 0),
                duration=e.get("duration", 1),
                factor=e.get("factor", 0.0),
                capacity=e.get("capacity", 0),
            )
            for e in payload.get("events", ())
        )
        return cls(
            events=events,
            recovery=payload.get("recovery", True),
            retry_budget=payload.get("retry_budget", 8),
            backoff_base=payload.get("backoff_base", 1),
        )

    @property
    def fingerprint(self) -> str:
        """Stable 16-hex digest of the plan (the same primitive behind
        config fingerprints, so the plan's identity composes into
        them)."""
        return stable_fingerprint(self.to_payload())

    def last_round(self) -> int:
        """Last round any event touches (window ends included)."""
        end = 0
        for ev in self.events:
            w = ev.duration if ev.kind in _WINDOW_KINDS else 1
            end = max(end, ev.round + w)
        return end
