"""Robustness metrics derived from a faulted run's per-round series."""

from __future__ import annotations

__all__ = ["per_round_pdr", "rounds_to_recover"]


def per_round_pdr(result) -> list[float]:
    """Per-round delivery rate series of a
    :class:`~repro.simulation.metrics.SimulationResult` (rounds that
    generated nothing report 1.0, matching ``PacketStats``)."""
    return [rs.delivery_rate for rs in result.per_round]


def rounds_to_recover(
    result,
    fault_round: int,
    *,
    threshold: float = 0.9,
    baseline_window: int = 3,
) -> int | None:
    """Rounds after ``fault_round`` until per-round PDR first returns
    to ``threshold`` times its pre-fault baseline.

    The baseline is the mean per-round PDR over the
    ``baseline_window`` rounds immediately before ``fault_round``.
    Returns 0 when the fault round itself already meets the bar (the
    degradation machinery absorbed the fault within the round), the
    1-based lag to the first recovered round otherwise, and ``None``
    when PDR never recovers within the run — the robustness headline
    the CH-kill acceptance test asserts on.
    """
    pdr = per_round_pdr(result)
    if not 0 <= fault_round < len(pdr):
        raise ValueError(
            f"fault_round {fault_round} outside the executed "
            f"{len(pdr)} round(s)"
        )
    lo = max(0, fault_round - baseline_window)
    before = pdr[lo:fault_round]
    if not before:
        raise ValueError("no pre-fault rounds to baseline against")
    baseline = sum(before) / len(before)
    bar = threshold * baseline
    for lag, value in enumerate(pdr[fault_round:]):
        if value >= bar:
            return lag
    return None
