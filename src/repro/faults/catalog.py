"""Named fault scenarios: reusable chaos recipes scaled to a config.

Every builder maps a :class:`~repro.config.SimulationConfig` (without a
plan) to a :class:`FaultPlan` whose timing scales with the scenario's
round count and whose victim counts scale with the population — so the
same scenario name means the same *shape* of chaos on a 30-node test
cube and the 2896-node dataset run.

These names are what ``--faults <scenario>`` on the CLI and
``SweepSpec.faults`` resolve; because the materialised plan hashes into
the config fingerprint, a named scenario pins cell identity exactly
like any hand-built plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .plan import FaultEvent, FaultPlan

if TYPE_CHECKING:
    from ..config import SimulationConfig

__all__ = ["FAULT_SCENARIOS", "build_fault_plan", "fault_scenario_names"]


def _frac(n: int, fraction: float, minimum: int = 1) -> int:
    return max(minimum, int(n * fraction))


def _ch_kill(cfg: "SimulationConfig") -> FaultPlan:
    """Kill two cluster heads at election time, one third in."""
    return FaultPlan(
        events=(
            FaultEvent(kind="ch_kill", round=max(1, cfg.rounds // 3), count=2),
        )
    )


def _ch_kill_mid(cfg: "SimulationConfig") -> FaultPlan:
    """Kill two cluster heads mid-round (half way through the slots) —
    the acceptance scenario: members must re-attach the same round."""
    return FaultPlan(
        events=(
            FaultEvent(
                kind="ch_kill",
                round=max(1, cfg.rounds // 3),
                slot=cfg.traffic.slots_per_round // 2,
                count=2,
            ),
        )
    )


def _blackout(cfg: "SimulationConfig") -> FaultPlan:
    """Total channel outage for two rounds, one third in."""
    return FaultPlan(
        events=(
            FaultEvent(
                kind="blackout", round=max(1, cfg.rounds // 3), count=0,
                duration=2,
            ),
        )
    )


def _brownout(cfg: "SimulationConfig") -> FaultPlan:
    """Every link at half its delivery probability for three rounds."""
    return FaultPlan(
        events=(
            FaultEvent(
                kind="degrade", round=max(1, cfg.rounds // 3),
                duration=3, factor=0.5,
            ),
        )
    )


def _churn(cfg: "SimulationConfig") -> FaultPlan:
    """Crash 10 % of the nodes a quarter in, revive them at half time,
    crash another 10 % at three quarters — LEACH-RLC-style membership
    churn."""
    n = cfg.deployment.n_nodes
    r = cfg.rounds
    k = _frac(n, 0.10)
    return FaultPlan(
        events=(
            FaultEvent(kind="crash", round=max(1, r // 4), count=k),
            FaultEvent(kind="revive", round=max(2, r // 2), count=k),
            FaultEvent(kind="crash", round=max(3, (3 * r) // 4), count=k),
        )
    )


def _link_flap(cfg: "SimulationConfig") -> FaultPlan:
    """20 % of the radios degrade to 30 % link quality for three
    rounds (every link incident to a flapping node suffers)."""
    n = cfg.deployment.n_nodes
    return FaultPlan(
        events=(
            FaultEvent(
                kind="link_degrade", round=max(1, cfg.rounds // 3),
                count=_frac(n, 0.20), duration=3, factor=0.3,
            ),
        )
    )


def _queue_squeeze(cfg: "SimulationConfig") -> FaultPlan:
    """Cluster-head buffers collapse to 2 slots for four rounds."""
    return FaultPlan(
        events=(
            FaultEvent(
                kind="queue_clamp", round=max(1, cfg.rounds // 3),
                duration=4, capacity=2,
            ),
        )
    )


def _drain(cfg: "SimulationConfig") -> FaultPlan:
    """A battery anomaly drains half the residual of 10 % of the
    nodes, one third in."""
    n = cfg.deployment.n_nodes
    return FaultPlan(
        events=(
            FaultEvent(
                kind="battery_drain", round=max(1, cfg.rounds // 3),
                count=_frac(n, 0.10), factor=0.5,
            ),
        )
    )


def _partition(cfg: "SimulationConfig") -> FaultPlan:
    """Sever the transit corridor on one side of the network: the
    nodes that are both near the BS (``d_bs <= median``) and on the
    +x side degrade to 10 % link quality for a window, and any cluster
    head among them is struck dead mid-round for three consecutive
    rounds.  Uplink routes through that corridor break *after* the
    round's tree was built, so multi-hop substrates must visibly
    re-route (mesh repair) or fall back; the -x corridor stays intact
    as the detour.

    Victims are explicit (``nodes=``), chosen by reproducing the
    deployment from the config's seed — the deployment stream is the
    first child of the master generator, so the same nodes the run
    will place are the ones the plan names.  No fault-RNG draw happens
    at injection time; the plan is pure geometry.
    """
    import numpy as np

    from ..network.deployment import deploy

    rng = np.random.default_rng(cfg.seed).spawn(1)[0]
    nodes, bs = deploy(cfg.deployment, rng)
    d_bs = np.linalg.norm(nodes.positions - bs.position, axis=1)
    x = nodes.positions[:, 0]
    transit = np.flatnonzero((d_bs <= np.median(d_bs)) & (x >= np.median(x)))
    victims = tuple(int(i) for i in transit)
    r = cfg.rounds
    start = max(1, r // 3)
    slot = cfg.traffic.slots_per_round // 2
    kills = tuple(
        FaultEvent(kind="ch_kill", round=rnd, slot=slot, nodes=victims)
        for rnd in range(start, min(start + 3, r))
    )
    return FaultPlan(
        events=(
            FaultEvent(
                kind="link_degrade",
                round=start,
                nodes=victims,
                duration=max(2, r // 5),
                factor=0.1,
            ),
            *kills,
        )
    )


FAULT_SCENARIOS: dict[str, Callable[["SimulationConfig"], FaultPlan]] = {
    "ch-kill": _ch_kill,
    "ch-kill-mid": _ch_kill_mid,
    "blackout": _blackout,
    "brownout": _brownout,
    "churn": _churn,
    "link-flap": _link_flap,
    "queue-squeeze": _queue_squeeze,
    "drain": _drain,
    "partition": _partition,
}


def fault_scenario_names() -> list[str]:
    return sorted(FAULT_SCENARIOS)


def build_fault_plan(name: str, config: "SimulationConfig") -> FaultPlan:
    """Materialise the named fault scenario for ``config``."""
    if name not in FAULT_SCENARIOS:
        raise KeyError(
            f"unknown fault scenario {name!r}; "
            f"known: {', '.join(fault_scenario_names())}"
        )
    return FAULT_SCENARIOS[name](config)
