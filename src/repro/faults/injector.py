"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan` to
live simulation state at the engine's phase boundaries.

Mirrors the telemetry NULL-singleton pattern: the engine always holds
an injector; without a configured plan it holds :data:`NULL_INJECTOR`,
whose ``active`` flag is False and which the engine never calls into —
the no-fault path stays bit-identical to the pre-fault golden traces
and costs one predictable branch per phase.

Hook order within a round::

    begin_round(state)        expire windows, apply round-start events
    at_election(state, heads) election-time CH kills; returns live heads
    at_slot(state, heads, s)  mid-round CH kills (before slot s runs)
    queue_capacity(base)      effective CH queue capacity this round

All victim draws for ``count`` events come from ``state.fault_rng`` —
the dedicated 8th child stream — in plan declaration order, so fault
randomness never perturbs traffic/channel/protocol draws and is itself
reproducible per (config, plan, seed).
"""

from __future__ import annotations

import numpy as np

from ..telemetry.trace import NULL_TRACER
from .plan import FaultEvent, FaultPlan

__all__ = ["NULL_INJECTOR", "NullInjector", "PlanInjector"]


class NullInjector:
    """Inert injector: the engine's default when ``config.faults`` is
    None.  ``active`` is False and the engine guards every hook behind
    it, so none of these methods run on the no-fault path."""

    active = False
    recovering = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullInjector()"


#: Shared inert instance (stateless, safe to share across engines).
NULL_INJECTOR = NullInjector()


class PlanInjector:
    """Applies one :class:`FaultPlan` against one simulation run.

    Stateful per run: tracks open degradation windows and the
    injected/absorbed/fatal ledger for the result's fault summary.  An
    event is *fatal* when applying it killed at least one node (crash,
    ch_kill, or a drain across the death line); every other applied
    event was *absorbed*.
    """

    active = True

    def __init__(
        self,
        plan: FaultPlan,
        rng: np.random.Generator,
        n: int,
        bs_index: int,
        tracer=None,
    ) -> None:
        self.plan = plan
        self.rng = rng
        self.n = n
        self.bs_index = bs_index
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recovering = plan.recovery
        self.retry_budget = plan.retry_budget
        self.backoff_base = plan.backoff_base
        # Pre-index the schedule: round-start events, election kills,
        # and per-slot kills, each preserving declaration order.
        self._round_events: dict[int, list[FaultEvent]] = {}
        self._election_kills: dict[int, list[FaultEvent]] = {}
        self._slot_kills: dict[tuple[int, int], list[FaultEvent]] = {}
        for ev in plan.events:
            if ev.kind == "ch_kill":
                if ev.slot is None:
                    self._election_kills.setdefault(ev.round, []).append(ev)
                else:
                    key = (ev.round, int(ev.slot))
                    self._slot_kills.setdefault(key, []).append(ev)
            else:
                self._round_events.setdefault(ev.round, []).append(ev)
        # Open-window state (all ends are exclusive round indices).
        self._blackout_end = -1
        self._degrade_end = -1
        self._clamp_end = -1
        self._clamp_value = 0
        self._node_factor_end = np.full(n + 1, -1, dtype=np.int64)
        # Accounting for the fault summary.
        self.injected = 0
        self.absorbed = 0
        self.fatal = 0
        self.events_by_kind: dict[str, int] = {}
        self.fault_rounds: set[int] = set()

    # ------------------------------------------------------------------
    # victim selection
    # ------------------------------------------------------------------
    def _pick(self, ev: FaultEvent, pool: np.ndarray) -> np.ndarray:
        """Victims of ``ev`` within ``pool`` (sorted ascending).

        Explicit ``nodes`` intersect the pool (out-of-pool indices are
        simply not eligible any more — e.g. already dead for a crash);
        ``count`` draws without replacement from the pool on the fault
        stream.  The draw happens whenever count > 0 and the pool is
        non-empty, keeping the fault stream's consumption a function of
        the plan and the eligible-pool sizes only.
        """
        if ev.nodes is not None:
            victims = np.intersect1d(
                np.asarray(ev.nodes, dtype=np.int64), pool
            )
            return victims
        if ev.count <= 0 or pool.size == 0:
            return np.empty(0, dtype=np.int64)
        k = min(ev.count, pool.size)
        victims = self.rng.choice(pool, size=k, replace=False)
        return np.sort(victims.astype(np.int64))

    def _account(self, ev: FaultEvent, killed: int, rnd: int) -> None:
        self.injected += 1
        if killed > 0:
            self.fatal += 1
        else:
            self.absorbed += 1
        self.events_by_kind[ev.kind] = self.events_by_kind.get(ev.kind, 0) + 1
        self.fault_rounds.add(rnd)
        trc = self.tracer
        if trc.enabled:
            trc.instant(
                f"fault/{ev.kind}",
                cat="fault",
                args={"round": int(rnd), "killed": int(killed)},
            )

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def begin_round(self, state) -> None:
        """Round-start boundary: expire windows, then apply this
        round's scheduled (non-``ch_kill``) events in plan order."""
        rnd = state.round_index
        ch = state.channel
        if self._blackout_end >= 0 and rnd >= self._blackout_end:
            ch.blackout = False
            self._blackout_end = -1
        if self._degrade_end >= 0 and rnd >= self._degrade_end:
            ch.degrade = 1.0
            self._degrade_end = -1
        if self._clamp_end >= 0 and rnd >= self._clamp_end:
            self._clamp_end = -1
        if ch.node_factor is not None:
            expired = (self._node_factor_end >= 0) & (
                self._node_factor_end <= rnd
            )
            if expired.any():
                ch.node_factor[expired] = 1.0
                self._node_factor_end[expired] = -1
        for ev in self._round_events.get(rnd, ()):
            self._apply(ev, state, rnd)

    def _apply(self, ev: FaultEvent, state, rnd: int) -> None:
        ledger = state.ledger
        ch = state.channel
        killed = 0
        if ev.kind == "crash":
            victims = self._pick(ev, np.flatnonzero(ledger.alive))
            killed = ledger.force_kill(victims, cause="crash")
        elif ev.kind == "revive":
            victims = self._pick(ev, np.flatnonzero(~ledger.alive))
            ledger.revive_nodes(victims)
        elif ev.kind == "battery_drain":
            victims = self._pick(ev, np.flatnonzero(ledger.alive))
            if victims.size:
                amounts = ev.factor * ledger.residual[victims]
                killed = ledger.drain(victims, amounts, cause="drain")
        elif ev.kind == "blackout":
            ch.blackout = True
            self._blackout_end = max(self._blackout_end, rnd + ev.duration)
        elif ev.kind == "degrade":
            ch.degrade = ev.factor
            self._degrade_end = max(self._degrade_end, rnd + ev.duration)
        elif ev.kind == "link_degrade":
            victims = self._pick(ev, np.arange(self.n, dtype=np.int64))
            if victims.size:
                if ch.node_factor is None:
                    ch.node_factor = np.ones(self.n + 1, dtype=np.float64)
                ch.node_factor[victims] = ev.factor
                self._node_factor_end[victims] = np.maximum(
                    self._node_factor_end[victims], rnd + ev.duration
                )
        elif ev.kind == "queue_clamp":
            self._clamp_value = ev.capacity
            self._clamp_end = max(self._clamp_end, rnd + ev.duration)
        else:  # pragma: no cover - plan validation forbids this
            raise ValueError(f"unhandled fault kind {ev.kind!r}")
        self._account(ev, killed, rnd)

    def at_election(self, state, heads: np.ndarray) -> np.ndarray:
        """Election-time CH kills; returns the surviving heads."""
        rnd = state.round_index
        events = self._election_kills.get(rnd)
        if not events:
            return heads
        for ev in events:
            pool = heads[state.ledger.alive[heads]]
            victims = self._pick(ev, pool)
            killed = state.ledger.force_kill(victims, cause="ch_kill")
            self._account(ev, killed, rnd)
        live = state.ledger.alive[heads]
        return heads if live.all() else heads[live]

    def at_slot(self, state, heads: np.ndarray, slot: int) -> None:
        """Mid-round CH kills, struck before slot ``slot`` runs.  The
        dead head's backlog and fused payload drop via the engine's
        existing dead-head accounting; with recovery enabled, senders
        mask it out of their action sets from this slot on."""
        events = self._slot_kills.get((state.round_index, slot))
        if not events:
            return
        for ev in events:
            pool = heads[state.ledger.alive[heads]]
            victims = self._pick(ev, pool)
            killed = state.ledger.force_kill(victims, cause="ch_kill")
            self._account(ev, killed, state.round_index)

    def queue_capacity(self, base: int) -> int:
        """Effective CH queue capacity (clamped inside an open
        ``queue_clamp`` window)."""
        if self._clamp_end >= 0:
            return min(base, self._clamp_value)
        return base

    # ------------------------------------------------------------------
    def summary(self, ledger) -> dict:
        """JSON-able fault summary for ``SimulationResult.faults``."""
        return {
            "plan_fingerprint": self.plan.fingerprint,
            "recovery": self.plan.recovery,
            "injected": self.injected,
            "absorbed": self.absorbed,
            "fatal": self.fatal,
            "events_by_kind": dict(sorted(self.events_by_kind.items())),
            "fault_rounds": sorted(self.fault_rounds),
            "deaths_by_cause": ledger.deaths_by_cause(),
            "total_deaths": ledger.total_deaths,
            "revived": ledger.revived_count,
        }
