"""Routing substrate contract and the inert direct default.

The engine always holds exactly one :class:`RoutingProtocol`.  The
default is the module-level :data:`DIRECT_ROUTER` singleton — inert
(``active = False``), never billed, never consulted — so the
``routing=direct`` path is bit-identical to the pre-substrate engine
(the NULL-substrate pattern shared with telemetry, tracing, and fault
injection).  Active substrates (:class:`~repro.routing.tree.
ClusterTreeRouting`, :class:`~repro.routing.qspt.QSPTRouting`) run an
energy-charged neighbor-discovery phase each round and answer the
engine's uplink-path queries over the cluster-head overlay.

Active routers share the parent-walk machinery of
:class:`TreeRouting`: a per-round parent map (built by the subclass),
a bounded walk from a head toward the base station, **mesh repair**
when a parent is dead or its link has collapsed (forward across any
live overlay neighbor that still makes progress), and a direct-BS
long-shot **fallback** when no route remains.  Repairs and fallbacks
are counted and surface as ``routing/*`` telemetry.
"""

from __future__ import annotations

import numpy as np

from ..config import RoutingConfig
from ..simulation.state import NetworkState
from .neighbors import NeighborTable, discover

__all__ = [
    "RoutingProtocol",
    "DirectRouting",
    "DIRECT_ROUTER",
    "TreeRouting",
    "build_router",
]

#: Link-estimator reading below which a tree parent counts as broken
#: (a degraded window pushes ACK ratios toward the channel floor; the
#: shared rank-1 estimator makes that visible to every sender within a
#: round of member traffic).
DEGRADE_THRESHOLD = 0.35


class RoutingProtocol:
    """What the engine asks of a routing substrate.

    Contract mirrors the other engine substrates: the engine guards
    every call site with ``router.active``, so an inert router costs
    nothing and touches no RNG stream.
    """

    #: Registry name; also the CLI spelling.
    name: str = "abstract"
    #: Inert routers are never consulted (bit-identical default path).
    active: bool = True

    def prepare(self, state: NetworkState) -> None:
        """Called once before round 0."""

    def begin_round(self, state: NetworkState, heads: np.ndarray) -> None:
        """Per-round topology phase: neighbor discovery (billed to the
        energy ledger) and route construction over the CH overlay."""

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        """Intermediate CH hops between ``head`` and the BS (both
        excluded), nearest-to-BS last.  Empty means a direct uplink."""
        return []

    def on_hop(
        self, state: NetworkState, src: int, dst: int, success: bool
    ) -> None:
        """ACK/timeout feedback for one uplink frame hop."""

    def counters(self) -> dict[str, int]:
        """Cumulative substrate counters (``repairs``, ``fallbacks``,
        ``broadcasts``); the engine diffs successive snapshots for the
        per-round telemetry rollup."""
        return {"repairs": 0, "fallbacks": 0, "broadcasts": 0}

    def summary(self) -> dict:
        """Result-extras payload describing the substrate's run."""
        return {"kind": self.name, **self.counters()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class DirectRouting(RoutingProtocol):
    """Today's CH->BS single hop: the engine keeps each clustering
    protocol's own ``uplink_path`` (direct for QLEC/k-means, hierarchy
    hops for FCM) and the substrate stays inert."""

    name = "direct"
    active = False


#: Shared inert singleton (stateless, so one instance serves all runs).
DIRECT_ROUTER = DirectRouting()


class TreeRouting(RoutingProtocol):
    """Base for parent-map substrates (cluster tree, Q-learned SPT).

    Subclasses implement :meth:`_build`, filling ``self._parent``
    (head -> next hop, ``state.bs_index`` at the root) and
    ``self._cost`` (head -> monotone distance-to-BS potential used by
    mesh repair to certify progress) from the discovered
    :class:`~repro.routing.neighbors.NeighborTable`.
    """

    def __init__(self, config: RoutingConfig) -> None:
        self.config = config
        self.table: NeighborTable | None = None
        self._parent: dict[int, int] = {}
        self._cost: dict[int, float] = {}
        self._repairs = 0
        self._fallbacks = 0
        self._broadcasts = 0

    # -- subclass hook --------------------------------------------------
    def _build(self, state: NetworkState) -> None:
        raise NotImplementedError

    # -- substrate contract ---------------------------------------------
    def begin_round(self, state: NetworkState, heads: np.ndarray) -> None:
        self.table = discover(
            state, heads, self.config.range_factor, self.config.hello_bits
        )
        self._broadcasts += self.table.broadcasts
        self._parent = {}
        self._cost = {}
        if self.table.heads.size:
            self._build(state)

    def _link_ok(self, state: NetworkState, src: int, dst: int) -> bool:
        """A next hop is usable when it is alive and its link estimate
        has not collapsed under a degradation window."""
        if not state.ledger.is_alive(dst):
            return False
        return state.link_estimator.get(src, dst) >= DEGRADE_THRESHOLD

    def _repair(
        self, state: NetworkState, current: int, visited: set[int]
    ) -> int | None:
        """Mesh repair: any live, un-walked overlay neighbor that still
        makes progress toward the BS, cheapest continuation first."""
        assert self.table is not None
        if not self.config.mesh:
            return None
        cost = self._cost.get(current)
        if cost is None:
            return None
        best: tuple[float, int] | None = None
        for nbr in self.table.neighbors.get(current, ()):  # ascending
            nbr = int(nbr)
            if nbr in visited or nbr not in self._cost:
                continue
            if self._cost[nbr] >= cost:
                continue  # no progress — a detour, not a repair
            if not self._link_ok(state, current, nbr):
                continue
            key = self._cost[nbr]
            if best is None or key < best[0]:
                best = (key, nbr)
        return best[1] if best is not None else None

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        if self.table is None or head not in self._parent:
            # Never discovered (elected after discovery) or partitioned
            # at build time: long-shot direct uplink.
            self._fallbacks += 1
            return []
        path: list[int] = []
        current = int(head)
        visited = {current}
        # Bounded by the overlay size; repairs cannot loop because
        # progress is certified against the monotone cost potential.
        for _ in range(self.table.heads.size + 1):
            nxt = self._parent.get(current)
            if nxt is None:
                self._fallbacks += 1
                break
            if nxt == state.bs_index:
                return path
            if nxt in visited or not self._link_ok(state, current, nxt):
                nxt = self._repair(state, current, visited)
                if nxt is None:
                    self._fallbacks += 1
                    break
                self._repairs += 1
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        # Fallback: the walked prefix still shortens the final long
        # shot — keep it and let the last hop go direct.
        return path

    def counters(self) -> dict[str, int]:
        return {
            "repairs": self._repairs,
            "fallbacks": self._fallbacks,
            "broadcasts": self._broadcasts,
        }


def build_router(config: RoutingConfig) -> RoutingProtocol:
    """Resolve ``config.routing`` to a substrate instance.

    ``direct`` returns the shared inert singleton; active kinds get a
    fresh instance per run (they hold per-round tables)."""
    if config.kind == "direct":
        return DIRECT_ROUTER
    if config.kind == "tree":
        from .tree import ClusterTreeRouting

        return ClusterTreeRouting(config)
    if config.kind == "qspt":
        from .qspt import QSPTRouting

        return QSPTRouting(config)
    raise ValueError(f"unknown routing kind {config.kind!r}")
