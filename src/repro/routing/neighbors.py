"""Neighbor discovery over the cluster-head overlay.

Multi-hop routing needs each cluster head to know which other heads it
can actually reach.  :func:`discover` runs the deterministic two-phase
discovery the routing substrates share:

1. **HELLO** — every live head broadcasts one beacon at full radio
   range; every head inside that range hears it and records the sender
   in its neighbor table.
2. **Table sharing** — every head broadcasts its freshly built table
   (neighbors plus its member list), so each head also learns the
   *member-networks* of its overlay neighbors — the information a
   cluster-tree parent needs to aggregate for its subtree.

Both phases are billed to the :class:`~repro.energy.battery.EnergyLedger`
as ordinary radio traffic (``tx`` for each broadcast, ``rx`` per frame
heard), so multi-hop runs pay for their control plane instead of
getting topology knowledge for free.  Discovery is completely
deterministic: no RNG stream is touched, charges are issued in
ascending head order, and the resulting tables depend only on geometry
and liveness.

The radio range is derived from the channel model's crossover distance
``d0`` (the same convention as the QELAR baseline): two heads are
overlay neighbors when their distance is within ``range_factor * d0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.state import NetworkState

__all__ = ["NeighborTable", "discover"]


@dataclass
class NeighborTable:
    """One round's discovered cluster-head overlay.

    Attributes
    ----------
    heads:
        Live heads that participated in discovery, ascending.
    radio_range:
        The reach used for the adjacency test (``range_factor * d0``).
    neighbors:
        ``head -> sorted array of overlay-neighbor head indices``.
    bs_reachable:
        ``head -> True`` when the base station is inside radio range
        (the head can terminate a route locally).
    members:
        ``head -> member node indices`` — the alive non-head nodes in
        radio range whose nearest live head is this head (the per-CH
        *member table* shared during phase 2).
    member_networks:
        ``head -> member indices of all overlay neighbors`` (the
        *member-networks* view a cluster-tree parent aggregates).
    dist:
        Dense ``(len(heads), len(heads))`` head-to-head distances.
    d_bs:
        Per-head distance to the base station, aligned with ``heads``.
    broadcasts:
        Control frames transmitted during discovery (both phases).
    """

    heads: np.ndarray
    radio_range: float
    neighbors: dict[int, np.ndarray] = field(default_factory=dict)
    bs_reachable: dict[int, bool] = field(default_factory=dict)
    members: dict[int, np.ndarray] = field(default_factory=dict)
    member_networks: dict[int, np.ndarray] = field(default_factory=dict)
    dist: np.ndarray | None = None
    d_bs: np.ndarray | None = None
    broadcasts: int = 0

    def index_of(self, head: int) -> int:
        """Position of ``head`` in :attr:`heads` (raises if absent)."""
        pos = int(np.searchsorted(self.heads, head))
        if pos >= self.heads.size or self.heads[pos] != head:
            raise KeyError(f"node {head} is not in this round's overlay")
        return pos


def discover(
    state: NetworkState,
    heads: np.ndarray,
    range_factor: float,
    hello_bits: int,
) -> NeighborTable:
    """Run the energy-charged discovery phase and build the tables.

    Deterministic by construction — geometry and liveness in, tables
    out; every charge lands on the ledger in ascending head order.
    """
    heads = np.sort(np.asarray(heads, dtype=np.intp))
    live = heads[state.ledger.alive[heads]]
    radio_range = range_factor * state.radio.d0
    table = NeighborTable(heads=live, radio_range=radio_range)
    if live.size == 0:
        return table
    ledger = state.ledger
    radio = state.radio

    d = state.distances_matrix(live, live)
    adj = (d <= radio_range) & ~np.eye(live.size, dtype=bool)
    d_bs = state.topology.d_to_bs[live]
    table.dist = d
    table.d_bs = d_bs

    # Member tables: alive non-head nodes in range whose nearest live
    # head is this head (the hard assignment members actually use).
    others = np.flatnonzero(state.ledger.alive)
    others = others[~np.isin(others, heads)]
    if others.size:
        md = state.distances_matrix(others, live)
        nearest = md.argmin(axis=1)
        in_range = md[np.arange(others.size), nearest] <= radio_range
        for j, h in enumerate(live):
            table.members[int(h)] = others[in_range & (nearest == j)]
    else:
        for h in live:
            table.members[int(h)] = np.empty(0, dtype=np.intp)

    # Phase 1: HELLO beacons.  Broadcasts are priced at full radio
    # range (the beacon must reach the range edge); every head inside
    # hears every beacon and pays rx per frame heard.
    tx_hello = radio.tx(float(hello_bits), radio_range)
    ledger.discharge_many(live, np.full(live.size, tx_hello), "tx")
    deg = adj.sum(axis=1)
    heard = np.flatnonzero(deg > 0)
    if heard.size:
        ledger.discharge_many(
            live[heard], deg[heard] * radio.rx(float(hello_bits)), "rx"
        )

    # Phase 2: table sharing.  Each head broadcasts its table — one
    # entry per neighbor plus its member list — so frame size grows
    # with what was discovered.
    entries = 1 + deg + np.fromiter(
        (table.members[int(h)].size for h in live),
        dtype=np.int64,
        count=live.size,
    )
    share_bits = (hello_bits * entries).astype(np.float64)
    ledger.discharge_many(
        live,
        radio.tx(share_bits, np.full(live.size, radio_range)),
        "tx",
    )
    # radio.rx is scalar-only (E_rx = bits * E_elec); fold the linear
    # per-frame cost across heard neighbors with a matvec.
    rx_share = share_bits * radio.rx(1.0)
    rx_cost = adj.astype(np.float64) @ rx_share
    heard = np.flatnonzero(rx_cost > 0.0)
    if heard.size:
        ledger.discharge_many(live[heard], rx_cost[heard], "rx")
    table.broadcasts = 2 * int(live.size)

    for j, h in enumerate(live):
        nbrs = live[adj[j]]
        table.neighbors[int(h)] = nbrs
        table.bs_reachable[int(h)] = bool(d_bs[j] <= radio_range)
        if nbrs.size:
            table.member_networks[int(h)] = np.unique(
                np.concatenate([table.members[int(n)] for n in nbrs])
            )
        else:
            table.member_networks[int(h)] = np.empty(0, dtype=np.intp)
    return table
