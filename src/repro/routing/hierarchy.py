"""Level-based inter-CH relaying (the FCM baseline's multi-hop).

Before the routing substrate existed this logic lived ad hoc inside
:class:`~repro.baselines.fcm.FCMProtocol`; it is now the shared
hierarchy primitive so any protocol (or substrate) can reuse it.  The
FCM baseline delegates here verbatim — the migration is bit-identical
by construction and locked in by the golden traces.

The scheme divides the deployment into equal-width distance-to-BS
rings; a head at level L uplinks through the nearest head at a
strictly lower level, repeating until a level-0 head transmits to the
BS directly.
"""

from __future__ import annotations

import numpy as np

from ..simulation.state import NetworkState

__all__ = ["distance_levels", "hierarchy_descent", "nearest_alive_relay"]


def nearest_alive_relay(
    state: NetworkState, head: int, relays: np.ndarray
) -> list[int]:
    """One-hop uplink through the nearest *alive* relay candidate.

    The TL-LEACH secondary→primary hop: a head that is itself a
    candidate (or has no alive candidate to reach) uplinks to the BS
    directly (empty path).  Like the descent above, this lived ad hoc
    inside the baseline before the substrate existed; the delegation is
    bit-identical by construction and locked in by the golden traces.
    """
    relays = np.asarray(relays, dtype=np.intp)
    if head in relays or relays.size == 0:
        return []
    alive = relays[state.ledger.alive[relays]]
    if alive.size == 0:
        return []
    d = state.distances_from(head, alive)
    return [int(alive[d.argmin()])]


def distance_levels(
    state: NetworkState, heads: np.ndarray, n_levels: int
) -> np.ndarray:
    """Equal-width distance-to-BS rings over the deployment radius."""
    d = state.topology.d_to_bs[heads]
    d_max = float(state.topology.d_to_bs.max())
    if d_max <= 0.0:
        return np.zeros(heads.size, dtype=np.intp)
    width = d_max / n_levels
    return np.minimum((d / width).astype(np.intp), n_levels - 1)


def hierarchy_descent(
    state: NetworkState, head: int, heads: np.ndarray, levels: np.ndarray
) -> list[int]:
    """Greedy descent through the hierarchy: hop to the nearest head in
    a strictly lower level, repeating until level 0 (whose heads talk
    to the BS directly).  Returns the intermediate heads, nearest-to-BS
    last."""
    heads = np.asarray(heads, dtype=np.intp)
    if heads.size <= 1:
        return []
    head_pos = {int(h): i for i, h in enumerate(heads)}
    path: list[int] = []
    current = head
    visited = {int(head)}
    while True:
        lvl = levels[head_pos[int(current)]]
        if lvl == 0:
            break
        lower = heads[(levels < lvl)]
        lower = np.asarray(
            [h for h in lower if int(h) not in visited], dtype=np.intp
        )
        if lower.size == 0:
            break
        d = state.distances_from(int(current), lower)
        nxt = int(lower[d.argmin()])
        path.append(nxt)
        visited.add(nxt)
        current = nxt
    return path
