"""Distributed Q-learning shortest-path trees over the CH overlay.

The learned multi-hop baseline: each round, the discovered overlay is
cast as a small finite MDP — states are the live cluster heads plus an
absorbing base-station state, actions forward to an overlay neighbor
(or the BS when it is in radio range), every hop costs -1 — and a
tabular :class:`~repro.rl.agent.QLearningAgent` is trained on it with
the dedicated ``routing_rng`` stream.  The greedy policy of the
converged Q table is a shortest-path tree: with unit hop costs and
discounting, action values are monotone in hop count, so argmax picks
the minimum-hop parent.  The acceptance test checks exactly that
equivalence against :func:`~repro.rl.mdp.value_iteration` on a seeded
grid overlay.

Everything but the MDP construction (mesh repair, fallback counting,
the walk) is inherited from :class:`~repro.routing.base.TreeRouting`.
"""

from __future__ import annotations

import numpy as np

from ..rl.agent import EpsilonSchedule, QLearningAgent, train_on_mdp
from ..rl.mdp import FiniteMDP
from ..simulation.state import NetworkState
from .base import TreeRouting

__all__ = ["QSPTRouting", "build_overlay_mdp", "learn_spt"]

#: Discount keeping values bounded even for heads the overlay cannot
#: connect to the BS (their best option is the penalized self-loop).
GAMMA = 0.95
#: Per-hop cost (negated reward) — unit costs make the optimal policy
#: the minimum-hop shortest-path tree.
HOP_REWARD = -1.0
#: Reward of an invalid/self-loop action, strictly worse in discounted
#: return than any path through the overlay.
INVALID_REWARD = -2.0


def build_overlay_mdp(
    neighbors: dict[int, np.ndarray],
    bs_reachable: dict[int, bool],
) -> tuple[FiniteMDP, list[list[int]], list[int]]:
    """Cast a CH overlay as a finite MDP.

    Parameters
    ----------
    neighbors:
        ``head -> array of overlay-neighbor heads`` (symmetric).
    bs_reachable:
        ``head -> True`` when the head can reach the BS directly.

    Returns
    -------
    (mdp, candidates, heads):
        ``heads`` lists the overlay nodes ascending; state ``i`` is
        ``heads[i]`` and state ``len(heads)`` is the absorbing BS.
        ``candidates[i]`` lists each state's forwarding targets as
        state indices (neighbors ascending, then the BS) — action ``a``
        forwards to ``candidates[i][a]``; actions past the candidate
        list are penalized self-loops.
    """
    heads = sorted(int(h) for h in neighbors)
    index = {h: i for i, h in enumerate(heads)}
    n_heads = len(heads)
    bs_state = n_heads
    n_states = n_heads + 1
    candidates: list[list[int]] = []
    for h in heads:
        cand = [index[int(n)] for n in neighbors[h] if int(n) in index]
        if bs_reachable.get(h, False):
            cand.append(bs_state)
        candidates.append(cand)
    n_actions = max(1, max((len(c) for c in candidates), default=1))

    transitions = np.zeros((n_actions, n_states, n_states))
    rewards = np.zeros((n_actions, n_states, n_states))
    for s, cand in enumerate(candidates):
        for a in range(n_actions):
            if a < len(cand):
                transitions[a, s, cand[a]] = 1.0
                rewards[a, s, cand[a]] = HOP_REWARD
            else:
                transitions[a, s, s] = 1.0
                rewards[a, s, s] = INVALID_REWARD
    transitions[:, bs_state, bs_state] = 1.0  # absorbing sink
    terminal = np.zeros(n_states, dtype=bool)
    terminal[bs_state] = True
    mdp = FiniteMDP(transitions, rewards, gamma=GAMMA, terminal=terminal)
    return mdp, candidates, heads


def learn_spt(
    mdp: FiniteMDP,
    candidates: list[list[int]],
    rng: np.random.Generator,
    episodes: int,
    epsilon: float,
    learning_rate: float,
) -> np.ndarray:
    """Train a Q-learning agent on the overlay MDP and extract the
    greedy parent per state.

    Returns ``parent_state`` with one entry per non-terminal state: the
    greedy successor state index, or ``-1`` when the learned greedy
    action is an invalid self-loop (disconnected head).
    """
    agent = QLearningAgent(
        mdp.n_states,
        mdp.n_actions,
        gamma=mdp.gamma,
        learning_rate=learning_rate,
        epsilon=EpsilonSchedule(start=epsilon, end=epsilon, decay_steps=1),
        rng=rng,
    )
    train_on_mdp(agent, mdp, episodes=episodes)
    parent = np.full(len(candidates), -1, dtype=np.int64)
    for s, cand in enumerate(candidates):
        if not cand:
            continue
        a = int(agent.q.values[s, : mdp.n_actions].argmax())
        if a < len(cand):
            parent[s] = cand[a]
    return parent


class QSPTRouting(TreeRouting):
    """Per-round Q-learned shortest-path tree with mesh repair."""

    name = "qspt"

    def _build(self, state: NetworkState) -> None:
        assert self.table is not None
        table = self.table
        mdp, candidates, heads = build_overlay_mdp(
            table.neighbors, table.bs_reachable
        )
        parent_state = learn_spt(
            mdp,
            candidates,
            rng=state.routing_rng,
            episodes=self.config.qspt_episodes,
            epsilon=self.config.qspt_epsilon,
            learning_rate=self.config.qspt_learning_rate,
        )
        bs_state = len(heads)
        # Keep only heads whose learned pointer chain actually reaches
        # the BS (an unconverged cycle or a disconnected component must
        # not become a forwarding loop); depth along the chain is the
        # monotone progress potential the mesh repair checks.
        for s in range(len(heads)):
            chain = []
            cur = s
            seen: set[int] = set()
            while cur != bs_state and cur not in seen and cur >= 0:
                seen.add(cur)
                chain.append(cur)
                cur = int(parent_state[cur])
            if cur != bs_state:
                continue
            for depth, node in enumerate(reversed(chain), start=1):
                head = heads[node]
                nxt = int(parent_state[node])
                self._parent[head] = (
                    state.bs_index if nxt == bs_state else heads[nxt]
                )
                self._cost[head] = float(depth)
