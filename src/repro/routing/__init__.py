"""Multi-hop routing substrate for the cluster-head uplink.

The engine always holds one :class:`RoutingProtocol`.  The default
(:data:`DIRECT_ROUTER`, selected by ``routing=direct``) is inert and
bit-identical to the pre-substrate engine; the active substrates —
:class:`ClusterTreeRouting` (deterministic ETX cluster tree with mesh
repair) and :class:`QSPTRouting` (per-round Q-learned shortest-path
tree) — run an energy-charged neighbor-discovery phase and answer the
uplink-path queries over the CH overlay, with per-packet path tracing
and ``routing/*`` telemetry.

See ``docs/routing.md`` for the architecture and the path-record JSONL
schema.
"""

from .base import (
    DIRECT_ROUTER,
    DirectRouting,
    RoutingProtocol,
    TreeRouting,
    build_router,
)
from .hierarchy import distance_levels, hierarchy_descent, nearest_alive_relay
from .neighbors import NeighborTable, discover
from .qspt import QSPTRouting, build_overlay_mdp, learn_spt
from .tree import ClusterTreeRouting

__all__ = [
    "RoutingProtocol",
    "DirectRouting",
    "DIRECT_ROUTER",
    "TreeRouting",
    "ClusterTreeRouting",
    "QSPTRouting",
    "NeighborTable",
    "discover",
    "build_router",
    "build_overlay_mdp",
    "learn_spt",
    "distance_levels",
    "hierarchy_descent",
    "nearest_alive_relay",
]
