"""Cluster-tree/mesh routing over the cluster-head overlay.

Tree formation follows the data-collection-tree idiom: the base
station is the root, heads inside radio range of it can terminate
routes locally, and every other head picks the parent minimizing its
expected transmission count (ETX) to the BS — a deterministic Dijkstra
over the discovered overlay with the shared link estimator supplying
edge quality.  Degraded regions (fault ``link_degrade`` windows) push
ACK ratios down, which raises ETX and steers the next round's tree
around the partition; mid-round breakage is handled by the mesh-repair
walk in :class:`~repro.routing.base.TreeRouting`.

With ``mesh=False`` the repair stage is disabled — a broken parent
immediately falls back to a direct-BS long shot — which is the
tree-only comparator the chaos-partition acceptance test measures
against.
"""

from __future__ import annotations

import heapq

from ..simulation.state import NetworkState
from .base import TreeRouting

__all__ = ["ClusterTreeRouting"]

#: ETX denominator floor: a link whose estimate collapsed entirely
#: still gets a finite (huge) cost so Dijkstra ranks it last instead
#: of dividing by zero.
_MIN_ESTIMATE = 1e-3


class ClusterTreeRouting(TreeRouting):
    """Deterministic ETX shortest-path tree with mesh repair."""

    name = "tree"

    def _etx(self, state: NetworkState, src: int, dst: int) -> float:
        """Expected transmissions on the (src, dst) link under the
        current ACK-ratio estimate."""
        return 1.0 / max(state.link_estimator.get(src, dst), _MIN_ESTIMATE)

    def _build(self, state: NetworkState) -> None:
        assert self.table is not None
        table = self.table
        bs = state.bs_index
        # Dijkstra from the BS outward.  Heap entries are
        # (cost, head index): float ties resolve by ascending head
        # index, so the tree is identical run to run.
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for h in table.heads:
            h = int(h)
            if table.bs_reachable[h]:
                cost = self._etx(state, h, bs)
                dist[h] = cost
                self._parent[h] = bs
                heapq.heappush(heap, (cost, h))
        while heap:
            cost, u = heapq.heappop(heap)
            if cost > dist.get(u, float("inf")):
                continue  # stale entry
            self._cost[u] = cost
            for v in table.neighbors.get(u, ()):
                v = int(v)
                alt = cost + self._etx(state, v, u)
                if alt < dist.get(v, float("inf")):
                    dist[v] = alt
                    self._parent[v] = u
                    heapq.heappush(heap, (alt, v))
