"""QLEC reward model (paper Eqs. 16-20).

For a non-cluster-head node ``b_i`` considering action ``a_j``
(forward the packet to head ``h_j``):

* success reward (Eq. 17)::

      R^{a_j}_{b_i h_j} = -g + alpha1 [x(b_i) + x(h_j)] - alpha2 y(b_i, h_j)

* direct-to-BS variant (Eq. 19) subtracts the large penalty ``l``;
* failure reward (Eq. 20)::

      R^{a_j}_{b_i b_i} = -g + beta1 x(b_i) - beta2 y(b_i, h_j)

* expected one-step reward (Eq. 16)::

      R_t = P * R_success + (1 - P) * R_failure

``x(.)`` is the residual energy and ``y(.,.)`` the radio amplifier
energy of Eq. (18).  Residuals and costs are normalised (``energy_scale``,
``cost_scale``) so Table 2's alpha/beta weights act on O(1) quantities;
the normalisation is a fixed affine transform per run and therefore
does not change any argmax.
"""

from __future__ import annotations

import numpy as np

from ..config import QLearningConfig
from ..energy.radio import FirstOrderRadio

__all__ = ["RewardModel"]


class RewardModel:
    """Vectorized evaluator of Eqs. (16)-(20) over candidate targets.

    Parameters
    ----------
    qconfig:
        Reward weights / penalties (Table 2 values by default).
    radio:
        Radio pricing ``y(b_i, h_j)``.
    packet_bits:
        Payload size L used in the cost term.
    """

    def __init__(
        self,
        qconfig: QLearningConfig,
        radio: FirstOrderRadio,
        packet_bits: int,
        energy_scale: float | None = None,
    ) -> None:
        if packet_bits < 1:
            raise ValueError("packet_bits must be >= 1")
        self.cfg = qconfig
        self.radio = radio
        self.bits = packet_bits
        scale = qconfig.energy_scale if qconfig.energy_scale is not None else energy_scale
        self._energy_scale = scale if scale is not None else 1.0
        if self._energy_scale <= 0.0:
            raise ValueError("energy scale must be positive")
        # Default normalisation: the amplifier energy of one packet at
        # twice the crossover distance (the channel's reliability knee).
        # This keeps alpha2 * y(.) an O(1) modifier for realistic links,
        # the regime in which Table 2's weights balance the energy term
        # against the distance term instead of letting d^4 dominate
        # every routing decision.
        self._cost_ref = (
            qconfig.cost_scale
            if qconfig.cost_scale is not None
            else float(radio.amp(packet_bits, 1.5 * radio.d0))
        )
        if self._cost_ref <= 0.0:
            raise ValueError("cost scale must be positive")

    # ------------------------------------------------------------------
    def x(self, residual_energy):
        """Normalised residual energy ``x(.)``."""
        return np.asarray(residual_energy, dtype=np.float64) / self._energy_scale

    def y(self, distance, bits: float | None = None):
        """Normalised transmission cost ``y(b_i, h_j)`` (Eq. 18).

        ``bits`` defaults to the full payload L; cluster heads price
        their uplink at the *compressed* share of the aggregate (the
        "processed data" of Algorithm 1, line 14), which is their true
        marginal per-packet cost.
        """
        b = self.bits if bits is None else bits
        return np.asarray(
            self.radio.amp(b, distance), dtype=np.float64
        ) / self._cost_ref

    # ------------------------------------------------------------------
    def success_reward(
        self,
        e_src: float,
        e_dst,
        distance,
        is_bs=None,
        bits: float | None = None,
    ) -> np.ndarray:
        """Eq. (17) / Eq. (19), vectorized over candidate targets.

        Parameters
        ----------
        e_src:
            Residual energy of the sender.
        e_dst:
            Residual energies of the candidate targets (BS entries may
            carry any value — convention: the BS is not
            energy-constrained, so we pass its entry as 0).
        distance:
            Sender->target distances.
        is_bs:
            Optional boolean mask; True entries receive the extra
            ``-l`` penalty of Eq. (19).
        """
        c = self.cfg
        e_dst = np.asarray(e_dst, dtype=np.float64)
        r = (
            -c.g
            + c.alpha1 * (self.x(e_src) + self.x(e_dst))
            - c.alpha2 * self.y(distance, bits)
        )
        if is_bs is not None:
            r = r - np.where(np.asarray(is_bs, dtype=bool), c.bs_penalty, 0.0)
        return np.asarray(r, dtype=np.float64)

    def failure_reward(self, e_src: float, distance, bits: float | None = None) -> np.ndarray:
        """Eq. (20): reward when the transmission attempt fails."""
        c = self.cfg
        r = -c.g + c.beta1 * self.x(e_src) - c.beta2 * self.y(distance, bits)
        return np.asarray(r, dtype=np.float64)

    def expected_reward(
        self,
        p_success,
        e_src: float,
        e_dst,
        distance,
        is_bs=None,
        bits: float | None = None,
    ) -> np.ndarray:
        """Eq. (16): ``R_t = P R_succ + (1 - P) R_fail``."""
        p = np.asarray(p_success, dtype=np.float64)
        if np.any((p < 0.0) | (p > 1.0)):
            raise ValueError("success probabilities must lie in [0, 1]")
        r_s = self.success_reward(e_src, e_dst, distance, is_bs, bits)
        r_f = self.failure_reward(e_src, distance, bits)
        return p * r_s + (1.0 - p) * r_f

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.cfg
        return (
            f"RewardModel(g={c.g}, l={c.bs_penalty}, "
            f"alpha=({c.alpha1}, {c.alpha2}), beta=({c.beta1}, {c.beta2}))"
        )
