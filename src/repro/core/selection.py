"""Improved-DEEC cluster-head selection (paper §3.1, Algorithms 2-3).

Classic DEEC selects heads with probability proportional to residual
energy (Eq. 1) through the rotation threshold T(b_i) (Eq. 3).  The
paper adds two improvements, both implemented here behind flags so the
ablation benchmarks can switch them independently:

1. an *energy threshold* ``E_th(r) = [1 - (r/R)^2] * E_init`` (Eq. 4) a
   node must exceed to stand as a head, keeping nearly-drained nodes
   out of the rotation, and
2. *redundancy reduction* (Algorithm 3): a freshly-selected head
   broadcasts a HELLO carrying its residual energy over the cluster
   coverage radius d_c (Eq. 5); of two heads within d_c of each other,
   the lower-energy one quits.

The paper also specifies a replacement rule ("if a node possesses less
energy than needed, the improved DEEC algorithm will choose another
node up to the demand"), reproduced here as the fallback that promotes
the highest-residual-energy eligible nodes whenever the random draw
produces no head at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.state import NetworkState
from .theory import cluster_radius

__all__ = ["SelectionConfig", "SelectionResult", "ImprovedDEECSelector",
           "energy_threshold", "rotation_threshold"]


def energy_threshold(
    round_index: int, total_rounds: int, initial_energy: np.ndarray
) -> np.ndarray:
    """Eq. (4): per-node minimum energy to stand for head election."""
    if total_rounds < 1:
        raise ValueError("total_rounds must be >= 1")
    if round_index < 0:
        raise ValueError("round_index must be >= 0")
    frac = min(round_index / total_rounds, 1.0)
    return (1.0 - frac * frac) * np.asarray(initial_energy, dtype=np.float64)


def rotation_threshold(p: np.ndarray, round_index: int) -> np.ndarray:
    """Eq. (3): the DEEC election threshold T(b_i) for candidate nodes.

    ``T = p / (1 - p * (r mod (1/p)))``; the caller is responsible for
    zeroing non-candidates.  Output is clipped to [0, 1] (the raw
    expression exceeds 1 late in a rotation window, where selection
    should be certain).
    """
    p = np.asarray(p, dtype=np.float64)
    if np.any((p <= 0.0) | (p > 1.0)):
        raise ValueError("probabilities must lie in (0, 1]")
    epoch = 1.0 / p
    phase = np.mod(round_index, epoch)
    denom = 1.0 - p * phase
    with np.errstate(divide="ignore"):
        t = np.where(denom > 1e-12, p / denom, 1.0)
    return np.clip(t, 0.0, 1.0)


@dataclass(frozen=True)
class SelectionConfig:
    """Feature switches for the selector (ablation knobs)."""

    use_energy_threshold: bool = True
    use_redundancy_reduction: bool = True
    use_rotation: bool = True
    #: Promote top-energy nodes when the random draw elects nobody.
    fallback_promotion: bool = True
    #: Bits in a HELLO control message (charged only when
    #: ``charge_control_traffic`` is set).
    hello_bits: int = 200
    charge_control_traffic: bool = False
    #: How the network-average energy E_bar(r) of Eq. (1) is obtained.
    #: "linear" is Eq. (2) verbatim — valid when the network depletes
    #: by round R; "measured" (default) uses the true average residual,
    #: which keeps the expected head count at exactly k_opt (the
    #: telescoping-sum property below Eq. (2)) in regimes where the
    #: linear-decay assumption does not hold.  See EXPERIMENTS.md.
    energy_estimate: str = "measured"

    def __post_init__(self) -> None:
        if self.energy_estimate not in ("measured", "linear"):
            raise ValueError("energy_estimate must be 'measured' or 'linear'")
        if self.hello_bits < 1:
            raise ValueError("hello_bits must be >= 1")


@dataclass
class SelectionResult:
    """Outcome of one selection round, with diagnostics."""

    heads: np.ndarray
    candidates: np.ndarray
    elected: np.ndarray
    suppressed: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    promoted: bool = False

    @property
    def k(self) -> int:
        return self.heads.size


class ImprovedDEECSelector:
    """Stateful selector implementing Algorithms 2 and 3.

    Parameters
    ----------
    k_target:
        The cluster count k the election is tuned to (p_opt = k/N);
        the paper derives it from Theorem 1.
    config:
        Feature switches.
    """

    def __init__(self, k_target: int, config: SelectionConfig | None = None) -> None:
        if k_target < 1:
            raise ValueError("k_target must be >= 1")
        self.k_target = k_target
        self.config = config if config is not None else SelectionConfig()

    # ------------------------------------------------------------------
    def _probabilities(self, state: NetworkState) -> np.ndarray:
        """Eq. (1): ``p_i = p_opt * E_i(r) / E_bar(r)``, clipped to a
        valid probability."""
        p_opt = self.k_target / state.n
        if self.config.energy_estimate == "linear":
            e_bar = state.average_energy_estimate()
        else:
            e_bar = state.ledger.average_energy()
        if e_bar <= 0.0:
            # Past the planned lifetime R the linear estimate hits
            # zero; fall back to the measured average.
            e_bar = max(state.ledger.average_energy(), 1e-30)
        p = p_opt * state.ledger.residual / e_bar
        return np.clip(p, 1e-9, 0.999)

    def _eligibility(self, state: NetworkState, p: np.ndarray) -> np.ndarray:
        """Candidate-set membership: alive, rotation window elapsed,
        and (optionally) above the Eq. (4) energy threshold."""
        eligible = state.ledger.alive.copy()
        if self.config.use_rotation:
            epoch = 1.0 / p
            since = state.round_index - state.last_ch_round
            eligible &= since >= epoch
        if self.config.use_energy_threshold:
            e_th = energy_threshold(
                state.round_index, state.total_rounds, state.ledger.initial
            )
            eligible &= state.ledger.residual >= e_th
        return eligible

    def _reduce_redundancy(
        self, state: NetworkState, elected: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 3: greedy energy-ordered suppression within d_c.

        Each retained head implicitly "broadcasts a HELLO"; any elected
        node within d_c holding *less* energy quits.  Processing heads
        in descending residual energy reproduces the pairwise rule's
        fixed point deterministically.
        """
        if elected.size <= 1:
            return elected, np.empty(0, dtype=np.intp)
        d_c = cluster_radius(self.k_target, state.config.deployment.side)
        energy = state.ledger.residual[elected]
        order = elected[np.argsort(-energy, kind="stable")]
        positions = state.nodes.positions
        kept: list[int] = []
        suppressed: list[int] = []
        for h in order:
            if kept:
                d = np.linalg.norm(positions[kept] - positions[h], axis=1)
                if np.any(d <= d_c):
                    suppressed.append(int(h))
                    continue
            kept.append(int(h))
        return np.asarray(kept, dtype=np.intp), np.asarray(suppressed, dtype=np.intp)

    def _promote(
        self, state: NetworkState, heads: np.ndarray, pools
    ) -> np.ndarray:
        """Top up ``heads`` to ``k_target`` by descending residual
        energy, honouring the d_c spacing when redundancy reduction is
        active."""
        d_c = (
            cluster_radius(self.k_target, state.config.deployment.side)
            if self.config.use_redundancy_reduction
            else 0.0
        )
        positions = state.nodes.positions
        kept = [int(h) for h in heads]
        for pool in pools:
            if len(kept) >= self.k_target:
                break
            pool = np.asarray(pool, dtype=np.intp)
            pool = pool[~np.isin(pool, kept)]
            if pool.size == 0:
                continue
            order = pool[np.argsort(-state.ledger.residual[pool], kind="stable")]
            for cand in order:
                if len(kept) >= self.k_target:
                    break
                if d_c > 0.0 and kept:
                    d = np.linalg.norm(positions[kept] - positions[cand], axis=1)
                    if np.any(d <= d_c):
                        continue
                kept.append(int(cand))
        return np.asarray(kept, dtype=np.intp)

    def _charge_hello(self, state: NetworkState, heads: np.ndarray) -> None:
        """Optional control-plane energy: heads broadcast over d_c,
        in-range nodes receive."""
        if not self.config.charge_control_traffic or heads.size == 0:
            return
        d_c = cluster_radius(self.k_target, state.config.deployment.side)
        bits = self.config.hello_bits
        for h in heads:
            state.ledger.discharge(int(h), state.radio.tx(bits, d_c), "tx")
            listeners = state.topology.within_radius(int(h), d_c)
            if listeners.size:
                state.ledger.discharge(listeners, state.radio.rx(bits), "rx")

    # ------------------------------------------------------------------
    def select(self, state: NetworkState) -> SelectionResult:
        """Run one round of Algorithm 2 (+ Algorithm 3)."""
        p = self._probabilities(state)
        eligible = self._eligibility(state, p)
        candidates = np.flatnonzero(eligible)

        t = np.zeros(state.n)
        if candidates.size:
            t[candidates] = rotation_threshold(p[candidates], state.round_index)
        z = state.protocol_rng.random(state.n)
        elected = np.flatnonzero(eligible & (z < t))

        if self.config.use_redundancy_reduction:
            heads, suppressed = self._reduce_redundancy(state, elected)
        else:
            heads, suppressed = elected, np.empty(0, dtype=np.intp)

        promoted = False
        if heads.size < self.k_target and self.config.fallback_promotion:
            # Replacement rule ("choose another node up to the demand to
            # replace it") combined with the paper's stated goal of "a
            # certain cluster number for each round with specific
            # cluster coverage area": top up to k with the highest-
            # residual-energy nodes that keep d_c spacing.  Rotation-
            # eligible candidates are preferred; when they cannot fill
            # the demand, any alive node may serve.
            pools = (candidates, state.alive_indices())
            heads = self._promote(state, heads, pools)
            promoted = True

        self._charge_hello(state, heads)
        return SelectionResult(
            heads=np.asarray(heads, dtype=np.intp),
            candidates=candidates,
            elected=np.asarray(elected, dtype=np.intp),
            suppressed=suppressed,
            promoted=promoted,
        )
