"""Analytic results of the paper: cluster geometry in 3-D.

Implements, symbol for symbol:

* Eq. (5)  — cluster coverage radius ``d_c = (3 / (4 pi k))^(1/3) * M``;
* Lemma 1  — expected squared member->CH distance
  ``E{d^2_toCH} = (4 pi / 5) * (3 / (4 pi))^(5/3) * M^2 / k^(2/3)``;
* Eq. (6)  — total network energy per round (delegated to the radio
  model);
* Theorem 1 — the optimal cluster count
  ``k_opt = 3/(4 pi) * (8 pi N eps_fs / (15 eps_mp))^(3/5)
  * M^(6/5) / d_toBS^(12/5)``.

A Monte-Carlo cross-check of Lemma 1 and a numeric argmin check of
Theorem 1 live in ``tests/core/test_theory.py`` and in the
``benchmarks/test_bench_kopt.py`` experiment driver.

Note on magnitudes: with Table 2's constants and a centre base station,
the closed form yields k_opt ~= 11 for the 100-node cube, while the
paper reports "approximately 5".  The formula here is the paper's
formula verbatim; the discrepancy is recorded in EXPERIMENTS.md and the
paper's k = 5 is pinned in ``paper_config``.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import RadioConfig
from ..energy.radio import FirstOrderRadio

__all__ = [
    "cluster_radius",
    "expected_sq_distance_to_ch",
    "round_energy",
    "optimal_cluster_count",
    "optimal_cluster_count_int",
    "mean_distance_to_point",
    "round_energy_curve",
]


def cluster_radius(k: int, side: float) -> float:
    """Cluster coverage radius ``d_c`` of Eq. (5).

    Chosen so k balls of radius d_c jointly match the cube volume:
    ``d_c = cbrt(3 / (4 pi k)) * M``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if side <= 0.0:
        raise ValueError("side must be positive")
    return ((3.0 / (4.0 * math.pi * k)) ** (1.0 / 3.0)) * side


def expected_sq_distance_to_ch(k: int, side: float) -> float:
    """Lemma 1: expected squared distance from a member to its CH.

    Derived by integrating ``r^2`` over a uniform ball of radius d_c:
    ``E{d^2} = (4 pi / 5) * (3 / (4 pi))^(5/3) * M^2 / k^(2/3)``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if side <= 0.0:
        raise ValueError("side must be positive")
    coeff = (4.0 * math.pi / 5.0) * (3.0 / (4.0 * math.pi)) ** (5.0 / 3.0)
    return coeff * side ** 2 / k ** (2.0 / 3.0)


def round_energy(
    bits: float,
    n_nodes: int,
    k: int,
    side: float,
    d_to_bs: float,
    radio: RadioConfig | None = None,
) -> float:
    """Eq. (6) with Lemma 1 substituted: per-round network energy as a
    function of the cluster count k."""
    radio = radio if radio is not None else RadioConfig()
    model = FirstOrderRadio(radio)
    d2 = expected_sq_distance_to_ch(k, side)
    return model.round_energy(bits, n_nodes, k, d_to_bs, d2)


def round_energy_curve(
    bits: float,
    n_nodes: int,
    ks: np.ndarray,
    side: float,
    d_to_bs: float,
    radio: RadioConfig | None = None,
) -> np.ndarray:
    """Vectorized Eq. (6) over an array of candidate cluster counts."""
    ks = np.asarray(ks)
    if np.any(ks < 1):
        raise ValueError("all k must be >= 1")
    return np.asarray(
        [round_energy(bits, n_nodes, int(k), side, d_to_bs, radio) for k in ks]
    )


def optimal_cluster_count(
    n_nodes: int,
    side: float,
    d_to_bs: float,
    radio: RadioConfig | None = None,
) -> float:
    """Theorem 1: the continuous optimal cluster count.

    ``k_opt = 3/(4 pi) * (8 pi N eps_fs / (15 eps_mp))^(3/5)
    * M^(6/5) / d_toBS^(12/5)``

    obtained by substituting Lemma 1 into Eq. (6) and solving
    ``dE_r/dk = 0``.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if side <= 0.0 or d_to_bs <= 0.0:
        raise ValueError("side and d_to_bs must be positive")
    radio = radio if radio is not None else RadioConfig()
    ratio = 8.0 * math.pi * n_nodes * radio.eps_fs / (15.0 * radio.eps_mp)
    return (
        (3.0 / (4.0 * math.pi))
        * ratio ** (3.0 / 5.0)
        * side ** (6.0 / 5.0)
        / d_to_bs ** (12.0 / 5.0)
    )


def optimal_cluster_count_int(
    n_nodes: int,
    side: float,
    d_to_bs: float,
    radio: RadioConfig | None = None,
) -> int:
    """Theorem 1 rounded to a usable integer, clamped to [1, N]."""
    k = optimal_cluster_count(n_nodes, side, d_to_bs, radio)
    return max(1, min(n_nodes, round(k)))


def mean_distance_to_point(side: float, point, n_samples: int = 200_000,
                           rng: np.random.Generator | int | None = None) -> float:
    """Monte-Carlo estimate of the average distance from a uniform point
    in the M^3 cube to ``point`` — the d_toBS approximation the paper
    borrows from Bandyopadhyay & Coyle [1]."""
    if side <= 0.0:
        raise ValueError("side must be positive")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    pts = gen.uniform(0.0, side, size=(n_samples, 3))
    diff = pts - np.asarray(point, dtype=np.float64)
    return float(np.sqrt(np.einsum("ij,ij->i", diff, diff)).mean())
