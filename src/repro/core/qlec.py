"""The QLEC protocol (paper Algorithm 1): the primary contribution.

Two phases per round:

* **Cluster Head Selection** — improved DEEC (Algorithms 2-3) with the
  cluster count from Theorem 1 (or the configured override);
* **Data Transmission** — non-CH nodes route each packet through the
  Q-learning relay choice of Algorithm 4; at round end every head
  performs data fusion, uplinks to the BS, and refreshes its own V
  value (Algorithm 1, line 15).

The class is a :class:`~repro.baselines.base.ClusteringProtocol`
strategy; the simulation engine drives it.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import ClusteringProtocol
from ..rl.policies import Policy
from ..simulation.state import NetworkState
from .rewards import RewardModel
from .routing import QRouter
from .selection import ImprovedDEECSelector, SelectionConfig
from .theory import optimal_cluster_count_int

__all__ = ["QLECProtocol"]


class QLECProtocol(ClusteringProtocol):
    """QLEC: improved-DEEC head selection + Q-learning relay choice.

    Parameters
    ----------
    n_clusters:
        Cluster count k.  ``None`` (default) resolves, in order: the
        scenario config's ``n_clusters``, then Theorem 1's k_opt for
        the deployment.
    selection:
        Feature switches for the improved-DEEC selector (the ablation
        benchmarks disable pieces here).
    epsilon:
        Exploration rate for the router; the paper is greedy (0.0).
    learning_rate:
        When set, switches the router to sampled-TD backups
        (extension; ``None`` reproduces the paper's expected backup).
    policy:
        Explicit action-selection policy (overrides ``epsilon``); see
        :mod:`repro.rl.policies` for greedy / epsilon-greedy / softmax.
    """

    name = "qlec"

    def __init__(
        self,
        n_clusters: int | None = None,
        selection: SelectionConfig | None = None,
        epsilon: float = 0.0,
        learning_rate: float | None = None,
        policy: Policy | None = None,
    ) -> None:
        self._n_clusters = n_clusters
        self._selection_cfg = selection if selection is not None else SelectionConfig()
        self._epsilon = epsilon
        self._learning_rate = learning_rate
        self._policy = policy
        self.selector: ImprovedDEECSelector | None = None
        self.router: QRouter | None = None
        self.k: int | None = None

    # ------------------------------------------------------------------
    def resolve_k(self, state: NetworkState) -> int:
        if self._n_clusters is not None:
            return self._n_clusters
        if state.config.n_clusters is not None:
            return state.config.n_clusters
        return optimal_cluster_count_int(
            n_nodes=state.n,
            side=state.config.deployment.side,
            d_to_bs=state.topology.mean_d_to_bs,
            radio=state.config.radio,
        )

    def prepare(self, state: NetworkState) -> None:
        self.k = self.resolve_k(state)
        self.selector = ImprovedDEECSelector(self.k, self._selection_cfg)
        rewards = RewardModel(
            state.config.qlearning,
            state.radio,
            state.config.traffic.packet_bits,
            energy_scale=float(state.ledger.initial.mean()),
        )
        self.router = QRouter(
            state,
            rewards,
            state.config.qlearning,
            epsilon=self._epsilon,
            learning_rate=self._learning_rate,
            policy=self._policy,
        )

    # ------------------------------------------------------------------
    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.selector is not None, "prepare() must run first"
        return self.selector.select(state).heads

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        # Congestion feedback reaches the router through the ACK-driven
        # link estimator (queue drops -> missing ACKs -> lower P), so
        # queue_lengths is deliberately unused: the paper's Algorithm 4
        # conditions only on P, V, energies, and distances.
        assert self.router is not None, "prepare() must run first"
        return self.router.choose(node, heads, rng=state.protocol_rng)

    def choose_relays(
        self,
        state: NetworkState,
        senders: np.ndarray,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> np.ndarray:
        """One slot's relay choices as a single Q-block evaluation;
        exact vectorization of the scalar loop (senders back up only
        their own V entries)."""
        assert self.router is not None, "prepare() must run first"
        return self.router.choose_many(senders, heads, rng=state.protocol_rng)

    def on_round_end(self, state: NetworkState, heads: np.ndarray) -> None:
        assert self.router is not None
        heads = np.asarray(heads, dtype=np.intp)
        self.router.ch_backup_many(heads[state.ledger.alive[heads]])

    # ------------------------------------------------------------------
    @property
    def v_update_count(self) -> int:
        """Total V-entry updates so far (the X of the O(kX) bound)."""
        return 0 if self.router is None else self.router.v.update_count
