"""QLEC core: the paper's primary contribution."""

from .qlec import QLECProtocol
from .rewards import RewardModel
from .routing import QRouter
from .selection import (
    ImprovedDEECSelector,
    SelectionConfig,
    SelectionResult,
    energy_threshold,
    rotation_threshold,
)
from .theory import (
    cluster_radius,
    expected_sq_distance_to_ch,
    mean_distance_to_point,
    optimal_cluster_count,
    optimal_cluster_count_int,
    round_energy,
    round_energy_curve,
)

__all__ = [
    "ImprovedDEECSelector",
    "QLECProtocol",
    "QRouter",
    "RewardModel",
    "SelectionConfig",
    "SelectionResult",
    "cluster_radius",
    "energy_threshold",
    "expected_sq_distance_to_ch",
    "mean_distance_to_point",
    "optimal_cluster_count",
    "optimal_cluster_count_int",
    "rotation_threshold",
    "round_energy",
    "round_energy_curve",
]
