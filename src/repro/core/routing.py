"""Q-learning packet routing (paper §4.2, Algorithm 4).

For each non-cluster-head node ``b_i`` the state space is
``S(b_i) = {b_i, h_BS} ∪ H`` and each action ``a_j`` forwards the
packet to head ``h_j`` (or directly to the BS).  Algorithm 4 is a
*model-based expected backup*: using the ACK-estimated link
probabilities ``P^{a_j}_{b_i h_j}`` the node computes, for every
action,

    Q*(b_i, a_j) = R_t + gamma * (P * V*(h_j) + (1 - P) * V*(b_i))

then updates ``V*(b_i) = max_j Q*`` and forwards to the argmax head.
Nodes never need to *take* an action to evaluate it — exactly the
paper's point about Q-learning with a known local model.

Cluster heads run the same backup for their single BS action at round
end (Algorithm 1, line 15); the BS penalty ``l`` of Eq. (19) does not
apply to heads, whose designated job is the BS uplink.

Two extensions beyond the paper are provided for the ablation study:
``epsilon``-greedy exploration, and a *sampled* TD backup
(``learning_rate`` is not None) replacing the expected one.
"""

from __future__ import annotations

import numpy as np

from ..config import QLearningConfig
from ..rl.policies import EpsilonGreedyPolicy, GreedyPolicy, Policy
from ..rl.qtable import VTable
from ..simulation.state import NetworkState
from .rewards import RewardModel

__all__ = ["QRouter"]


class QRouter:
    """Per-run routing brain shared by all nodes (the V "matrix").

    Parameters
    ----------
    state:
        The network this router observes (link estimates, residual
        energies, geometry).
    reward_model:
        Evaluator of Eqs. (16)-(20).
    qconfig:
        Discount and convergence parameters.
    epsilon:
        Exploration rate for relay choice; the paper's algorithm is
        purely greedy (epsilon = 0).
    learning_rate:
        When given, Q backups become sampled TD updates with this step
        size instead of full expected backups (ablation variant).
    """

    def __init__(
        self,
        state: NetworkState,
        reward_model: RewardModel,
        qconfig: QLearningConfig,
        epsilon: float = 0.0,
        learning_rate: float | None = None,
        policy: Policy | None = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        if learning_rate is not None and not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        self.state = state
        self.rewards = reward_model
        self.cfg = qconfig
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        if policy is not None:
            self.policy: Policy = policy
        elif epsilon > 0.0:
            self.policy = EpsilonGreedyPolicy(epsilon)
        else:
            self.policy = GreedyPolicy()
        self.v = VTable(state.n)
        #: Kernel backend for the batched Q block (shared with every
        #: substrate of the state; bit-identical across backends).
        self.kernels = state.kernels
        #: Number of Q evaluations performed (the per-call k+1 of
        #: Lemma 3); together with ``v.update_count`` this measures X.
        self.q_evaluations = 0

    # ------------------------------------------------------------------
    def action_targets(self, heads: np.ndarray) -> np.ndarray:
        """The action set A(b_i): every head plus the direct-BS action."""
        heads = np.asarray(heads, dtype=np.intp)
        return np.concatenate([heads, [self.state.bs_index]])

    def q_values(self, node: int, heads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized Algorithm 4, line 1: Q*(b_i, a_j) for all actions.

        Returns ``(q, targets)`` where ``targets[j]`` is the relay
        reached by action j (the last entry is the base station).
        """
        st = self.state
        targets = self.action_targets(heads)
        distances = st.distances_from(node, targets)
        p = st.link_estimator.row(node)[targets]
        # Residual energy of each candidate; the BS is mains-powered —
        # its x(.) contribution is pinned to 0 so Eq. (19)'s penalty l
        # alone governs the direct-uplink tradeoff.
        is_bs = targets == st.bs_index
        e_dst = np.where(
            is_bs, 0.0, st.ledger.residual[np.where(is_bs, 0, targets)]
        )
        r_t = self.rewards.expected_reward(
            p, float(st.ledger.residual[node]), e_dst, distances, is_bs
        )
        v_targets = self.v.get_many(targets)
        q = r_t + self.cfg.gamma * (p * v_targets + (1.0 - p) * self.v[node])
        self.q_evaluations += q.size
        return q, targets

    # ------------------------------------------------------------------
    def choose(self, node: int, heads: np.ndarray,
               rng: np.random.Generator | None = None) -> int:
        """Algorithm 4: back up V(b_i) and return the chosen relay."""
        heads = np.asarray(heads, dtype=np.intp)
        if heads.size == 0:
            return self.state.bs_index
        q, targets = self.q_values(node, heads)
        v_new = float(q.max())
        if self.learning_rate is None:
            self.v[node] = v_new
        else:
            old = self.v[node]
            self.v[node] = old + self.learning_rate * (v_new - old)
        return int(targets[self.policy.select(q, rng)])

    def _q_block(
        self, nodes: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched Q block + fused row max on the kernel backend.

        Returns ``(q, v_new, targets)``.  Row i of ``q`` is bitwise
        identical to ``q_values(nodes[i], heads)[0]``: the distances,
        the transcendental cost ``y`` (the radio's ``d**4``) and the
        residual normalisations are computed by the same shared numpy
        code as the scalar path, and the backend's ``expected_q``
        combine preserves the reference's per-element expression tree
        exactly (see :mod:`repro.kernels.base`).
        """
        st = self.state
        targets = self.action_targets(heads)
        nodes = np.asarray(nodes, dtype=np.intp)
        distances = st.distances_matrix(nodes, targets)
        p = np.asarray(
            st.link_estimator.estimates[np.ix_(nodes, targets)],
            dtype=np.float64,
        )
        if np.any((p < 0.0) | (p > 1.0)):
            raise ValueError("success probabilities must lie in [0, 1]")
        is_bs = targets == st.bs_index
        e_dst = np.where(
            is_bs, 0.0, st.ledger.residual[np.where(is_bs, 0, targets)]
        )
        c = self.rewards.cfg
        q, v_new = self.kernels.expected_q(
            p,
            self.rewards.y(distances),
            self.rewards.x(st.ledger.residual[nodes]),
            self.rewards.x(e_dst),
            is_bs,
            self.v.get_many(targets),
            self.v.get_many(nodes),
            g=c.g,
            alpha1=c.alpha1,
            alpha2=c.alpha2,
            beta1=c.beta1,
            beta2=c.beta2,
            bs_penalty=c.bs_penalty,
            gamma=self.cfg.gamma,
        )
        self.q_evaluations += q.size
        return q, v_new, targets

    def q_values_many(
        self, nodes: np.ndarray, heads: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`q_values`: the ``(len(nodes), k+1)`` Q block.

        Row i is bitwise identical to ``q_values(nodes[i], heads)[0]``:
        every term is an elementwise op evaluated in the scalar path's
        order, so evaluating senders together (on any kernel backend)
        changes nothing but wall-clock.
        """
        q, _, targets = self._q_block(nodes, heads)
        return q, targets

    def choose_many(
        self,
        nodes: np.ndarray,
        heads: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Batched Algorithm 4 over one slot's senders.

        Valid because senders are non-heads whose backups only write
        their *own* V entry: within a slot the updates are independent,
        so the batch equals the sequential sorted-order loop (the
        engine's canonical order) exactly — including the policy's
        tie-break draws, consumed in row order.
        """
        nodes = np.asarray(nodes, dtype=np.intp)
        heads = np.asarray(heads, dtype=np.intp)
        if heads.size == 0:
            return np.full(nodes.size, self.state.bs_index, dtype=np.intp)
        q, v_new, targets = self._q_block(nodes, heads)
        if self.learning_rate is None:
            self.v.set_many(nodes, v_new)
        else:
            old = self.v.get_many(nodes)
            self.v.set_many(nodes, old + self.learning_rate * (v_new - old))
        return targets[self.policy.select_batch(q, rng)]

    def ch_backup(self, head: int) -> None:
        """Algorithm 1, line 15: a head refreshes its V from the BS
        uplink action.

        No BS penalty applies (the uplink is the head's designated
        job), and the cost term prices the *compressed* per-packet
        share of the aggregate — the "processed data" the head actually
        transmits after fusion.
        """
        st = self.state
        d = st.distance(head, st.bs_index)
        p = st.link_estimator.get(head, st.bs_index)
        compressed = st.config.compression_ratio * st.config.traffic.packet_bits
        r_t = float(
            self.rewards.expected_reward(
                p, float(st.ledger.residual[head]), 0.0, d,
                is_bs=None, bits=compressed,
            )
        )
        q = r_t + self.cfg.gamma * (p * self.v[st.bs_index] + (1.0 - p) * self.v[head])
        self.v[head] = q
        self.q_evaluations += 1

    def ch_backup_many(self, heads: np.ndarray) -> None:
        """Batched :meth:`ch_backup` over one round's live heads.

        Heads write only their own V entries and read only the BS's
        (never another head's), so the batch equals the sequential loop
        exactly — every term is the same elementwise arithmetic.
        """
        heads = np.asarray(heads, dtype=np.intp)
        if heads.size == 0:
            return
        st = self.state
        d = st.topology.d_to_bs[heads]
        p = st.link_estimator.estimates[heads, st.bs_index]
        compressed = st.config.compression_ratio * st.config.traffic.packet_bits
        r_t = self.rewards.expected_reward(
            p, st.ledger.residual[heads], 0.0, d, is_bs=None, bits=compressed
        )
        q = r_t + self.cfg.gamma * (
            p * self.v[st.bs_index] + (1.0 - p) * self.v.get_many(heads)
        )
        self.v.set_many(heads, q)
        self.q_evaluations += heads.size

    # ------------------------------------------------------------------
    def relax(self, node_indices: np.ndarray, heads: np.ndarray) -> int:
        """Iterate expected backups over ``node_indices`` until the V
        table converges (paper §3.3: "update V values ... so that V can
        converge very fast").

        Returns the number of full sweeps used.  The total single-entry
        update count is available via ``self.v.update_count`` — the X of
        Lemma 3's O(kX) bound.
        """
        node_indices = np.asarray(node_indices, dtype=np.intp)
        heads = np.asarray(heads, dtype=np.intp)
        if node_indices.size == 0 or heads.size == 0:
            return 0
        for sweep in range(1, self.cfg.max_backups + 1):
            delta = 0.0
            for node in node_indices:
                q, _ = self.q_values(int(node), heads)
                v_new = float(q.max())
                delta = max(delta, abs(v_new - self.v[int(node)]))
                self.v[int(node)] = v_new
            if delta < self.cfg.tol:
                return sweep
        return self.cfg.max_backups
