"""Fuzzy C-Means clustering and the FCM-based baseline (Wang et al. [14]).

The paper compares against "a newly proposed FCM-based algorithm"
(Wang, Qin & Liu, WCNC 2018) which it summarizes as: FCM membership
clustering that "employs the concept of maximizing residual energy when
choosing cluster heads", a division of the WSN "into different
hierarchies based on the distance to the BS", and "a dynamic multi-hop
routing algorithm".  §5.2 attributes its packet losses to the fact that
"it takes multi-hops to transmit a packet to the BS under this model".

Reproduction:

* from-scratch fuzzy C-means (fuzzifier m, row-stochastic membership
  matrix U, alternating centroid/membership updates);
* per cluster, the head is the member maximizing *residual energy*
  (membership-weighted, so far-away high-energy nodes don't hijack a
  cluster);
* hierarchy levels: equal-width rings of distance-to-BS; a head at
  level L uplinks through the nearest head at a lower level (multi-hop
  chain toward the BS), paying per-hop energy and per-hop loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.topology import pairwise_distances
from ..routing.hierarchy import distance_levels, hierarchy_descent
from ..simulation.state import NetworkState
from .base import ClusteringProtocol, NearestHeadRelayMixin

__all__ = ["FCMResult", "fuzzy_c_means", "FCMProtocol"]


@dataclass(frozen=True)
class FCMResult:
    """Outcome of one fuzzy C-means run."""

    centroids: np.ndarray
    membership: np.ndarray  # (n, k), rows sum to 1
    objective: float
    iterations: int
    converged: bool

    def hard_labels(self) -> np.ndarray:
        return self.membership.argmax(axis=1)


def fuzzy_c_means(
    points: np.ndarray,
    k: int,
    m: float = 2.0,
    rng: np.random.Generator | int | None = None,
    max_iter: int = 200,
    tol: float = 1e-6,
) -> FCMResult:
    """Bezdek's fuzzy C-means.

    Minimizes ``J_m = sum_ij u_ij^m ||x_i - c_j||^2`` subject to
    row-stochastic memberships, by alternating the closed-form centroid
    and membership updates.

    Parameters
    ----------
    m:
        Fuzzifier, > 1 (2.0 is the standard choice).
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if points.ndim != 2 or n == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n_points")
    if m <= 1.0:
        raise ValueError("fuzzifier m must exceed 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    # Random row-stochastic initial membership.
    u = gen.random((n, k)) + 1e-9
    u /= u.sum(axis=1, keepdims=True)

    exponent = 2.0 / (m - 1.0)
    objective = np.inf
    centroids = np.zeros((k, points.shape[1]))
    for it in range(1, max_iter + 1):
        um = u ** m
        centroids = (um.T @ points) / um.sum(axis=0)[:, None]
        d = pairwise_distances(points, centroids)
        d = np.maximum(d, 1e-12)
        # u_ij = d_ij^(-2/(m-1)) / sum_l d_il^(-2/(m-1)) — the O(nk)
        # form of the classical "1 / sum (d_ij/d_il)^e" update (the
        # ratio-tensor form is O(nk^2) memory and infeasible at the
        # 2896-node / k=272 dataset scale).
        u_new = d ** (-exponent)
        u_new /= u_new.sum(axis=1, keepdims=True)
        new_objective = float(((u_new ** m) * d ** 2).sum())
        shift = float(np.abs(u_new - u).max())
        u = u_new
        if shift < tol:
            return FCMResult(centroids, u, new_objective, it, True)
        objective = new_objective
    return FCMResult(centroids, u, objective, max_iter, False)


class FCMProtocol(NearestHeadRelayMixin, ClusteringProtocol):
    """FCM-based hierarchical baseline (reproducing ref. [14])."""

    name = "fcm"

    def __init__(
        self,
        n_clusters: int | None = None,
        fuzzifier: float = 2.0,
        n_levels: int = 3,
    ) -> None:
        if n_levels < 1:
            raise ValueError("n_levels must be >= 1")
        self._n_clusters = n_clusters
        self.fuzzifier = fuzzifier
        self.n_levels = n_levels
        self.k: int | None = None
        self._labels: np.ndarray | None = None
        self._heads: np.ndarray | None = None

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(np.sqrt(state.n))))
        )
        self._labels = None
        self._heads = None

    # ------------------------------------------------------------------
    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.k is not None, "prepare() must run first"
        alive = state.alive_indices()
        if alive.size == 0:
            return np.empty(0, dtype=np.intp)
        k = min(self.k, alive.size)
        result = fuzzy_c_means(
            state.nodes.positions[alive], k, self.fuzzifier, rng=state.protocol_rng
        )
        labels = result.hard_labels()
        # Head selection: membership-weighted residual energy.  This is
        # the scheme's energy-maximizing rule; pure argmax-energy would
        # let a barely-member node head a distant cluster.
        residual = state.ledger.residual[alive]
        heads = []
        for j in range(k):
            mask = labels == j
            if not mask.any():
                continue
            score = result.membership[mask, j] * residual[mask]
            heads.append(int(alive[mask][score.argmax()]))
        self._heads = np.unique(np.asarray(heads, dtype=np.intp))
        return self._heads

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        # Members join the nearest head (hard assignment of the fuzzy
        # partition at the sensor level).
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])

    # ------------------------------------------------------------------
    def _levels(self, state: NetworkState, heads: np.ndarray) -> np.ndarray:
        """Equal-width distance-to-BS rings (delegates to the routing
        substrate's shared hierarchy primitive)."""
        return distance_levels(state, heads, self.n_levels)

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        """Greedy descent through the hierarchy via the shared routing
        primitive: hop to the nearest head in a strictly lower level,
        repeating until level 0 (whose heads talk to the BS directly).
        Bit-identical to the pre-substrate inline implementation."""
        heads = np.asarray(heads, dtype=np.intp)
        if heads.size <= 1:
            return []
        return hierarchy_descent(
            state, head, heads, self._levels(state, heads)
        )
