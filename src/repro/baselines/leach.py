"""LEACH baseline (Heinzelman et al., 2000) — paper §2's classic.

"LEACH is a self-organizing, adaptive clustering protocol that uses
randomization-based probability to distribute the energy load equally"
— but, as the paper notes, it "does not take residual energy of sensors
into consideration and may lead to unevenly distributed cluster heads".

Election rule: node n elects itself head in round r with threshold

    T(n) = p / (1 - p * (r mod 1/p))    if n in G,   else 0

where ``p = k/N`` and G is the set of nodes that have not served as
head in the last ``1/p`` rounds.  Members join the nearest head.
LEACH is not part of the paper's Fig. 3 trio; it anchors the ablation
study (QLEC minus every improvement minus energy awareness).
"""

from __future__ import annotations

import numpy as np

from ..simulation.state import NetworkState
from .base import ClusteringProtocol, NearestHeadRelayMixin

__all__ = ["LEACHProtocol"]


class LEACHProtocol(NearestHeadRelayMixin, ClusteringProtocol):
    """Classic LEACH: uniform rotation probability, no energy term."""

    name = "leach"

    def __init__(self, n_clusters: int | None = None) -> None:
        self._n_clusters = n_clusters
        self.k: int | None = None
        self.p: float | None = None

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(0.05 * state.n)))
        )
        self.p = min(self.k / state.n, 0.999)

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.p is not None, "prepare() must run first"
        p = self.p
        epoch = 1.0 / p
        r = state.round_index
        eligible = state.ledger.alive & (
            (r - state.last_ch_round) >= epoch
        )
        phase = r % int(np.ceil(epoch))
        denom = 1.0 - p * phase
        threshold = p / denom if denom > 1e-12 else 1.0
        threshold = min(threshold, 1.0)
        z = state.protocol_rng.random(state.n)
        heads = np.flatnonzero(eligible & (z < threshold))
        if heads.size == 0:
            # Start-of-epoch pathologies: promote one random alive node
            # so the network is never headless (a standard LEACH fix).
            alive = state.alive_indices()
            if alive.size:
                heads = np.asarray(
                    [int(state.protocol_rng.choice(alive))], dtype=np.intp
                )
        return heads

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])
