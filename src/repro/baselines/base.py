"""Protocol strategy interface.

Every clustering/routing algorithm in the comparison — QLEC, the
FCM-based scheme, k-means, LEACH, classic DEEC, direct transmission —
implements this interface.  The simulation engine owns time, energy,
traffic, and the channel; a protocol only answers two questions each
round:

1. *who are the cluster heads?*  (``select_cluster_heads``)
2. *which head should node i relay through right now?*  (``choose_relay``)

plus optional feedback hooks so learning protocols can observe ACKs
and end-of-round events.
"""

from __future__ import annotations

import abc

import numpy as np

from ..simulation.state import NetworkState

__all__ = ["ClusteringProtocol", "NearestHeadRelayMixin"]


class ClusteringProtocol(abc.ABC):
    """Abstract base for round-based clustering protocols.

    Subclasses must be stateless across *runs* (a fresh instance per
    simulation) but may keep per-run learning state (QLEC's V table,
    LEACH's rotation history, ...).
    """

    #: Human-readable name used in result tables.
    name: str = "abstract"

    def prepare(self, state: NetworkState) -> None:
        """Called once before round 0; allocate per-run state here."""

    @abc.abstractmethod
    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        """Return the indices of this round's cluster heads.

        Must only return alive nodes.  May return an empty array, in
        which case the engine falls back to direct-to-BS transmission
        for every node that round.
        """

    @abc.abstractmethod
    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        """Pick the relay for one packet from ``node``.

        Parameters
        ----------
        node:
            Source node index.
        heads:
            This round's cluster heads (non-empty).
        queue_lengths:
            Current backlog at each head, aligned with ``heads``
            (observable congestion signal).

        Returns
        -------
        int
            Either an element of ``heads`` or ``state.bs_index`` for a
            direct base-station uplink.
        """

    def choose_relays(
        self,
        state: NetworkState,
        senders: np.ndarray,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`choose_relay`: one relay target per sender.

        The engine's batched slot kernel calls this once per slot with
        every sender that has a head-of-line packet, in canonical
        (ascending index) order.  The default falls back to the scalar
        method sender by sender — semantically identical, and exactly
        what sequentially-coupled protocols (QELAR's hop-by-hop V
        updates) need.  Vectorizable protocols override it.

        ``queue_lengths`` is the backlog snapshot taken at the start of
        the slot, aligned with ``heads``.
        """
        senders = np.asarray(senders, dtype=np.intp)
        return np.fromiter(
            (
                self.choose_relay(state, int(node), heads, queue_lengths)
                for node in senders
            ),
            dtype=np.intp,
            count=senders.size,
        )

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        """Relay chain a head's aggregated uplink traverses before the
        base station.

        The default (and QLEC's, per Algorithm 1 line 14: heads
        "transmit processed data directly to BS") is the empty chain.
        Hierarchical schemes (the FCM baseline) return intermediate
        cluster heads, nearest-to-BS last.
        """
        return []

    # ------------------------------------------------------------------
    # optional feedback hooks
    # ------------------------------------------------------------------
    def on_transmission(
        self, state: NetworkState, node: int, target: int, success: bool
    ) -> None:
        """ACK/timeout feedback for a single transmission attempt."""

    def on_transmissions(
        self,
        state: NetworkState,
        nodes: np.ndarray,
        targets: np.ndarray,
        successes: np.ndarray,
    ) -> None:
        """One slot's ACK feedback as a batch (canonical sender order).

        Dispatches to the scalar hook only when a subclass actually
        overrides it, so protocols without transmission feedback pay
        nothing per slot.
        """
        if type(self).on_transmission is ClusteringProtocol.on_transmission:
            return
        for node, target, ok in zip(nodes, targets, successes):
            self.on_transmission(state, int(node), int(target), bool(ok))

    def on_round_end(self, state: NetworkState, heads: np.ndarray) -> None:
        """Called after the CH->BS uplink completes each round."""

    # ------------------------------------------------------------------
    def validate_heads(self, state: NetworkState, heads: np.ndarray) -> np.ndarray:
        """Utility: keep only alive, in-range, unique head indices."""
        heads = np.unique(np.asarray(heads, dtype=np.intp))
        if heads.size == 0:
            return heads
        if heads.min() < 0 or heads.max() >= state.n:
            raise ValueError("cluster-head index out of range")
        return heads[state.ledger.alive[heads]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NearestHeadRelayMixin:
    """Vectorized ``choose_relays`` for join-the-nearest-head protocols
    (LEACH, DEEC, HEED, TL-LEACH, FCM's member stage ...).

    Computes the full sender x head distance block in one shot and
    argmins per row — the same sqrt pipeline as
    :meth:`NetworkState.distances_from`, so ties resolve to the same
    head index as the scalar rule.
    """

    def choose_relays(
        self,
        state: NetworkState,
        senders: np.ndarray,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> np.ndarray:
        heads = np.asarray(heads, dtype=np.intp)
        d = state.distances_matrix(senders, heads)
        return heads[d.argmin(axis=1)]
