"""Protocol strategy interface.

Every clustering/routing algorithm in the comparison — QLEC, the
FCM-based scheme, k-means, LEACH, classic DEEC, direct transmission —
implements this interface.  The simulation engine owns time, energy,
traffic, and the channel; a protocol only answers two questions each
round:

1. *who are the cluster heads?*  (``select_cluster_heads``)
2. *which head should node i relay through right now?*  (``choose_relay``)

plus optional feedback hooks so learning protocols can observe ACKs
and end-of-round events.
"""

from __future__ import annotations

import abc

import numpy as np

from ..simulation.state import NetworkState

__all__ = ["ClusteringProtocol"]


class ClusteringProtocol(abc.ABC):
    """Abstract base for round-based clustering protocols.

    Subclasses must be stateless across *runs* (a fresh instance per
    simulation) but may keep per-run learning state (QLEC's V table,
    LEACH's rotation history, ...).
    """

    #: Human-readable name used in result tables.
    name: str = "abstract"

    def prepare(self, state: NetworkState) -> None:
        """Called once before round 0; allocate per-run state here."""

    @abc.abstractmethod
    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        """Return the indices of this round's cluster heads.

        Must only return alive nodes.  May return an empty array, in
        which case the engine falls back to direct-to-BS transmission
        for every node that round.
        """

    @abc.abstractmethod
    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        """Pick the relay for one packet from ``node``.

        Parameters
        ----------
        node:
            Source node index.
        heads:
            This round's cluster heads (non-empty).
        queue_lengths:
            Current backlog at each head, aligned with ``heads``
            (observable congestion signal).

        Returns
        -------
        int
            Either an element of ``heads`` or ``state.bs_index`` for a
            direct base-station uplink.
        """

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        """Relay chain a head's aggregated uplink traverses before the
        base station.

        The default (and QLEC's, per Algorithm 1 line 14: heads
        "transmit processed data directly to BS") is the empty chain.
        Hierarchical schemes (the FCM baseline) return intermediate
        cluster heads, nearest-to-BS last.
        """
        return []

    # ------------------------------------------------------------------
    # optional feedback hooks
    # ------------------------------------------------------------------
    def on_transmission(
        self, state: NetworkState, node: int, target: int, success: bool
    ) -> None:
        """ACK/timeout feedback for a single transmission attempt."""

    def on_round_end(self, state: NetworkState, heads: np.ndarray) -> None:
        """Called after the CH->BS uplink completes each round."""

    # ------------------------------------------------------------------
    def validate_heads(self, state: NetworkState, heads: np.ndarray) -> np.ndarray:
        """Utility: keep only alive, in-range, unique head indices."""
        heads = np.unique(np.asarray(heads, dtype=np.intp))
        if heads.size == 0:
            return heads
        if heads.min() < 0 or heads.max() >= state.n:
            raise ValueError("cluster-head index out of range")
        return heads[state.ledger.alive[heads]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
