"""QELAR-style hop-by-hop Q-routing baseline (Hu & Fei 2010, ref. [6]).

QELAR is the Q-learning routing protocol the paper builds its reward
design on: *no clustering at all* — every node forwards packets to a
neighbour within radio range, learning per-neighbour values so routes
maximise residual energy and balance consumption while drifting toward
the sink.  The paper's Eq. (17)-(20) rewards are QELAR's, so the
implementation reuses :class:`~repro.core.rewards.RewardModel` with a
hop-by-hop action set.

Simplifications versus the original (documented deviations):

* neighbourhood = nodes within ``range_factor * d0`` (static per
  deployment snapshot; recomputed after mobility steps);
* greedy forwarding over Q with a progress guard: only neighbours
  strictly closer to the BS than the sender are candidates (QELAR's
  depth heuristic for underwater columns), with a direct-BS fallback
  when the BS itself is within range or no candidate remains;
* the V backup is the same expected-model update as QLEC's router,
  over the node's candidate set.

The engine runs it through the store-and-forward path (the protocol
sets ``hop_by_hop = True`` and never elects heads).
"""

from __future__ import annotations

import numpy as np

from ..core.rewards import RewardModel
from ..rl.qtable import VTable
from ..simulation.state import NetworkState
from .base import ClusteringProtocol

__all__ = ["QELARProtocol"]


class QELARProtocol(ClusteringProtocol):
    """Flat multi-hop Q-routing toward the base station."""

    name = "qelar"
    #: Engine switch: relay choices are neighbours, not cluster heads.
    hop_by_hop = True

    def __init__(self, range_factor: float = 1.2, max_candidates: int = 8) -> None:
        if range_factor <= 0.0:
            raise ValueError("range_factor must be positive")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.range_factor = range_factor
        self.max_candidates = max_candidates
        self.rewards: RewardModel | None = None
        self.v: VTable | None = None
        self._radio_range: float = 0.0
        #: node -> candidate relay indices (progress-filtered).
        self._candidates: list[np.ndarray] | None = None
        self._positions_token: int | None = None

    # ------------------------------------------------------------------
    def prepare(self, state: NetworkState) -> None:
        self.rewards = RewardModel(
            state.config.qlearning,
            state.radio,
            state.config.traffic.packet_bits,
            energy_scale=float(state.ledger.initial.mean()),
        )
        self.v = VTable(state.n)
        self._radio_range = self.range_factor * state.radio.d0
        self._rebuild_neighbourhoods(state)

    def _rebuild_neighbourhoods(self, state: NetworkState) -> None:
        """Progress-filtered candidate sets from the current geometry."""
        d_bs = state.topology.d_to_bs
        full = state.topology.full_matrix()
        candidates: list[np.ndarray] = []
        for i in range(state.n):
            in_range = (full[i] <= self._radio_range) & (np.arange(state.n) != i)
            progress = d_bs < d_bs[i]  # strictly closer to the sink
            cand = np.flatnonzero(in_range & progress)
            if cand.size > self.max_candidates:
                order = np.argsort(full[i, cand])
                cand = cand[order[: self.max_candidates]]
            candidates.append(cand)
        self._candidates = candidates
        self._positions_token = id(state.nodes)

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        # Flat routing: no heads, ever.  Mobility may have replaced the
        # node array since the last round; refresh the neighbourhoods.
        if self._positions_token != id(state.nodes):
            self._rebuild_neighbourhoods(state)
        return np.empty(0, dtype=np.intp)

    # ------------------------------------------------------------------
    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        assert self.v is not None and self.rewards is not None
        assert self._candidates is not None
        # Within sink range: deliver directly (the terminal hop).
        if state.topology.d_to_bs[node] <= self._radio_range:
            return state.bs_index
        cand = self._candidates[node]
        cand = cand[state.ledger.alive[cand]]
        if cand.size == 0:
            # Void region: last-resort long shot at the sink.
            return state.bs_index
        distances = state.distances_from(node, cand)
        p = state.link_estimator.estimates[node, cand]
        r_t = self.rewards.expected_reward(
            p,
            float(state.ledger.residual[node]),
            state.ledger.residual[cand],
            distances,
        )
        gamma = state.config.qlearning.gamma
        q = r_t + gamma * (
            p * self.v.get_many(cand) + (1.0 - p) * self.v[node]
        )
        self.v[node] = float(q.max())
        best = np.flatnonzero(q == q.max())
        pick = best[0] if best.size == 1 else state.protocol_rng.choice(best)
        return int(cand[pick])

    # ------------------------------------------------------------------
    def on_round_end(self, state: NetworkState, heads: np.ndarray) -> None:
        """Nodes within sink range back their value up from the BS —
        the terminal condition that anchors the whole V field."""
        assert self.v is not None and self.rewards is not None
        near = np.flatnonzero(
            (state.topology.d_to_bs <= self._radio_range) & state.ledger.alive
        )
        gamma = state.config.qlearning.gamma
        for i in near:
            d = float(state.topology.d_to_bs[i])
            p = state.link_estimator.get(int(i), state.bs_index)
            r_t = float(
                self.rewards.expected_reward(
                    p, float(state.ledger.residual[i]), 0.0, d
                )
            )
            self.v[int(i)] = r_t + gamma * (1.0 - p) * self.v[int(i)]
