"""Classic DEEC baseline (Qing, Zhu & Wang, 2006) — paper §3.1 before
the improvements.

DEEC weights the LEACH rotation by residual energy: ``p_i = p_opt *
E_i(r) / E_bar(r)`` (Eq. 1) with the network average estimated by the
linear-decay model of Eq. (2).  It has *neither* of QLEC's additions —
no minimum-energy threshold (Eq. 4) and no HELLO-based redundancy
reduction — and members simply join the nearest head.

Implemented by instantiating the shared
:class:`~repro.core.selection.ImprovedDEECSelector` with both
improvements switched off, which keeps the election math in exactly one
place and makes the QLEC-vs-DEEC ablation a pure feature-flag diff.
"""

from __future__ import annotations

import numpy as np

from ..core.selection import ImprovedDEECSelector, SelectionConfig
from ..simulation.state import NetworkState
from .base import ClusteringProtocol, NearestHeadRelayMixin

__all__ = ["DEECProtocol"]


class DEECProtocol(NearestHeadRelayMixin, ClusteringProtocol):
    """Classic DEEC: energy-weighted rotation, nearest-head joining."""

    name = "deec"

    def __init__(self, n_clusters: int | None = None) -> None:
        self._n_clusters = n_clusters
        self.selector: ImprovedDEECSelector | None = None
        self.k: int | None = None

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(0.05 * state.n)))
        )
        self.selector = ImprovedDEECSelector(
            self.k,
            SelectionConfig(
                use_energy_threshold=False,
                use_redundancy_reduction=False,
                use_rotation=True,
                fallback_promotion=True,
                energy_estimate="linear",  # Eq. (2), the 2006 original
            ),
        )

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.selector is not None, "prepare() must run first"
        return self.selector.select(state).heads

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])
