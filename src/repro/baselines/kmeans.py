"""From-scratch k-means clustering and the k-means baseline protocol.

The paper's Fig. 3 comparison includes "classic k-means clustering":
nodes are partitioned purely by geometry ("k-means clusters nodes based
on the distance between them"), the node nearest each centroid serves
as cluster head, and members always relay through their own (nearest)
head.  No energy awareness anywhere — which is exactly why it loses on
lifespan.

The clustering kernel is an independent, reusable implementation of
Lloyd's algorithm with k-means++ seeding (Definition 2 of the paper is
the k-means problem; Kanungo et al. [8] is the citation).  Fully
vectorized: the assignment step is one distance-matrix evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.topology import pairwise_distances
from ..simulation.state import NetworkState
from .base import ClusteringProtocol

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans", "KMeansProtocol"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one Lloyd run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (D^2 sampling).

    Greatly reduces the chance Lloyd's converges to a poor local
    optimum; with a fixed generator the seeding is deterministic.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n_points")
    centroids = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    d2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            # All remaining points coincide with a centroid; any choice works.
            centroids[j:] = points[rng.integers(n, size=k - j)]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[j] = points[choice]
        d2 = np.minimum(d2, ((points - centroids[j]) ** 2).sum(axis=1))
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | int | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
    init: np.ndarray | None = None,
) -> KMeansResult:
    """Lloyd's algorithm.

    Parameters
    ----------
    points:
        ``(n, d)`` data.
    k:
        Cluster count, ``1 <= k <= n``.
    init:
        Optional explicit initial centroids (overrides k-means++).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    centroids = (
        np.asarray(init, dtype=np.float64).copy()
        if init is not None
        else kmeans_plus_plus_init(points, k, gen)
    )
    if centroids.shape != (k, points.shape[1]):
        raise ValueError("init must have shape (k, d)")

    labels = np.zeros(points.shape[0], dtype=np.intp)
    inertia = np.inf
    for it in range(1, max_iter + 1):
        # Assignment step (one vectorized distance evaluation).
        d2 = (
            (points ** 2).sum(axis=1)[:, None]
            + (centroids ** 2).sum(axis=1)[None, :]
            - 2.0 * points @ centroids.T
        )
        np.maximum(d2, 0.0, out=d2)
        labels = d2.argmin(axis=1)
        new_inertia = float(d2[np.arange(points.shape[0]), labels].sum())
        # Update step; empty clusters are reseeded to the farthest point.
        new_centroids = centroids.copy()
        for j in range(k):
            mask = labels == j
            if mask.any():
                new_centroids[j] = points[mask].mean(axis=0)
            else:
                far = int(d2.min(axis=1).argmax())
                new_centroids[j] = points[far]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tol:
            return KMeansResult(centroids, labels, new_inertia, it, True)
        inertia = new_inertia
    return KMeansResult(centroids, labels, inertia, max_iter, False)


class KMeansProtocol(ClusteringProtocol):
    """Classic k-means baseline: geometry only, no energy awareness.

    Parameters
    ----------
    recluster_every:
        ``None`` (default) reproduces the *classic static* scheme the
        paper compares against: clusters and heads are computed once at
        deployment and never rotated, so heads drain, die, and strand
        their members (who fall back to direct-BS uplinks — the
        energy-wasting behaviour clustering was meant to remove).  An
        integer re-runs Lloyd's over the alive population every that
        many rounds — a much stronger adaptive variant used in the
        ablation benches.
    """

    name = "kmeans"

    def __init__(
        self, n_clusters: int | None = None, recluster_every: int | None = None
    ) -> None:
        if recluster_every is not None and recluster_every < 1:
            raise ValueError("recluster_every must be >= 1 or None")
        self._n_clusters = n_clusters
        self.recluster_every = recluster_every
        self._cached_heads: np.ndarray | None = None
        self._home_head: np.ndarray | None = None
        self.k: int | None = None

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(np.sqrt(state.n))))
        )
        self._cached_heads = None
        self._home_head = None

    def _cluster(self, state: NetworkState) -> np.ndarray:
        alive = state.alive_indices()
        if alive.size == 0:
            return np.empty(0, dtype=np.intp)
        k = min(self.k, alive.size)
        result = kmeans(state.nodes.positions[alive], k, rng=state.protocol_rng)
        # Head = the alive node nearest each centroid (a centroid is a
        # virtual point; some sensor must do the job).
        d = pairwise_distances(result.centroids, state.nodes.positions[alive])
        heads = np.unique(alive[d.argmin(axis=1)])
        # Fixed membership: every node joins its nearest head.
        d_all = pairwise_distances(
            state.nodes.positions, state.nodes.positions[heads]
        )
        self._home_head = heads[d_all.argmin(axis=1)]
        self._cached_heads = heads
        return heads

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.k is not None, "prepare() must run first"
        if self._cached_heads is None:
            return self._cluster(state)
        if (
            self.recluster_every is not None
            and state.round_index % self.recluster_every == 0
        ):
            return self._cluster(state)
        heads = self._cached_heads
        return heads[state.ledger.alive[heads]]

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        if self._home_head is not None:
            home = int(self._home_head[node])
            if state.ledger.is_alive(home) and home in heads:
                return home
            if self.recluster_every is None:
                # Static scheme: a stranded member has no cluster left
                # and must report to the BS directly.
                return state.bs_index
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])

    def choose_relays(
        self,
        state: NetworkState,
        senders: np.ndarray,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> np.ndarray:
        senders = np.asarray(senders, dtype=np.intp)
        heads = np.asarray(heads, dtype=np.intp)
        nearest = heads[
            state.distances_matrix(senders, heads).argmin(axis=1)
        ]
        if self._home_head is None:
            return nearest
        home = self._home_head[senders]
        home_ok = state.ledger.alive[home] & np.isin(home, heads)
        # Static scheme strands members of dead heads at the BS;
        # adaptive reclustering reassigns them to the nearest head.
        fallback = (
            np.full(senders.size, state.bs_index, dtype=np.intp)
            if self.recluster_every is None
            else nearest
        )
        return np.where(home_ok, home, fallback)
