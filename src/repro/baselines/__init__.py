"""Baseline clustering protocols and the shared strategy interface."""

from .base import ClusteringProtocol, NearestHeadRelayMixin
from .deec import DEECProtocol
from .direct import DirectProtocol
from .fcm import FCMProtocol, FCMResult, fuzzy_c_means
from .heed import HEEDProtocol
from .kmeans import KMeansProtocol, KMeansResult, kmeans, kmeans_plus_plus_init
from .leach import LEACHProtocol
from .qelar import QELARProtocol
from .tl_leach import TLLEACHProtocol

__all__ = [
    "ClusteringProtocol",
    "DEECProtocol",
    "DirectProtocol",
    "FCMProtocol",
    "FCMResult",
    "HEEDProtocol",
    "KMeansProtocol",
    "KMeansResult",
    "LEACHProtocol",
    "NearestHeadRelayMixin",
    "QELARProtocol",
    "TLLEACHProtocol",
    "fuzzy_c_means",
    "kmeans",
    "kmeans_plus_plus_init",
]
