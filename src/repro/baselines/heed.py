"""HEED baseline (Younis & Fahmy 2004) — paper §2, ref. [17].

"HEED: a hybrid, energy-efficient, distributed clustering approach":
cluster heads are elected by an iterative probabilistic process whose
*primary* parameter is residual energy and whose *secondary* parameter
is intra-cluster communication cost.

Faithful-in-structure implementation:

* each node starts with ``CH_prob = C_prob * E_residual / E_max``
  (clamped to ``p_min``);
* iterations: a node not yet covered by a tentative head announces
  itself tentative with probability ``CH_prob``; nodes covered by a
  tentative head within cluster range join the cheapest one instead of
  competing; every iteration doubles ``CH_prob`` until it reaches 1
  (the node then finalises — either as a head or as a member);
* secondary cost = AMRP (average minimum reachability power): the mean
  radio amplifier cost for that head's in-range neighbours to reach it,
  so among competing tentative heads, members prefer the one cheapest
  for the neighbourhood.

Differences from the original (documented): iterations are simulated
synchronously from global state (the original is message-passing), and
the cluster range reuses the Eq.-(5) coverage radius so all protocols
share one geometry scale.
"""

from __future__ import annotations

import numpy as np

from ..core.theory import cluster_radius
from ..simulation.state import NetworkState
from .base import ClusteringProtocol, NearestHeadRelayMixin

__all__ = ["HEEDProtocol"]


class HEEDProtocol(NearestHeadRelayMixin, ClusteringProtocol):
    """Hybrid energy + cost iterative election."""

    name = "heed"

    def __init__(
        self,
        n_clusters: int | None = None,
        c_prob: float = 0.1,
        p_min: float = 1e-3,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 < c_prob <= 1.0:
            raise ValueError("c_prob must lie in (0, 1]")
        if not 0.0 < p_min <= 1.0:
            raise ValueError("p_min must lie in (0, 1]")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._n_clusters = n_clusters
        self.c_prob = c_prob
        self.p_min = p_min
        self.max_iterations = max_iterations
        self.k: int | None = None
        self._range: float = 0.0

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(0.05 * state.n)))
        )
        self._range = cluster_radius(self.k, state.config.deployment.side)

    # ------------------------------------------------------------------
    def _amrp(self, state: NetworkState) -> np.ndarray:
        """Average minimum reachability power per candidate head: the
        mean amplifier cost of its in-range neighbours reaching it."""
        full = state.topology.full_matrix()
        bits = state.config.traffic.packet_bits
        amrp = np.full(state.n, np.inf)
        for i in range(state.n):
            neigh = (full[i] <= self._range) & (np.arange(state.n) != i)
            neigh &= state.ledger.alive
            if neigh.any():
                amrp[i] = float(
                    np.mean(state.radio.amp(bits, full[i, neigh]))
                )
            else:
                amrp[i] = float(state.radio.amp(bits, self._range))
        return amrp

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.k is not None, "prepare() must run first"
        alive = state.ledger.alive
        if not alive.any():
            return np.empty(0, dtype=np.intp)
        e_max = float(state.ledger.initial.max())
        ch_prob = np.clip(
            self.c_prob * state.ledger.residual / e_max, self.p_min, 1.0
        )
        amrp = self._amrp(state)
        full = state.topology.full_matrix()

        tentative = np.zeros(state.n, dtype=bool)
        final = np.zeros(state.n, dtype=bool)
        done = ~alive  # dead nodes never participate
        rng = state.protocol_rng
        for _ in range(self.max_iterations):
            if done.all():
                break
            # Covered = a tentative/final head within cluster range (or
            # being one yourself).
            heads_now = tentative | final
            if heads_now.any():
                covered = (full[:, heads_now] <= self._range).any(axis=1)
                covered |= heads_now
            else:
                covered = np.zeros(state.n, dtype=bool)
            undecided = ~done
            at_limit = undecided & (ch_prob >= 1.0)
            # Nodes at probability 1: finalise.  Uncovered ones must
            # head their own cluster; covered ones join and exit.
            become_final_head = at_limit & ~covered
            final |= become_final_head
            tentative &= ~become_final_head
            done |= at_limit
            # Remaining undecided: tentative self-announcement.
            remaining = undecided & ~at_limit
            draws = rng.random(state.n) < ch_prob
            tentative |= remaining & draws & ~covered
            ch_prob = np.minimum(ch_prob * 2.0, 1.0)
        # Anyone still tentative at the end stands as a head.
        heads = np.flatnonzero((tentative | final) & alive)
        if heads.size == 0:
            # Degenerate fallback: the highest-energy alive node.
            alive_idx = np.flatnonzero(alive)
            heads = np.asarray(
                [alive_idx[np.argmax(state.ledger.residual[alive_idx])]],
                dtype=np.intp,
            )
        # HEED prunes overlapping heads by cost: within range, the
        # lower-AMRP head absorbs the other.
        keep: list[int] = []
        for h in heads[np.argsort(amrp[heads], kind="stable")]:
            if not keep or np.all(full[keep, h] > self._range):
                keep.append(int(h))
        return np.asarray(keep, dtype=np.intp)

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        # Members join the minimum-cost (nearest) head, per HEED.
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])
