"""TL-LEACH baseline (Loscri et al., 2006) — paper §2's two-level LEACH.

"A two-levels hierarchy for low-energy adaptive clustering hierarchy":
a *primary* head layer talks to the BS; *secondary* heads aggregate
their local cluster and relay through the nearest primary.  Halving the
long-haul link count trades member-side hops for uplink energy — the
same trade the FCM hierarchy makes, but with LEACH's energy-blind
random rotation at both levels.

Included for the related-work ablation (not part of the paper's Fig. 3
trio).  Election at each level reuses the LEACH threshold with separate
probabilities p_primary < p_secondary.
"""

from __future__ import annotations

import numpy as np

from ..routing.hierarchy import nearest_alive_relay
from ..simulation.state import NetworkState
from .base import ClusteringProtocol, NearestHeadRelayMixin

__all__ = ["TLLEACHProtocol"]


class TLLEACHProtocol(NearestHeadRelayMixin, ClusteringProtocol):
    """Two-level LEACH: secondary heads relay through primary heads."""

    name = "tl-leach"

    def __init__(
        self,
        n_clusters: int | None = None,
        primary_fraction: float = 0.4,
    ) -> None:
        """``n_clusters`` counts *all* heads; ``primary_fraction`` of
        them form the BS-facing layer."""
        if not 0.0 < primary_fraction < 1.0:
            raise ValueError("primary_fraction must lie in (0, 1)")
        self._n_clusters = n_clusters
        self.primary_fraction = primary_fraction
        self.k: int | None = None
        self._primaries: np.ndarray = np.empty(0, dtype=np.intp)

    def prepare(self, state: NetworkState) -> None:
        self.k = (
            self._n_clusters
            if self._n_clusters is not None
            else (state.config.n_clusters or max(1, round(0.05 * state.n)))
        )
        self._primaries = np.empty(0, dtype=np.intp)

    # ------------------------------------------------------------------
    def _elect(self, state: NetworkState, p: float, pool: np.ndarray) -> np.ndarray:
        """LEACH threshold election restricted to ``pool``."""
        if pool.size == 0:
            return np.empty(0, dtype=np.intp)
        epoch = 1.0 / p
        r = state.round_index
        eligible = pool[
            state.ledger.alive[pool]
            & ((r - state.last_ch_round[pool]) >= epoch)
        ]
        phase = r % int(np.ceil(epoch))
        denom = 1.0 - p * phase
        threshold = min(p / denom if denom > 1e-12 else 1.0, 1.0)
        z = state.protocol_rng.random(eligible.size)
        heads = eligible[z < threshold]
        if heads.size == 0 and eligible.size:
            heads = np.asarray(
                [int(state.protocol_rng.choice(eligible))], dtype=np.intp
            )
        elif heads.size == 0:
            alive = pool[state.ledger.alive[pool]]
            if alive.size:
                heads = np.asarray(
                    [int(state.protocol_rng.choice(alive))], dtype=np.intp
                )
        return heads

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        assert self.k is not None, "prepare() must run first"
        n_primary = max(1, round(self.k * self.primary_fraction))
        n_secondary = max(1, self.k - n_primary)
        everyone = np.arange(state.n)
        primaries = self._elect(state, min(n_primary / state.n, 0.99), everyone)
        rest = np.setdiff1d(everyone, primaries)
        secondaries = self._elect(
            state, min(n_secondary / max(rest.size, 1), 0.99), rest
        )
        self._primaries = primaries
        return np.union1d(primaries, secondaries)

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])

    def uplink_path(
        self, state: NetworkState, head: int, heads: np.ndarray
    ) -> list[int]:
        """Secondary heads relay through the nearest alive primary
        (delegates to the routing substrate's shared primitive;
        bit-identical to the pre-substrate inline implementation)."""
        return nearest_alive_relay(state, head, self._primaries)
