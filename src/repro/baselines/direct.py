"""Direct-transmission baseline: no clustering at all.

Every node uplinks straight to the base station.  This is the
energy-wasting strawman clustering exists to beat — long multi-path
links at d^4 cost — and serves as a lower-bound sanity anchor in the
ablation benches (any clustering protocol must beat it on energy in a
cube larger than the radio's crossover distance).
"""

from __future__ import annotations

import numpy as np

from ..simulation.state import NetworkState
from .base import ClusteringProtocol

__all__ = ["DirectProtocol"]


class DirectProtocol(ClusteringProtocol):
    """No heads; the engine falls back to direct BS uplinks."""

    name = "direct"

    def select_cluster_heads(self, state: NetworkState) -> np.ndarray:
        return np.empty(0, dtype=np.intp)

    def choose_relay(
        self,
        state: NetworkState,
        node: int,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> int:
        return state.bs_index

    def choose_relays(
        self,
        state: NetworkState,
        senders: np.ndarray,
        heads: np.ndarray,
        queue_lengths: np.ndarray,
    ) -> np.ndarray:
        return np.full(np.asarray(senders).size, state.bs_index, dtype=np.intp)
