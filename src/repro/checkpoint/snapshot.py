"""Crash-safe engine checkpoints: round-boundary snapshot/restore.

A checkpoint is the *complete* run state of a
:class:`~repro.simulation.engine.SimulationEngine` at a round boundary
— the ``NetworkState`` arrays, every RNG stream (traffic, channel,
protocol, engine, mobility, harvest, fault, and routing), protocol and
Q-table state, routing tables and trees, the fault injector's cursor,
telemetry/tracer state, and the round/latency accumulators — serialized
as a single file::

    header JSON line \\n pickle payload

The header is self-describing and *validating*: it carries the package
version, the config fingerprint, the run-shape signature (protocol,
``stop_on_death``, ``batched``, telemetry/tracer/trace presence), the
payload byte length, and a SHA-256 content checksum.
:func:`read_checkpoint` refuses — with a typed error — to restore a
torn or bit-flipped file (:class:`CheckpointCorruptError`), a snapshot
of a different scenario or run shape
(:class:`CheckpointMismatchError`), or one written by a different
package version (:class:`CheckpointVersionError`).
:func:`latest_valid` turns refusal into graceful degradation: scan the
rotated ``keep_last`` set newest-first and restore the first snapshot
that validates.

Resume identity
---------------
Restoring a snapshot and finishing the run is bit-identical to never
having stopped.  numpy ``Generator`` objects pickle their exact stream
position; in-graph aliases (the state's RNG streams shared with the
traffic source and fault injector, the channel's telemetry binding,
the registry's phase-timer cache) are preserved by the pickle memo;
and kernel backends are swapped for persistent IDs and re-resolved
from the process-local registry on load — compiled backends are never
serialized, and the registry's bit-identical contract makes the swap
invisible.  ``scripts/check_checkpoint_equivalence.py`` enforces the
guarantee end-to-end in CI: SIGKILL at an arbitrary round, resume, and
the final result, golden trace, and telemetry deterministic-view match
the uninterrupted run bit for bit.
"""

from __future__ import annotations

import glob as _glob
import hashlib
import io
import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..simulation.engine import SimulationEngine

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SUFFIX",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointVersionError",
    "CheckpointWriter",
    "DrainInterrupted",
    "latest_valid",
    "read_checkpoint",
    "run_signature",
    "snapshot_paths",
    "write_checkpoint",
]

#: Discriminator value of the checkpoint header line.
CHECKPOINT_KIND = "engine-checkpoint"

#: Bump when the header or payload layout changes incompatibly.
CHECKPOINT_SCHEMA = 1

#: Snapshot filename suffix (``<tag>-r<round:08d>.ckpt``).
CHECKPOINT_SUFFIX = ".ckpt"

#: Header keys every snapshot must carry (missing ⇒ corrupt).
_REQUIRED_KEYS = (
    "kind",
    "schema",
    "version",
    "config_fingerprint",
    "round_index",
    "run",
    "payload_bytes",
    "payload_sha256",
)


class CheckpointError(Exception):
    """Base of every checkpoint refusal (the CLI maps it to exit 2)."""


class CheckpointCorruptError(CheckpointError):
    """The file is not a restorable snapshot: truncated before the
    header newline, unparseable header, torn payload tail, or content
    checksum mismatch."""


class CheckpointMismatchError(CheckpointError):
    """A *valid* snapshot of the wrong run: its config fingerprint or
    run-shape signature differs from what the caller is resuming.
    Restoring it would silently produce a different experiment."""


class CheckpointVersionError(CheckpointError):
    """Written by a different package version or checkpoint schema.
    Pickled engine internals are not stable across versions, so a
    cross-version restore must fail loudly, never deserialize."""


class DrainInterrupted(Exception):
    """A graceful drain stopped the run at a round boundary.

    Carries the snapshot the drained state was persisted to (``None``
    when the run was not checkpointing) and the number of completed
    rounds.  Not a :class:`CheckpointError`: nothing is wrong with any
    snapshot — the caller asked the run to stop.
    """

    def __init__(self, snapshot_path, round_index: int) -> None:
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.round_index = int(round_index)
        where = (
            f"snapshot {self.snapshot_path}"
            if self.snapshot_path is not None
            else "no snapshot (checkpointing was off)"
        )
        super().__init__(
            f"run drained after round {self.round_index} ({where})"
        )


class _EnginePickler(pickle.Pickler):
    """Swaps raw kernel-backend instances for registry persistent IDs.

    Compiled backends (numba dispatch tables) are not picklable and
    would be wasteful to serialize anyway: backends are process-local
    singletons with a bit-identical contract, so identity by
    ``(name, equivalence)`` is all a snapshot needs.
    :class:`~repro.kernels.ProfiledBackend` wrappers pickle normally —
    they carry per-run counter caches — and their *inner* backend is
    intercepted here like any other reference, so aliasing between the
    engine, state, and substrates survives the roundtrip.
    """

    def persistent_id(self, obj):
        from ..kernels import KernelBackend, ProfiledBackend

        if isinstance(obj, KernelBackend) and not isinstance(
            obj, ProfiledBackend
        ):
            return ("kernel-backend", obj.name, obj.equivalence)
        return None


class _EngineUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        from ..kernels import get_backend

        try:
            kind, name, equivalence = pid
        except (TypeError, ValueError):
            raise CheckpointCorruptError(
                f"unknown persistent reference {pid!r}"
            ) from None
        if kind != "kernel-backend":
            raise CheckpointCorruptError(
                f"unknown persistent reference kind {kind!r}"
            )
        return get_backend(name, equivalence)


def run_signature(engine: "SimulationEngine") -> dict:
    """The run-shape knobs that live *outside* the config but change
    the executed stream or the result surface.

    Two runs with equal config fingerprints and equal signatures
    execute identically; the header records both so a resume onto a
    different protocol object or a telemetry-toggled rerun fails with
    :class:`CheckpointMismatchError` instead of silently diverging.
    """
    return {
        "protocol": engine.protocol.name,
        "stop_on_death": bool(engine.stop_on_death),
        "batched": bool(engine.batched),
        "telemetry": bool(engine.telemetry.enabled),
        "tracer": bool(engine.tracer.enabled),
        "trace": engine.trace is not None,
    }


def write_checkpoint(engine: "SimulationEngine", path) -> dict:
    """Atomically snapshot ``engine`` to ``path``; return the header.

    tmp + ``os.replace`` with an fsync in between: a crash mid-write
    leaves either the previous snapshot or the new one, never a torn
    file under the final name (and a torn *tmp* never matches the
    snapshot glob).
    """
    from .. import __version__
    from ..telemetry.manifest import config_fingerprint

    path = Path(path)
    buf = io.BytesIO()
    _EnginePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(engine)
    payload = buf.getvalue()
    header = {
        "kind": CHECKPOINT_KIND,
        "schema": CHECKPOINT_SCHEMA,
        "package": "repro",
        "version": __version__,
        "config_fingerprint": config_fingerprint(engine.config),
        "round_index": int(engine.state.round_index),
        "run": run_signature(engine),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        fh.write(b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return header


def _parse_header(path: Path, line: bytes) -> dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"{path}: unparseable checkpoint header ({exc})"
        ) from None
    if not isinstance(header, dict) or header.get("kind") != CHECKPOINT_KIND:
        raise CheckpointCorruptError(
            f"{path}: not an engine checkpoint "
            f"(kind={header.get('kind') if isinstance(header, dict) else None!r})"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in header]
    if missing:
        raise CheckpointCorruptError(
            f"{path}: checkpoint header missing keys {missing}"
        )
    return header


def read_checkpoint(
    path,
    *,
    config_fingerprint: str | None = None,
    run: dict | None = None,
) -> tuple[dict, "SimulationEngine"]:
    """Validate and restore one snapshot; return ``(header, engine)``.

    Validation order: structure (corrupt), schema/package version
    (version), payload length + checksum (corrupt), then — against the
    caller's expectations when given — config fingerprint and run
    signature (mismatch).  Only a fully validated payload is ever
    deserialized.
    """
    from .. import __version__

    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(f"{path}: unreadable ({exc})") from None
    nl = raw.find(b"\n")
    if nl < 0:
        raise CheckpointCorruptError(
            f"{path}: truncated before the header newline"
        )
    header = _parse_header(path, raw[:nl])
    if header["schema"] != CHECKPOINT_SCHEMA:
        raise CheckpointVersionError(
            f"{path}: checkpoint schema {header['schema']!r}, this build "
            f"reads schema {CHECKPOINT_SCHEMA}"
        )
    if header["version"] != __version__:
        raise CheckpointVersionError(
            f"{path}: written by repro {header['version']!r}, this is "
            f"repro {__version__!r}; pickled engine internals are not "
            "stable across versions — rerun instead of resuming"
        )
    payload = raw[nl + 1 :]
    if len(payload) != header["payload_bytes"]:
        raise CheckpointCorruptError(
            f"{path}: torn payload ({len(payload)} bytes on disk, header "
            f"declares {header['payload_bytes']})"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise CheckpointCorruptError(
            f"{path}: payload checksum mismatch (content was altered)"
        )
    if (
        config_fingerprint is not None
        and header["config_fingerprint"] != config_fingerprint
    ):
        raise CheckpointMismatchError(
            f"{path}: snapshot of config {header['config_fingerprint']}, "
            f"resuming config {config_fingerprint}; a changed scenario "
            "cannot resume from this snapshot"
        )
    if run is not None and header["run"] != run:
        raise CheckpointMismatchError(
            f"{path}: snapshot run shape {header['run']} does not match "
            f"the resuming run {run}"
        )
    engine = _EngineUnpickler(io.BytesIO(payload)).load()
    return header, engine


def snapshot_paths(directory, tag: str) -> list[Path]:
    """All snapshots for ``tag`` in ``directory``, oldest first (the
    round index is zero-padded into the filename, so lexicographic
    order is round order)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    pattern = f"{_glob.escape(tag)}-r*{CHECKPOINT_SUFFIX}"
    return sorted(directory.glob(pattern))


def latest_valid(
    directory,
    tag: str,
    *,
    config_fingerprint: str | None = None,
    run: dict | None = None,
) -> tuple[Path, dict, "SimulationEngine"] | None:
    """Newest restorable snapshot for ``tag``, or ``None``.

    This is the degradation path: corrupt, mismatched, and
    cross-version files are *skipped* (newest-first scan over the
    rotated set) rather than raised, so one torn tail costs at most
    ``every`` rounds of recomputation, never the whole run.  Use
    :func:`read_checkpoint` directly when refusal should be loud.
    """
    for path in reversed(snapshot_paths(directory, tag)):
        try:
            header, engine = read_checkpoint(
                path, config_fingerprint=config_fingerprint, run=run
            )
        except CheckpointError:
            continue
        return path, header, engine
    return None


class CheckpointWriter:
    """Rotated round-boundary snapshot writer for one run.

    ``maybe(engine)`` snapshots after every ``every``-th completed
    round; ``snapshot(engine)`` forces one (the drain path).  Rotation
    keeps the ``keep_last`` newest snapshots, so a corrupt newest file
    still leaves valid fallbacks for :func:`latest_valid`.
    """

    def __init__(self, directory, tag: str, *, every: int, keep_last: int = 3):
        if every < 1:
            raise ValueError(f"checkpoint every must be >= 1, got {every}")
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.tag = str(tag)
        self.every = int(every)
        self.keep_last = int(keep_last)

    def path_for(self, round_index: int) -> Path:
        return self.directory / (
            f"{self.tag}-r{int(round_index):08d}{CHECKPOINT_SUFFIX}"
        )

    def maybe(self, engine: "SimulationEngine") -> Path | None:
        """Snapshot iff the engine sits on an ``every`` boundary."""
        completed = int(engine.state.round_index)
        if completed == 0 or completed % self.every:
            return None
        return self.snapshot(engine)

    def snapshot(self, engine: "SimulationEngine") -> Path:
        path = self.path_for(engine.state.round_index)
        write_checkpoint(engine, path)
        for stale in snapshot_paths(self.directory, self.tag)[: -self.keep_last]:
            try:
                stale.unlink()
            except OSError:  # already rotated by a racing writer
                pass
        return path
