"""Crash-safe round-boundary engine checkpointing.

See :mod:`repro.checkpoint.snapshot` for the format and the
resume-identity guarantee, and ``docs/checkpointing.md`` for the
operational story (rotation, degradation, graceful drain, and the
scheduler's snapshot-aware lease reclaim).
"""

from .snapshot import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SUFFIX,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointVersionError,
    CheckpointWriter,
    DrainInterrupted,
    latest_valid,
    read_checkpoint,
    run_signature,
    snapshot_paths,
    write_checkpoint,
)

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SUFFIX",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointVersionError",
    "CheckpointWriter",
    "DrainInterrupted",
    "latest_valid",
    "read_checkpoint",
    "run_signature",
    "snapshot_paths",
    "write_checkpoint",
]
