"""Backend registry: registration, capability detection, resolution.

Selection semantics (mirrored by the CLI's ``--backend`` flag and
``SimulationConfig.backend``):

* ``"numpy"`` — the reference backend, always available.
* ``"numba"`` — the jitted backend; raises
  :class:`~repro.kernels.base.BackendUnavailableError` when the
  optional numba package is absent (an *explicit* request must fail
  loudly, never silently degrade).
* ``"auto"`` — numba when available, else the numpy reference with a
  once-per-process :class:`RuntimeWarning` (graceful degradation).

Orthogonally to the *name*, every resolution carries an **equivalence
tier** (``bitwise``/``statistical``, see :mod:`repro.kernels.base`):
singletons are cached per ``(name, tier)``, factories that accept an
``equivalence`` keyword are constructed tier-aware, and factories that
do not (third-party bitwise-only backends) are constructed plainly —
a bitwise instance trivially satisfies the statistical tier.  The
reverse is a policy violation: offering a statistical instance to a
bitwise resolution raises
:class:`~repro.kernels.base.EquivalenceError`.

Third-party backends plug in via :func:`register_backend`; resolved
backend *names* (never ``"auto"``) are what run manifests and sharding
cell IDs record, so artifacts from different backends never silently
mix.
"""

from __future__ import annotations

import inspect
import warnings
from collections.abc import Callable

import numpy as np

from .base import (
    EQUIVALENCE_CHOICES,
    BackendUnavailableError,
    EquivalenceError,
    KernelBackend,
)
from .numba_backend import NumbaBackend, numba_version
from .numpy_backend import NumpyBackend

__all__ = [
    "BACKEND_CHOICES",
    "available_backends",
    "backend_available",
    "backend_names",
    "backend_versions",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
]

#: Selector values the CLI / config accept out of the box.
BACKEND_CHOICES = ("auto", "numpy", "numba")

_FACTORIES: dict[str, Callable[..., KernelBackend]] = {}
#: Cheap availability probes (no construction / compilation).
_PROBES: dict[str, Callable[[], bool]] = {}
#: Constructed singletons keyed ``(name, equivalence)``; compiled
#: backends build each tier's kernel table once.
_INSTANCES: dict[tuple[str, str], KernelBackend] = {}
#: Once-per-process latch for the ``auto`` -> numpy degradation
#: warning.  Reset via :func:`_reset_for_tests` so test suites can
#: assert the warning without leaking the latch across runs.
_warned_fallback = False


def _reset_for_tests() -> None:
    """Re-arm the once-per-process degradation warning (test hook).

    The latch exists so interactive sessions see the ``auto`` -> numpy
    fallback exactly once; tests that assert the warning must be able
    to re-arm it without reaching into module internals.
    """
    global _warned_fallback
    _warned_fallback = False


def _check_equivalence(equivalence: str) -> None:
    if equivalence not in EQUIVALENCE_CHOICES:
        raise ValueError(
            f"equivalence must be one of {EQUIVALENCE_CHOICES}, "
            f"got {equivalence!r}"
        )


def register_backend(
    name: str,
    factory: Callable[..., KernelBackend],
    *,
    probe: Callable[[], bool] | None = None,
    override: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    ``probe`` is an optional cheap availability check (import test, not
    construction); without one, availability is probed by constructing.
    A factory that accepts an ``equivalence`` keyword is constructed
    tier-aware; a zero-argument factory yields bitwise instances that
    serve both tiers.
    """
    if not name or name == "auto":
        raise ValueError("backend name must be a non-empty string other than 'auto'")
    if name in _FACTORIES and not override:
        raise ValueError(f"kernel backend {name!r} is already registered")
    _FACTORIES[name] = factory
    if probe is not None:
        _PROBES[name] = probe
    else:
        _PROBES.pop(name, None)
    for tier in EQUIVALENCE_CHOICES:
        _INSTANCES.pop((name, tier), None)


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available or not."""
    return tuple(sorted(_FACTORIES))


def backend_available(name: str) -> bool:
    """Can ``name`` run here?  Uses the registered probe (no kernel
    compilation); unknown names are simply unavailable."""
    if any((name, tier) in _INSTANCES for tier in EQUIVALENCE_CHOICES):
        return True
    if name not in _FACTORIES:
        return False
    probe = _PROBES.get(name)
    if probe is not None:
        return bool(probe())
    try:
        get_backend(name)
    except BackendUnavailableError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """Names of every backend usable in this environment."""
    return tuple(n for n in backend_names() if backend_available(n))


def _construct(factory: Callable[..., KernelBackend], equivalence: str):
    """Build an instance, passing the tier iff the factory takes it."""
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / C callables
        params = {}
    if "equivalence" in params:
        return factory(equivalence=equivalence)
    return factory()


def get_backend(name: str, equivalence: str = "bitwise") -> KernelBackend:
    """Construct (once per tier) and return the backend ``name``.

    Raises ``KeyError`` for unknown names and
    :class:`BackendUnavailableError` when the backend's dependency is
    missing.
    """
    _check_equivalence(equivalence)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        ) from None
    key = (name, equivalence)
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = _construct(factory, equivalence)
        _INSTANCES[key] = inst
    return inst


def default_backend() -> KernelBackend:
    """The bitwise numpy reference singleton (what substrates bind when
    built outside an engine)."""
    return get_backend("numpy")


def resolve_backend(
    selector: str | KernelBackend = "auto",
    *,
    equivalence: str = "bitwise",
    warn_fallback: bool = True,
) -> KernelBackend:
    """Resolve a config/CLI selector to a concrete backend instance.

    Accepts a backend instance (returned as-is after a tier check), a
    registered name, or ``"auto"``.  ``"auto"`` prefers numba and
    degrades to numpy with a once-per-process warning when numba is
    unavailable.  ``equivalence`` selects the tier the instance must
    serve: a bitwise instance serves either tier, but a statistical
    instance offered to a bitwise resolution raises
    :class:`~repro.kernels.base.EquivalenceError` — its results are not
    bit-reproducible and must never flow into golden-trace paths.
    """
    global _warned_fallback
    _check_equivalence(equivalence)
    if isinstance(selector, KernelBackend):
        if equivalence == "bitwise" and selector.equivalence != "bitwise":
            raise EquivalenceError(
                f"backend instance {selector!r} operates under the "
                f"{selector.equivalence!r} tier and cannot serve a "
                "bitwise-equivalence run; construct it with "
                "equivalence='bitwise' or run with --equivalence statistical"
            )
        return selector
    if not isinstance(selector, str):
        raise TypeError(f"backend selector must be a string, got {type(selector)}")
    if selector == "auto":
        try:
            return get_backend("numba", equivalence)
        except BackendUnavailableError as exc:
            if warn_fallback and not _warned_fallback:
                _warned_fallback = True
                warnings.warn(
                    f"kernel backend 'auto': {exc}; using the numpy reference "
                    "backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return get_backend("numpy", equivalence)
    return get_backend(selector, equivalence)


def resolve_backend_name(selector: str | KernelBackend = "auto") -> str:
    """Resolve a selector to the backend *name* that would run, without
    constructing (or compiling) anything.

    This is what sharding cell IDs and run manifests record: the
    concrete backend identity, never ``"auto"``.  Names are orthogonal
    to the equivalence tier (the tier is recorded separately).
    """
    if isinstance(selector, KernelBackend):
        return selector.name
    if not isinstance(selector, str):
        raise TypeError(f"backend selector must be a string, got {type(selector)}")
    if selector == "auto":
        return "numba" if backend_available("numba") else "numpy"
    if selector not in _FACTORIES:
        raise KeyError(
            f"unknown kernel backend {selector!r}; registered: {sorted(_FACTORIES)}"
        )
    return selector


def backend_versions() -> dict[str, str | None]:
    """Versions of the numeric substrate per backend dependency —
    recorded in run manifests so artifacts are attributable to the
    exact kernel provenance.  ``None`` marks an absent optional dep."""
    return {"numpy": np.__version__, "numba": numba_version()}


register_backend("numpy", NumpyBackend, probe=lambda: True)
register_backend("numba", NumbaBackend, probe=lambda: numba_version() is not None)
