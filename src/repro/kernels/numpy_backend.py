"""Numpy reference backend.

This is the code that *defines* correct behaviour: every method body is
the batched substrate implementation PR 1 shipped (golden traces pin
it), moved behind the :class:`~repro.kernels.base.KernelBackend`
contract verbatim.  Other backends are validated against it bit for
bit.

Under the ``statistical`` equivalence tier the distance block switches
to the GEMM expansion ``sqrt(|a|^2 + |b|^2 - 2 a.b)`` — one BLAS matmul
instead of an O(n*m*3) einsum over an explicit difference tensor, much
faster on large blocks but a *reassociated* reduction, hence licensed
only outside the bitwise tier (it is gated distributionally, see
:mod:`repro.kernels.gates`).
"""

from __future__ import annotations

import numpy as np

from .base import EQUIVALENCE_CHOICES, KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Pure-numpy reference implementation of every kernel."""

    name = "numpy"

    def __init__(self, equivalence: str = "bitwise") -> None:
        if equivalence not in EQUIVALENCE_CHOICES:
            raise ValueError(
                f"equivalence must be one of {EQUIVALENCE_CHOICES}, "
                f"got {equivalence!r}"
            )
        self.equivalence = equivalence

    # -- geometry ------------------------------------------------------
    def distance_block(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        if self.equivalence == "statistical":
            return self._distance_block_gemm(src, dst)
        diff = dst[None, :, :] - src[:, None, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    @staticmethod
    def _distance_block_gemm(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.ascontiguousarray(src, dtype=np.float64)
        dst = np.ascontiguousarray(dst, dtype=np.float64)
        sq = np.einsum("ij,ij->i", src, src)[:, None] + np.einsum(
            "ij,ij->i", dst, dst
        )
        sq -= 2.0 * (src @ dst.T)
        # Cancellation can push a zero distance a few ulps negative.
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq, out=sq)

    def distance_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        diff = dst - src
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    # -- channel -------------------------------------------------------
    def bernoulli(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        return u < p

    # -- energy --------------------------------------------------------
    def grouped_discharge(
        self,
        residual: np.ndarray,
        alive: np.ndarray,
        idx: np.ndarray,
        amounts: np.ndarray,
        death_line: float,
    ) -> np.ndarray:
        uniq, inverse = np.unique(idx, return_inverse=True)
        agg = np.bincount(inverse, weights=amounts, minlength=uniq.size)
        live = alive[uniq]
        uniq = uniq[live]
        agg = agg[live]
        if uniq.size == 0:
            return np.empty(0, dtype=np.float64)
        before = residual[uniq]
        after = np.maximum(before - agg, 0.0)
        residual[uniq] = after
        newly_dead = uniq[after <= death_line]
        if newly_dead.size:
            alive[newly_dead] = False
        return before - after

    # -- link estimation ----------------------------------------------
    def ewma_fold_shared(
        self,
        row: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        # pow_table is unused here: the reference evaluates the decay
        # powers inline.  ``pow_table[k] == (1-a)**k`` bitwise by
        # construction (same ufunc, same integer exponents), which is
        # what lets compiled backends use the table instead.
        a = alpha
        order = np.argsort(targets, kind="stable")
        t = targets[order]
        obs = obs[order]
        uniq, counts = np.unique(t, return_counts=True)
        # Position of each outcome within its target group (0-based).
        starts = np.cumsum(counts) - counts
        j = np.arange(t.size, dtype=np.int64) - np.repeat(starts, counts)
        decay_exp = np.repeat(counts, counts) - 1 - j
        contrib = a * obs * (1.0 - a) ** decay_exp
        group = np.repeat(np.arange(uniq.size), counts)
        weighted = np.bincount(group, weights=contrib, minlength=uniq.size)
        vals = row[uniq] * (1.0 - a) ** counts + weighted
        # The exact value is a convex combination of est and the obs,
        # hence in [0, 1]; the folded product/sum can overshoot by ulps
        # where the sequential form cannot, so shave the drift.
        np.clip(vals, 0.0, 1.0, out=vals)
        row[uniq] = vals

    def ewma_fold_pairs(
        self,
        est: np.ndarray,
        nodes: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        a = alpha
        key = nodes * est.shape[1] + targets
        uniq_k, pair_counts = np.unique(key, return_counts=True)
        if uniq_k.size == key.size:
            est[nodes, targets] += a * (obs - est[nodes, targets])
            return
        order = np.argsort(key, kind="stable")
        obs_s = obs[order]
        starts = np.cumsum(pair_counts) - pair_counts
        j = np.arange(key.size, dtype=np.int64) - np.repeat(starts, pair_counts)
        decay_exp = np.repeat(pair_counts, pair_counts) - 1 - j
        contrib = a * obs_s * (1.0 - a) ** decay_exp
        group = np.repeat(np.arange(uniq_k.size), pair_counts)
        weighted = np.bincount(group, weights=contrib, minlength=uniq_k.size)
        un = uniq_k // est.shape[1]
        ut = uniq_k % est.shape[1]
        vals = est[un, ut] * (1.0 - a) ** pair_counts + weighted
        np.clip(vals, 0.0, 1.0, out=vals)
        est[un, ut] = vals

    # -- relay scoring / Q backup --------------------------------------
    def expected_q(
        self,
        p: np.ndarray,
        y: np.ndarray,
        x_src: np.ndarray,
        x_dst: np.ndarray,
        is_bs: np.ndarray,
        v_targets: np.ndarray,
        v_self: np.ndarray,
        g: float,
        alpha1: float,
        alpha2: float,
        beta1: float,
        beta2: float,
        bs_penalty: float,
        gamma: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        x_src_col = x_src[:, None]
        r_s = -g + alpha1 * (x_src_col + x_dst) - alpha2 * y
        r_s = r_s - np.where(is_bs, bs_penalty, 0.0)
        r_f = -g + beta1 * x_src_col - beta2 * y
        r_t = p * r_s + (1.0 - p) * r_f
        q = r_t + gamma * (p * v_targets + (1.0 - p) * v_self[:, None])
        return q, q.max(axis=1)
