"""Distributional gates for the ``statistical`` equivalence tier.

The bitwise tier is enforced by golden traces and per-kernel property
suites; the statistical tier cannot be (its whole point is to license
reassociated reductions and fastmath codegen whose bits differ).  What
it must preserve is the *science*: every headline metric of a run batch
has to agree with the bitwise numpy reference in distribution.

The gate here is deliberately simple and decision-grade: for each
(protocol, lambda) cell, run the same seed batch under the reference
(numpy, bitwise) and under the candidate (chosen backend, statistical)
and require, per gated metric,

    |mean_cand - mean_ref| <= abs_tol + rel_tol * |mean_ref|

with the tolerances declared in :data:`METRIC_TOLERANCES` (the single
source of truth — ``docs/kernels.md`` embeds the same table and the
docs linter cross-checks it against this module).  Tolerances are set
from observed seed-to-seed spread: each is a small fraction of the
across-seed standard deviation of the reference metric, so a numeric
regime that shifts a metric by a scientifically visible amount fails
loudly while benign last-ulp reassociation passes.

CI runs this via ``scripts/check_statistical_gates.py``; the same
entry point works locally to qualify a new statistical backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "GATED_METRICS",
    "METRIC_TOLERANCES",
    "GateMetric",
    "GateReport",
    "run_statistical_gate",
]

#: Per-metric tolerance schema: ``abs`` is an absolute floor in the
#: metric's own units, ``rel`` scales with the reference mean.  A
#: candidate passes when ``|mean_c - mean_r| <= abs + rel * |mean_r|``.
#: Values are calibrated against the across-seed spread of the numpy
#: reference on the paper scenario (lambda=16, 10 seeds): each allowance
#: sits well below one reference standard deviation, so tier drift that
#: would move a plotted point fails while reassociation noise passes.
METRIC_TOLERANCES: dict[str, dict[str, float]] = {
    "pdr": {"abs": 0.02, "rel": 0.0},
    "energy_J": {"abs": 0.0, "rel": 0.02},
    "latency_slots": {"abs": 0.25, "rel": 0.05},
    "delivered": {"abs": 0.0, "rel": 0.03},
    "alive_final": {"abs": 2.0, "rel": 0.0},
    "balance_index": {"abs": 0.05, "rel": 0.0},
}

#: The metrics the gate examines, in report order.
GATED_METRICS: tuple[str, ...] = tuple(METRIC_TOLERANCES)


@dataclass(frozen=True)
class GateMetric:
    """One metric's verdict for one (protocol, lambda) cell."""

    metric: str
    ref_mean: float
    cand_mean: float
    delta: float
    tolerance: float
    passed: bool

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "ref_mean": self.ref_mean,
            "cand_mean": self.cand_mean,
            "delta": self.delta,
            "tolerance": self.tolerance,
            "passed": self.passed,
        }


@dataclass
class GateReport:
    """Full gate outcome: every metric of every gated cell."""

    backend: str
    n_seeds: int
    cells: list[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(
            m["passed"] for cell in self.cells for m in cell["metrics"]
        )

    @property
    def failures(self) -> list[dict]:
        return [
            {"protocol": c["protocol"], "lambda": c["lambda"], **m}
            for c in self.cells
            for m in c["metrics"]
            if not m["passed"]
        ]

    def to_dict(self) -> dict:
        return {
            "kind": "statistical-gate",
            "backend": self.backend,
            "n_seeds": self.n_seeds,
            "passed": self.passed,
            "cells": self.cells,
        }


def _nan_aware_mean(values: np.ndarray) -> float:
    if np.isnan(values).all():
        return float("nan")
    return float(np.nanmean(values))


def _gate_metric(metric: str, ref: np.ndarray, cand: np.ndarray) -> GateMetric:
    tol = METRIC_TOLERANCES[metric]
    # latency is NaN when a cell delivers nothing; NaN means must agree
    # in *kind* (both undefined) and are otherwise compared over the
    # defined entries only.
    ref_mean = _nan_aware_mean(ref)
    cand_mean = _nan_aware_mean(cand)
    if math.isnan(ref_mean) or math.isnan(cand_mean):
        passed = math.isnan(ref_mean) and math.isnan(cand_mean)
        return GateMetric(metric, ref_mean, cand_mean, float("nan"), 0.0, passed)
    delta = abs(cand_mean - ref_mean)
    allowance = tol["abs"] + tol["rel"] * abs(ref_mean)
    return GateMetric(metric, ref_mean, cand_mean, delta, allowance, delta <= allowance)


def run_statistical_gate(
    backend: str = "auto",
    protocols: Sequence[str] = ("qlec",),
    lambdas: Sequence[float] = (16.0,),
    seeds: Sequence[int] = tuple(range(10)),
    rounds: int = 6,
    initial_energy: float = 0.25,
    metrics: Sequence[str] = GATED_METRICS,
) -> GateReport:
    """Gate ``backend`` under the statistical tier against the bitwise
    numpy reference.

    Runs each (protocol, lambda) cell over the full seed batch twice —
    reference first, candidate second — and applies the per-metric
    tolerance test.  Serial and deliberately modest in size: the gate
    is a CI leg, not a sweep.  Returns a :class:`GateReport`; callers
    decide what a failure costs (the CI script exits non-zero).
    """
    # Deferred: analysis.sweep imports repro.kernels at module load.
    from ..analysis.sweep import run_cell

    unknown = [m for m in metrics if m not in METRIC_TOLERANCES]
    if unknown:
        raise KeyError(f"no declared tolerance for metrics: {unknown}")
    report = GateReport(backend=backend, n_seeds=len(tuple(seeds)))
    for protocol in protocols:
        for lam in lambdas:
            ref_rows = [
                run_cell(
                    protocol, lam, seed,
                    initial_energy=initial_energy, rounds=rounds,
                    backend="numpy", equivalence="bitwise",
                )
                for seed in seeds
            ]
            cand_rows = [
                run_cell(
                    protocol, lam, seed,
                    initial_energy=initial_energy, rounds=rounds,
                    backend=backend, equivalence="statistical",
                )
                for seed in seeds
            ]
            verdicts = []
            for metric in metrics:
                ref = np.array([r[metric] for r in ref_rows], dtype=np.float64)
                cand = np.array([r[metric] for r in cand_rows], dtype=np.float64)
                verdicts.append(_gate_metric(metric, ref, cand).to_dict())
            report.cells.append(
                {
                    "protocol": protocol,
                    "lambda": lam,
                    "resolved_backend": cand_rows[0].get("backend", backend),
                    "metrics": verdicts,
                }
            )
    return report
