"""Kernel backend contract for the batched slot pipeline.

A :class:`KernelBackend` implements the numeric inner loops of the
batched data path — the fixed op sequence PR 1 reduced each slot to
(``choose_relays → attempt_batch → discharge_many → update_batch``)
plus the Q-combine behind relay scoring.  The engine resolves one
backend per run and threads it through the substrates; protocols and
the engine itself never branch on the backend.

Equivalence tiers (load-bearing — read before adding a backend)
----------------------------------------------------------------
Every backend instance operates under an **equivalence tier**
(:data:`EQUIVALENCE_CHOICES`, from :mod:`repro.config`):

* ``bitwise`` (default) — the instance MUST be bit-identical to the
  numpy reference on every method, for all inputs the substrates
  produce.  The golden traces and the scalar/batched equivalence suite
  enforce this end-to-end; the property suite in ``tests/kernels``
  enforces it per kernel.
* ``statistical`` — the instance may reassociate reductions (GEMM-form
  distances) and compile with fastmath; correctness is enforced
  *distributionally* by :mod:`repro.kernels.gates` (per-metric means
  over a seed batch vs the numpy reference, within declared
  tolerances).  A bitwise instance trivially satisfies the statistical
  tier; the converse never holds, so the registry refuses to serve a
  statistical instance to a bitwise run
  (:class:`EquivalenceError`).

Three rules make the *bitwise* tier achievable at all:

1. **Exact ops only inside kernels.**  IEEE-754 ``+ - * /``, ``sqrt``,
   comparisons, min/max and integer ops are correctly rounded and give
   the same bits everywhere.  Transcendentals do not: numpy's
   vectorized ``pow``/``exp``/``log`` differ from libm (and hence from
   any jitted ``math.*`` call) in the last ulp.  Kernels therefore take
   transcendental quantities as *precomputed inputs* (the delivery
   probability's exp/log, the radio's ``d**4`` cost, the EWMA decay
   powers via ``pow_table``) — computed once by shared numpy code.
2. **Fixed summation order.**  Grouped sums accumulate sequentially in
   the order the reference accumulates them (``np.bincount`` adds in
   input order; a stable sort preserves within-group order).  Reduction
   helpers that reassociate (``np.einsum`` uses FMA/SIMD, ``ndarray.sum``
   is pairwise) are *reference-pinned*: every backend calls the same
   numpy code for them.  This is why :meth:`~KernelBackend.distance_block`
   and :meth:`~KernelBackend.distance_pairs` are inherited, not jitted.
3. **No fastmath, no FMA contraction.**  Compiled backends must keep
   strict IEEE semantics (numba's default); a fused multiply-add
   changes the rounding of ``a*b + c`` and breaks rule 1.

Mutating kernels (``grouped_discharge``, the EWMA folds) write through
the arrays they are handed; the substrates own those arrays and pass
their private buffers directly, which is what makes the backend a
drop-in for the existing in-place numpy code.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from ..config import EQUIVALENCE_CHOICES

__all__ = [
    "EQUIVALENCE_CHOICES",
    "BackendUnavailableError",
    "EquivalenceError",
    "KernelBackend",
]


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment
    (e.g. ``--backend numba`` without the optional numba package)."""


class EquivalenceError(RuntimeError):
    """An equivalence-tier policy violation: a statistical-tier backend
    offered to a bitwise run, a statistical run asked to record golden
    traces, or a cross-tier artifact merge.  The CLI turns this into
    exit code 2 (a usage error, like :class:`BackendUnavailableError`)."""


class KernelBackend(abc.ABC):
    """Abstract contract every kernel backend implements.

    Array arguments follow the substrates' conventions: float64 data,
    int64/intp indices, C-contiguous unless stated otherwise.  Methods
    that mutate do so in place and document it.
    """

    #: Registry name ("numpy", "numba", ...); never "auto".
    name: ClassVar[str] = ""

    #: Equivalence tier the instance operates under (see module
    #: docstring).  Class default is the strict tier; tier-aware
    #: constructors set the instance attribute.
    equivalence: str = "bitwise"

    # -- geometry ------------------------------------------------------
    @abc.abstractmethod
    def distance_block(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Euclidean distance block ``(len(src), len(dst))`` between two
        position sets of shape ``(n, 3)`` / ``(m, 3)``.

        Reference-pinned in the bitwise tier (see module docstring): the
        sum of squares must reproduce numpy's ``einsum`` reduction
        bit-for-bit, so every bitwise backend runs the same numpy code
        here.  Statistical-tier instances may use the reassociating
        GEMM expansion instead.
        """

    def distance_block_blocked(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        max_block_mb: float | None = None,
    ) -> np.ndarray:
        """:meth:`distance_block`, streamed over sender-row chunks.

        ``max_block_mb`` bounds the peak temporary footprint of the
        computation: rows of ``src`` are processed in chunks sized so
        the dominant per-chunk temporaries — the ``(rows, m, 3)``
        difference block plus the ``(rows, m)`` output slice, float64 —
        fit the budget.  Each output row is a complete, independent
        reduction (the sum of squares reduces over the 3 coordinates
        only), so the chunked result is **bit-identical** to the
        unblocked call for every chunk size; in the bitwise tier this
        method is therefore exactly :meth:`distance_block` with bounded
        memory.  ``None`` (or a budget the whole block already fits)
        delegates to the one-shot path.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        n, m = src.shape[0], dst.shape[0]
        if max_block_mb is None or n == 0 or m == 0:
            return self.distance_block(src, dst)
        bytes_per_row = 8 * m * 4  # (m, 3) diff + (m,) output, float64
        rows = max(1, int(max_block_mb * 2**20) // bytes_per_row)
        if rows >= n:
            return self.distance_block(src, dst)
        out = np.empty((n, m), dtype=np.float64)
        for start in range(0, n, rows):
            stop = min(start + rows, n)
            out[start:stop] = self.distance_block(src[start:stop], dst)
        return out

    @abc.abstractmethod
    def distance_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Elementwise link lengths ``|src[i] - dst[i]|`` for matched
        position arrays of shape ``(n, 3)``.  Reference-pinned like
        :meth:`distance_block`."""

    # -- channel -------------------------------------------------------
    @abc.abstractmethod
    def bernoulli(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Bernoulli outcomes ``u < p`` for pre-drawn uniforms ``u``.

        The uniforms are always drawn by the caller's numpy Generator
        (stream determinism is owned by the engine, never a backend);
        the compare is a single exact vector op.
        """

    # -- energy --------------------------------------------------------
    @abc.abstractmethod
    def grouped_discharge(
        self,
        residual: np.ndarray,
        alive: np.ndarray,
        idx: np.ndarray,
        amounts: np.ndarray,
        death_line: float,
    ) -> np.ndarray:
        """Apply one batch of energy charges with duplicate folding.

        Duplicate indices in ``idx`` are summed per node **in input
        order** (the reference's ``bincount`` order), charges apply only
        to nodes alive at entry, residuals floor at zero, and nodes
        ending at or below ``death_line`` are marked dead.  Mutates
        ``residual`` and ``alive`` in place.

        Returns the per-node energy actually drawn (``before - after``)
        for the charged nodes in ascending node order — the caller sums
        it (with numpy, so the pairwise total matches the reference) into
        its per-category ledger.
        """

    # -- link estimation ----------------------------------------------
    @abc.abstractmethod
    def ewma_fold_shared(
        self,
        row: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        """Fold one batch of ACK outcomes into the shared estimator row.

        Per target column, ``m`` outcomes fold into the closed form of
        m sequential EWMA steps::

            est' = (1-a)^m est + a * sum_j (1-a)^(m-1-j) obs_j

        applied in input order (stable grouping), then clipped to
        ``[0, 1]``.  ``pow_table[k]`` holds ``(1-a)^k`` precomputed by
        numpy (sized at least ``max-group-count + 1``), so compiled
        backends never evaluate ``pow`` themselves.  Mutates ``row``.
        """

    @abc.abstractmethod
    def ewma_fold_pairs(
        self,
        est: np.ndarray,
        nodes: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        """Per-pair variant of :meth:`ewma_fold_shared` over the full
        ``(n_nodes, n_targets)`` estimate matrix.

        Unique ``(node, target)`` pairs take the single-step update
        ``e += a * (obs - e)`` (the reference's fast path, a different
        expression tree from the fold — backends must preserve the
        branch); repeated pairs fold as in the shared mode.  Mutates
        ``est``.
        """

    # -- relay scoring / Q backup --------------------------------------
    @abc.abstractmethod
    def expected_q(
        self,
        p: np.ndarray,
        y: np.ndarray,
        x_src: np.ndarray,
        x_dst: np.ndarray,
        is_bs: np.ndarray,
        v_targets: np.ndarray,
        v_self: np.ndarray,
        g: float,
        alpha1: float,
        alpha2: float,
        beta1: float,
        beta2: float,
        bs_penalty: float,
        gamma: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused Eqs. (16)-(20) + expected Bellman backup over one slot's
        ``(senders, actions)`` block.

        Inputs are pre-normalised by shared numpy code: ``p`` the link
        estimates, ``y`` the normalised amplifier cost (contains the
        radio's ``d**4`` — transcendental, hence precomputed), ``x_src``
        / ``x_dst`` the normalised residuals, ``is_bs`` the BS-action
        mask, ``v_targets`` / ``v_self`` the V-table gathers.  Per
        element::

            r_s = -g + alpha1*(x_src[i] + x_dst[j]) - alpha2*y[i,j]
            r_s -= bs_penalty              # where is_bs[j]
            r_f = -g + beta1*x_src[i] - beta2*y[i,j]
            r_t = p*r_s + (1-p)*r_f
            q   = r_t + gamma*(p*v_targets[j] + (1-p)*v_self[i])

        Returns ``(q, v_new)`` where ``v_new[i] = max_j q[i, j]`` (the
        tabular V update; max is exact, so fusing it is free).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
