"""Kernel profiling: a transparent counting/timing backend wrapper.

:class:`ProfiledBackend` wraps any resolved
:class:`~repro.kernels.base.KernelBackend` and records, per kernel
method, the invocation count, the element count, and an estimate of the
bytes touched — all **deterministic** (pure functions of the input
shapes, so they merge across shards and agree between a pool and a
serial sweep) — plus wall-clock under the existing ``time/``
convention (``time/kernel/<method>``, stripped by
``deterministic_view`` like every wall-clock metric).  When a
:class:`~repro.telemetry.trace.SpanTracer` is attached, each
invocation additionally becomes a ``kernel`` span nested inside the
pipeline phase that issued it.

The wrapper is numerically invisible: every method delegates to the
inner backend unchanged (``distance_block_blocked`` delegates the
*whole* chunked call, so one engine-level call counts once), the
``name``/``equivalence`` attributes proxy the inner instance, and no
hook touches an RNG stream — profiled runs are bit-identical to bare
ones.  The engine only wraps when profiling is requested
(``Telemetry(profile_kernels=True)`` or an enabled tracer), keeping
the default path free of indirection.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..telemetry.trace import NULL_TRACER
from .base import KernelBackend

__all__ = ["ProfiledBackend"]


class ProfiledBackend(KernelBackend):
    """Counts, sizes, and times every kernel call of an inner backend.

    Parameters
    ----------
    inner:
        The resolved backend doing the actual numeric work.
    registry:
        Optional :class:`~repro.telemetry.MetricRegistry` receiving
        ``prof/kernels/<method>/{calls,elements,bytes}`` counters
        (deterministic) and ``time/kernel/<method>`` wall-clock.
    tracer:
        Optional :class:`~repro.telemetry.SpanTracer` receiving one
        ``kernel`` span per invocation.
    """

    def __init__(self, inner: KernelBackend, registry=None, tracer=None) -> None:
        self.inner = inner
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Proxy the inner identity: manifests and fingerprints must
        # record the backend that does the arithmetic, not the wrapper.
        self.name = inner.name
        self.equivalence = inner.equivalence
        #: method -> (calls, elements, bytes, time) metric cache so the
        #: hot path skips registry dict lookups after first use.
        self._counters: dict[str, tuple] = {}

    def _record(self, method: str, t0: float, elements: int, nbytes: int) -> None:
        dur = perf_counter() - t0
        reg = self.registry
        if reg is not None:
            cached = self._counters.get(method)
            if cached is None:
                base = f"prof/kernels/{method}/"
                cached = (
                    reg.counter(base + "calls"),
                    reg.counter(base + "elements"),
                    reg.counter(base + "bytes"),
                    reg.counter(f"time/kernel/{method}"),
                )
                self._counters[method] = cached
            calls, elems, nbytes_c, timer = cached
            calls.add(1)
            elems.add(int(elements))
            nbytes_c.add(int(nbytes))
            timer.add(dur)
        trc = self.tracer
        if trc.enabled:
            trc.kernel(method, t0, dur, int(elements), int(nbytes))

    # -- geometry ------------------------------------------------------
    def distance_block(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        t0 = perf_counter()
        out = self.inner.distance_block(src, dst)
        n, m = src.shape[0], dst.shape[0]
        # (n, m) float64 output + both (·, 3) float64 position inputs.
        self._record("distance_block", t0, n * m, 8 * (n * m + 3 * (n + m)))
        return out

    def distance_block_blocked(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        max_block_mb: float | None = None,
    ) -> np.ndarray:
        # Delegate the whole chunked call: the inner loop calls the
        # *inner* backend's distance_block per chunk, so one
        # engine-level call is one profiled record, not one per chunk.
        t0 = perf_counter()
        out = self.inner.distance_block_blocked(src, dst, max_block_mb)
        n, m = src.shape[0], dst.shape[0]
        self._record("distance_block", t0, n * m, 8 * (n * m + 3 * (n + m)))
        return out

    def distance_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        t0 = perf_counter()
        out = self.inner.distance_pairs(src, dst)
        n = src.shape[0]
        # Two (n, 3) inputs + (n,) output, float64.
        self._record("distance_pairs", t0, n, 8 * 7 * n)
        return out

    # -- channel -------------------------------------------------------
    def bernoulli(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        t0 = perf_counter()
        out = self.inner.bernoulli(p, u)
        n = p.size
        # Two float64 inputs + bool output.
        self._record("bernoulli", t0, n, 17 * n)
        return out

    # -- energy --------------------------------------------------------
    def grouped_discharge(
        self,
        residual: np.ndarray,
        alive: np.ndarray,
        idx: np.ndarray,
        amounts: np.ndarray,
        death_line: float,
    ) -> np.ndarray:
        t0 = perf_counter()
        out = self.inner.grouped_discharge(residual, alive, idx, amounts, death_line)
        k = idx.size
        # idx + amounts in, residual/alive touched per charge, drawn out.
        self._record("grouped_discharge", t0, k, 8 * 5 * k)
        return out

    # -- link estimation ----------------------------------------------
    def ewma_fold_shared(
        self,
        row: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        t0 = perf_counter()
        self.inner.ewma_fold_shared(row, targets, obs, alpha, pow_table)
        m = targets.size
        self._record("ewma_fold_shared", t0, m, 8 * 3 * m)

    def ewma_fold_pairs(
        self,
        est: np.ndarray,
        nodes: np.ndarray,
        targets: np.ndarray,
        obs: np.ndarray,
        alpha: float,
        pow_table: np.ndarray,
    ) -> None:
        t0 = perf_counter()
        self.inner.ewma_fold_pairs(est, nodes, targets, obs, alpha, pow_table)
        m = nodes.size
        self._record("ewma_fold_pairs", t0, m, 8 * 4 * m)

    # -- relay scoring / Q backup --------------------------------------
    def expected_q(
        self,
        p: np.ndarray,
        y: np.ndarray,
        x_src: np.ndarray,
        x_dst: np.ndarray,
        is_bs: np.ndarray,
        v_targets: np.ndarray,
        v_self: np.ndarray,
        g: float,
        alpha1: float,
        alpha2: float,
        beta1: float,
        beta2: float,
        bs_penalty: float,
        gamma: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        t0 = perf_counter()
        out = self.inner.expected_q(
            p, y, x_src, x_dst, is_bs, v_targets, v_self,
            g, alpha1, alpha2, beta1, beta2, bs_penalty, gamma,
        )
        n = p.size
        # p, y, q blocks plus the per-row/per-col vectors, float64.
        self._record("expected_q", t0, n, 8 * 5 * n)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProfiledBackend inner={self.inner!r}>"
