"""Pluggable compiled-kernel backends for the batched slot pipeline.

Public surface of the subsystem (see ``docs/kernels.md``):

* :class:`KernelBackend` — the kernel contract and equivalence policy.
* :class:`NumpyBackend` / :class:`NumbaBackend` — the reference and the
  optional jitted implementation.
* :func:`resolve_backend` / :func:`resolve_backend_name` — selector
  resolution (``auto`` / ``numpy`` / ``numba`` / a registered name).
* :func:`register_backend`, :func:`available_backends`,
  :func:`backend_versions` — registry and capability detection.

Every backend is bit-identical to the numpy reference by contract;
selection changes wall-clock only, never results.
"""

from .base import BackendUnavailableError, KernelBackend
from .numba_backend import NumbaBackend, numba_version
from .numpy_backend import NumpyBackend
from .registry import (
    BACKEND_CHOICES,
    available_backends,
    backend_available,
    backend_names,
    backend_versions,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)

__all__ = [
    "BACKEND_CHOICES",
    "BackendUnavailableError",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "backend_available",
    "backend_names",
    "backend_versions",
    "default_backend",
    "get_backend",
    "numba_version",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
]
