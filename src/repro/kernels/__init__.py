"""Pluggable compiled-kernel backends for the batched slot pipeline.

Public surface of the subsystem (see ``docs/kernels.md``):

* :class:`KernelBackend` — the kernel contract and equivalence policy.
* :class:`NumpyBackend` / :class:`NumbaBackend` — the reference and the
  optional jitted implementation.
* :func:`resolve_backend` / :func:`resolve_backend_name` — selector
  resolution (``auto`` / ``numpy`` / ``numba`` / a registered name).
* :func:`register_backend`, :func:`available_backends`,
  :func:`backend_versions` — registry and capability detection.
* :data:`EQUIVALENCE_CHOICES` / :class:`EquivalenceError` — the
  numeric equivalence tiers and their policy violation.
* :func:`run_statistical_gate` / :data:`METRIC_TOLERANCES` — the
  distributional gate that qualifies statistical-tier backends.

Under the default ``bitwise`` tier every backend is bit-identical to
the numpy reference by contract — selection changes wall-clock only,
never results.  The ``statistical`` tier trades that guarantee for
reassociated/fastmath kernels, gated distributionally instead
(:mod:`repro.kernels.gates`).
"""

from .base import BackendUnavailableError, EquivalenceError, KernelBackend
from .gates import (
    GATED_METRICS,
    METRIC_TOLERANCES,
    GateMetric,
    GateReport,
    run_statistical_gate,
)
from .numba_backend import NumbaBackend, numba_version
from .numpy_backend import NumpyBackend
from .profiling import ProfiledBackend
from .registry import (
    BACKEND_CHOICES,
    EQUIVALENCE_CHOICES,
    available_backends,
    backend_available,
    backend_names,
    backend_versions,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)

__all__ = [
    "BACKEND_CHOICES",
    "EQUIVALENCE_CHOICES",
    "GATED_METRICS",
    "METRIC_TOLERANCES",
    "BackendUnavailableError",
    "EquivalenceError",
    "GateMetric",
    "GateReport",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "ProfiledBackend",
    "available_backends",
    "backend_available",
    "backend_names",
    "backend_versions",
    "default_backend",
    "get_backend",
    "numba_version",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
    "run_statistical_gate",
]
