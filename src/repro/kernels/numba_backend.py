"""Optional numba backend: jitted fused kernels for the hot stages.

Import-guarded — numba is an optional extra, never a hard dependency.
Constructing :class:`NumbaBackend` without numba raises
:class:`~repro.kernels.base.BackendUnavailableError`; resolution via
``"auto"`` falls back to the numpy reference (with a warning) instead.

What is jitted and what is not
------------------------------
Jitted (exact ops only, strict IEEE — **no** ``fastmath``, which would
license FMA contraction and reassociation and break bit-equivalence):

* ``grouped_discharge`` — one sort + one pass replaces the reference's
  unique/bincount/mask/scatter chain.
* ``ewma_fold_shared`` / ``ewma_fold_pairs`` — grouped EWMA folds with
  the decay powers read from the numpy-precomputed ``pow_table``
  (``pow`` is transcendental; jitted libm ``pow`` differs from numpy's
  in the last ulp, the table does not).
* ``expected_q`` — the reward/Bellman combine fused into a single pass
  with the row max, eliminating ~a dozen full ``(senders, actions)``
  temporaries per slot.

Inherited from the numpy reference (deliberately — see the equivalence
policy in :mod:`repro.kernels.base`):

* ``distance_block`` / ``distance_pairs`` — numpy's ``einsum`` reduces
  the sum of squares with SIMD/FMA, which no portable scalar loop
  reproduces bitwise; the distances stay reference-pinned.
* ``bernoulli`` — a single exact vector compare on uniforms drawn by
  the caller's numpy Generator; nothing to fuse.

Statistical tier
----------------
Constructed with ``equivalence="statistical"`` the backend compiles the
same kernel bodies with ``fastmath=True`` (LLVM may contract FMAs,
reassociate, and vectorize reductions) and inherits the GEMM-form
distance block from the statistical numpy reference.  The rounding
guarantees above no longer hold; the tier is validated by the
distributional gates in :mod:`repro.kernels.gates` instead of the
bitwise suites.  Each tier compiles its own kernel table (cached per
process), so bitwise and statistical instances never share code.
"""

from __future__ import annotations

import numpy as np

from .base import EQUIVALENCE_CHOICES, BackendUnavailableError
from .numpy_backend import NumpyBackend

__all__ = ["NumbaBackend", "numba_version"]


def numba_version() -> str | None:
    """Version of the optional numba package, or None when absent.

    The single capability probe for the backend — tests monkeypatch it
    to exercise the degradation paths without touching the environment.
    """
    try:
        import numba
    except Exception:  # pragma: no cover - exercised via monkeypatch
        return None
    return getattr(numba, "__version__", "unknown")


#: Compiled kernel tables, one per fastmath flag (bitwise compiles
#: strict-IEEE, statistical compiles ``fastmath=True``), each built
#: once per process on first use.
_COMPILED: dict[bool, dict] = {}


def _compiled_kernels(fastmath: bool = False) -> dict:
    table = _COMPILED.get(fastmath)
    if table is None:
        import numba

        def jit(fn):
            return numba.njit(fastmath=fastmath)(fn)

        table = _build_kernels(jit)
        _COMPILED[fastmath] = table
    return table


def _build_kernels(njit) -> dict:
    """Compile the kernel set.  Bodies mirror the numpy reference's
    per-element expression trees exactly (same associativity, same
    branch structure); grouped sums run in the reference's bincount
    order via a stable sort."""

    @njit
    def grouped_discharge(residual, alive, idx, amounts, death_line):
        order = np.argsort(idx, kind="mergesort")
        n = idx.shape[0]
        delta = np.empty(n, dtype=np.float64)
        count = 0
        i = 0
        while i < n:
            node = idx[order[i]]
            s = amounts[order[i]]
            i += 1
            while i < n and idx[order[i]] == node:
                s += amounts[order[i]]
                i += 1
            if not alive[node]:
                continue
            before = residual[node]
            after = before - s
            if after < 0.0:
                after = 0.0
            residual[node] = after
            delta[count] = before - after
            count += 1
            if after <= death_line:
                alive[node] = False
        return delta[:count]

    @njit
    def ewma_fold_shared(row, targets, obs, alpha, table):
        order = np.argsort(targets, kind="mergesort")
        n = targets.shape[0]
        i = 0
        while i < n:
            t = targets[order[i]]
            start = i
            while i < n and targets[order[i]] == t:
                i += 1
            m = i - start
            w = 0.0
            for j in range(m):
                w += alpha * obs[order[start + j]] * table[m - 1 - j]
            v = row[t] * table[m] + w
            if v < 0.0:
                v = 0.0
            elif v > 1.0:
                v = 1.0
            row[t] = v

    @njit
    def ewma_fold_pairs(est, nodes, targets, obs, alpha, table):
        n = nodes.shape[0]
        ncols = est.shape[1]
        key = np.empty(n, dtype=np.int64)
        for i in range(n):
            key[i] = nodes[i] * ncols + targets[i]
        order = np.argsort(key, kind="mergesort")
        unique = True
        for i in range(1, n):
            if key[order[i]] == key[order[i - 1]]:
                unique = False
                break
        if unique:
            # Reference fast path: single-step EWMA, a *different*
            # expression tree from the fold — must stay branch-exact.
            for i in range(n):
                e = est[nodes[i], targets[i]]
                est[nodes[i], targets[i]] = e + alpha * (obs[i] - e)
            return
        i = 0
        while i < n:
            k = key[order[i]]
            start = i
            while i < n and key[order[i]] == k:
                i += 1
            m = i - start
            w = 0.0
            for j in range(m):
                w += alpha * obs[order[start + j]] * table[m - 1 - j]
            un = k // ncols
            ut = k % ncols
            v = est[un, ut] * table[m] + w
            if v < 0.0:
                v = 0.0
            elif v > 1.0:
                v = 1.0
            est[un, ut] = v

    @njit
    def expected_q(
        p, y, x_src, x_dst, is_bs, v_targets, v_self,
        g, alpha1, alpha2, beta1, beta2, bs_penalty, gamma,
    ):
        n, m = p.shape
        q = np.empty((n, m), dtype=np.float64)
        v_new = np.empty(n, dtype=np.float64)
        for i in range(n):
            xs = x_src[i]
            vs = v_self[i]
            best = -np.inf
            for j in range(m):
                yij = y[i, j]
                pij = p[i, j]
                r_s = -g + alpha1 * (xs + x_dst[j]) - alpha2 * yij
                if is_bs[j]:
                    r_s = r_s - bs_penalty
                r_f = -g + beta1 * xs - beta2 * yij
                r_t = pij * r_s + (1.0 - pij) * r_f
                qv = r_t + gamma * (pij * v_targets[j] + (1.0 - pij) * vs)
                q[i, j] = qv
                if qv > best:
                    best = qv
            v_new[i] = best
        return q, v_new

    return {
        "grouped_discharge": grouped_discharge,
        "ewma_fold_shared": ewma_fold_shared,
        "ewma_fold_pairs": ewma_fold_pairs,
        "expected_q": expected_q,
    }


def _c(a: np.ndarray, dtype) -> np.ndarray:
    """Contiguous view/copy with a pinned dtype (numba-friendly; the
    substrates sometimes hand us broadcast or fancy-indexed arrays)."""
    return np.ascontiguousarray(a, dtype=dtype)


class NumbaBackend(NumpyBackend):
    """Jitted backend; inherits the reference-pinned methods."""

    name = "numba"

    def __init__(self, equivalence: str = "bitwise") -> None:
        if equivalence not in EQUIVALENCE_CHOICES:
            raise ValueError(
                f"equivalence must be one of {EQUIVALENCE_CHOICES}, "
                f"got {equivalence!r}"
            )
        if numba_version() is None:
            raise BackendUnavailableError(
                "kernel backend 'numba' requires the optional numba package "
                "(pip install 'repro[numba]'); use --backend numpy, or "
                "--backend auto to fall back automatically"
            )
        super().__init__(equivalence)
        self._k = _compiled_kernels(fastmath=equivalence == "statistical")

    def grouped_discharge(self, residual, alive, idx, amounts, death_line):
        return self._k["grouped_discharge"](
            residual, alive, _c(idx, np.int64), _c(amounts, np.float64),
            float(death_line),
        )

    def ewma_fold_shared(self, row, targets, obs, alpha, pow_table):
        self._k["ewma_fold_shared"](
            row, _c(targets, np.int64), _c(obs, np.float64), float(alpha),
            pow_table,
        )

    def ewma_fold_pairs(self, est, nodes, targets, obs, alpha, pow_table):
        self._k["ewma_fold_pairs"](
            est, _c(nodes, np.int64), _c(targets, np.int64),
            _c(obs, np.float64), float(alpha), pow_table,
        )

    def expected_q(
        self, p, y, x_src, x_dst, is_bs, v_targets, v_self,
        g, alpha1, alpha2, beta1, beta2, bs_penalty, gamma,
    ):
        return self._k["expected_q"](
            _c(p, np.float64), _c(y, np.float64), _c(x_src, np.float64),
            _c(x_dst, np.float64), _c(is_bs, np.bool_),
            _c(v_targets, np.float64), _c(v_self, np.float64),
            float(g), float(alpha1), float(alpha2), float(beta1),
            float(beta2), float(bs_penalty), float(gamma),
        )
