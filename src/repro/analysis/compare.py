"""Paired statistical comparison of protocols.

Fig.-3 style claims ("QLEC outperforms X") deserve paired-seed
statistics: every protocol runs on identical deployments/traffic per
seed, so differences are paired observations.  This module provides the
paired bootstrap and sign-test machinery the shape tests and report use
to state wins with uncertainty, plus a win/loss matrix over a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from .sweep import SweepResult

__all__ = ["PairedComparison", "paired_comparison", "win_matrix"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing metric(a) - metric(b) over paired seeds."""

    metric: str
    a: str
    b: str
    mean_diff: float
    ci_lo: float
    ci_hi: float
    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def n(self) -> int:
        return self.wins + self.losses + self.ties

    @property
    def significant(self) -> bool:
        """CI excludes zero (95 % paired bootstrap)."""
        return self.ci_lo > 0.0 or self.ci_hi < 0.0

    def __str__(self) -> str:
        return (
            f"{self.a} - {self.b} on {self.metric}: "
            f"{self.mean_diff:+.4g} [{self.ci_lo:+.4g}, {self.ci_hi:+.4g}] "
            f"(w/l/t {self.wins}/{self.losses}/{self.ties}, p={self.p_value:.3f})"
        )


def paired_comparison(
    sweep: SweepResult,
    metric: str,
    a: str,
    b: str,
    mean_interarrival: float | None = None,
    n_bootstrap: int = 5000,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap CI + exact sign test for metric(a) - metric(b).

    Rows are paired on (seed, lambda); both protocols must cover the
    same cells.
    """
    match = {} if mean_interarrival is None else {"lambda": mean_interarrival}
    rows_a = {
        (r["seed"], r["lambda"]): r[metric] for r in sweep.filtered(protocol=a, **match)
    }
    rows_b = {
        (r["seed"], r["lambda"]): r[metric] for r in sweep.filtered(protocol=b, **match)
    }
    keys = sorted(set(rows_a) & set(rows_b))
    if not keys:
        raise ValueError(f"no paired cells for {a!r} vs {b!r}")
    diffs = np.asarray([rows_a[k] - rows_b[k] for k in keys], dtype=np.float64)

    rng = np.random.default_rng(seed)
    if diffs.size > 1:
        idx = rng.integers(diffs.size, size=(n_bootstrap, diffs.size))
        boot_means = diffs[idx].mean(axis=1)
        ci_lo, ci_hi = np.percentile(boot_means, [2.5, 97.5])
    else:
        ci_lo = ci_hi = float(diffs.mean())

    wins = int((diffs > 0).sum())
    losses = int((diffs < 0).sum())
    ties = int((diffs == 0).sum())
    decisive = wins + losses
    p = (
        float(sps.binomtest(wins, decisive, 0.5).pvalue) if decisive else 1.0
    )
    return PairedComparison(
        metric=metric,
        a=a,
        b=b,
        mean_diff=float(diffs.mean()),
        ci_lo=float(ci_lo),
        ci_hi=float(ci_hi),
        wins=wins,
        losses=losses,
        ties=ties,
        p_value=p,
    )


def win_matrix(
    sweep: SweepResult,
    metric: str,
    protocols,
    higher_is_better: bool = True,
) -> dict[tuple[str, str], float]:
    """Fraction of paired cells where the row protocol beats the column
    one on ``metric`` (0.5 counted for ties)."""
    out: dict[tuple[str, str], float] = {}
    for a in protocols:
        for b in protocols:
            if a == b:
                continue
            cmp = paired_comparison(sweep, metric, a, b, n_bootstrap=100)
            score = (cmp.wins + 0.5 * cmp.ties) / max(cmp.n, 1)
            out[(a, b)] = score if higher_is_better else 1.0 - score
    return out
