"""Generic protocol-comparison sweeps (the machinery behind Fig. 3).

A sweep cell is (protocol, lambda, seed); cells are independent and fan
out over the process pool.  The protocol registry maps names to fresh
protocol instances so cells stay picklable (a worker builds its own
protocol object; nothing stateful crosses the process boundary).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines import (
    DEECProtocol,
    DirectProtocol,
    FCMProtocol,
    HEEDProtocol,
    KMeansProtocol,
    LEACHProtocol,
    QELARProtocol,
    TLLEACHProtocol,
)
from ..baselines.base import ClusteringProtocol
from ..config import RoutingConfig, paper_config
from ..core import QLECProtocol
from ..kernels import resolve_backend_name
from ..parallel import SweepSpec, fold_results, run_tasks
from ..telemetry import Telemetry, merge_snapshots
from .stats import mean_ci

__all__ = [
    "PROTOCOLS",
    "SweepResult",
    "run_cell",
    "sweep_from_spec",
    "sweep_protocols",
]

#: Registry: protocol name -> zero-argument factory.
PROTOCOLS: dict[str, Callable[[], ClusteringProtocol]] = {
    "qlec": QLECProtocol,
    "fcm": FCMProtocol,
    "kmeans": KMeansProtocol,
    "kmeans-adaptive": lambda: KMeansProtocol(recluster_every=1),
    "leach": LEACHProtocol,
    "tl-leach": TLLEACHProtocol,
    "qelar": QELARProtocol,
    "heed": HEEDProtocol,
    "deec": DEECProtocol,
    "direct": DirectProtocol,
}


def _log_resume(checkpoint_dir, tag: str, header: dict, path) -> None:
    """Append one resume record to the tag's observability sidecar.

    The sidecar is ephemeral operational evidence ("this attempt
    restored round N from that snapshot"), written with O_APPEND so
    concurrent attempts interleave whole lines; it is never merged,
    fingerprinted, or read back by the sweep machinery — chaos tests
    and operators read it to prove a reclaim resumed instead of
    recomputing.
    """
    import json
    import os

    record = {
        "kind": "checkpoint-resume",
        "tag": tag,
        "round_index": header["round_index"],
        "snapshot": os.path.basename(str(path)),
    }
    line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(
        os.path.join(str(checkpoint_dir), f"{tag}.resume.jsonl"),
        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
        0o644,
    )
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def run_cell(
    protocol: str,
    mean_interarrival: float,
    seed: int,
    initial_energy: float = 0.25,
    rounds: int = 20,
    stop_on_death: bool = False,
    telemetry: bool = False,
    backend: str = "auto",
    faults: str | None = None,
    equivalence: str = "bitwise",
    max_block_mb: float | None = None,
    routing: str = "direct",
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_keep_last: int = 3,
) -> dict:
    """One sweep cell: build the Table-2 scenario and run one protocol.

    Module-level so it is picklable for the process pool.  Returns the
    flat result summary plus the consumption-balance index; with
    ``telemetry=True`` the summary additionally carries the cell's
    metric snapshot under ``"telemetry"`` (a plain JSON-able dict — the
    picklable per-worker half of the sweep-level merge).

    ``backend`` selects the kernel backend; the *resolved* name is
    written into the cell's config before running, so the config
    fingerprint (and hence the sharding cell ID) pins the concrete
    backend — a resumed or merged artifact can never silently mix
    backends with different availability.

    ``faults`` names a chaos scenario from
    :data:`repro.faults.FAULT_SCENARIOS`; the plan is materialised
    against the cell's config (so the chaos scales with the scenario)
    and, being a config field, hashes into the fingerprint/cell ID.

    ``equivalence`` declares the cell's numeric tier
    (:data:`repro.kernels.EQUIVALENCE_CHOICES`) and ``max_block_mb``
    bounds the distance-block footprint for large-N scenarios; both
    are config fields, so both hash into the fingerprint/cell ID —
    bitwise and statistical artifacts can never silently mix.

    ``routing`` selects the multi-hop substrate
    (:data:`repro.config.ROUTING_CHOICES`); also a config field, so it
    too hashes into the fingerprint/cell ID.

    ``checkpoint_every`` + ``checkpoint_dir`` make the cell
    *preemptible*: the engine snapshots its complete state every N
    rounds under a tag derived from the cell identity, and a rerun of
    the same cell (a reclaimed scheduler lease, a retried shard)
    restores the newest valid snapshot and re-executes only the rounds
    after it — bit-identical to an uninterrupted run.  Checkpoint
    knobs are execution detail, never identity: they hash into no
    fingerprint and no cell ID.
    """
    if protocol not in PROTOCOLS:
        raise KeyError(f"unknown protocol {protocol!r}; known: {sorted(PROTOCOLS)}")
    config = dataclasses.replace(
        paper_config(
            mean_interarrival=mean_interarrival,
            seed=seed,
            rounds=rounds,
            initial_energy=initial_energy,
        ),
        backend=resolve_backend_name(backend),
        equivalence=equivalence,
        max_block_mb=max_block_mb,
        routing=RoutingConfig(kind=routing),
    )
    if faults:
        from ..faults import build_fault_plan

        config = config.replace(faults=build_fault_plan(faults, config))
    proto = PROTOCOLS[protocol]()
    engine = None
    ckpt_tag = None
    if checkpoint_dir is not None and checkpoint_every:
        from ..checkpoint import latest_valid
        from ..telemetry.manifest import config_fingerprint

        fingerprint = config_fingerprint(config)
        ckpt_tag = f"{protocol}-{fingerprint}"
        expected_run = {
            "protocol": proto.name,
            "stop_on_death": bool(stop_on_death),
            "batched": True,
            "telemetry": bool(telemetry),
            "tracer": False,
            "trace": False,
        }
        found = latest_valid(
            checkpoint_dir,
            ckpt_tag,
            config_fingerprint=fingerprint,
            run=expected_run,
        )
        if found is not None:
            path, header, engine = found
            _log_resume(checkpoint_dir, ckpt_tag, header, path)
    tel = Telemetry() if telemetry else None
    if engine is None:
        from ..simulation import SimulationEngine

        engine = SimulationEngine(
            config,
            proto,
            stop_on_death=stop_on_death,
            telemetry=tel,
        )
    elif telemetry:
        # The snapshot carries the half-accumulated telemetry of the
        # interrupted attempt; the finished cell's snapshot must come
        # from it, not from a fresh handle.
        tel = engine.telemetry
    result = engine.run(
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_keep_last=checkpoint_keep_last,
        checkpoint_tag=ckpt_tag if ckpt_tag is not None else "cell",
    )
    summary = result.summary()
    summary["protocol"] = protocol  # registry name, not class default
    if "routing" in result.extras:
        # Active substrates only — direct rows keep the pre-substrate
        # key set, so existing artifacts merge/resume unchanged.
        summary["routing"] = result.extras["routing"]
    if tel is not None:
        summary["telemetry"] = tel.snapshot()
    return summary


@dataclass
class SweepResult:
    """All cell summaries of one sweep plus aggregation helpers.

    ``telemetry`` holds the merged metric snapshot of every cell when
    the sweep ran with telemetry (None otherwise).  The merge is
    order-insensitive, so the pool's completion order cannot leak into
    it: a 2-worker sweep and a serial sweep agree exactly on every
    deterministic (non-``time/``) metric.
    """

    rows: list[dict] = field(default_factory=list)
    telemetry: dict | None = None

    def filtered(self, **match) -> list[dict]:
        out = self.rows
        for key, value in match.items():
            out = [r for r in out if r.get(key) == value]
        return out

    def aggregate(
        self, metric: str, protocol: str, mean_interarrival: float
    ) -> float:
        """Mean of ``metric`` over seeds for one (protocol, lambda)."""
        rows = self.filtered(protocol=protocol, **{"lambda": mean_interarrival})
        if not rows:
            raise KeyError(
                f"no rows for protocol={protocol!r}, lambda={mean_interarrival}"
            )
        return float(np.mean([r[metric] for r in rows]))

    def aggregate_ci(self, metric: str, protocol: str, mean_interarrival: float):
        rows = self.filtered(protocol=protocol, **{"lambda": mean_interarrival})
        return mean_ci([r[metric] for r in rows])

    def series(
        self, metric: str, protocols: Sequence[str], lambdas: Sequence[float]
    ) -> dict[str, list[float]]:
        """Figure-shaped output: one metric series per protocol."""
        return {
            p: [self.aggregate(metric, p, lam) for lam in lambdas]
            for p in protocols
        }


def sweep_protocols(
    protocols: Sequence[str],
    lambdas: Sequence[float],
    seeds: Sequence[int],
    initial_energy: float = 0.25,
    rounds: int = 20,
    stop_on_death: bool = False,
    max_workers: int | None = None,
    serial: bool = False,
    telemetry: bool = False,
    backend: str = "auto",
    faults: str | None = None,
    equivalence: str = "bitwise",
    max_block_mb: float | None = None,
    routing: str = "direct",
) -> SweepResult:
    """Run the full (protocol x lambda x seed) grid in parallel.

    This is the engine behind every Fig.-3 regeneration: identical
    scenarios per seed across protocols (the deployment/traffic streams
    depend only on the seed), cells scheduled over the process pool,
    results in deterministic order.

    With ``telemetry=True`` every cell instruments its run; per-cell
    snapshots come back with the rows and fold (in submission order,
    with an order-insensitive merge) into ``SweepResult.telemetry``.
    """
    spec = SweepSpec(
        protocols=tuple(protocols),
        lambdas=tuple(lambdas),
        seeds=tuple(seeds),
        initial_energy=initial_energy,
        rounds=rounds,
        stop_on_death=stop_on_death,
        telemetry=telemetry,
        backend=backend,
        faults=faults,
        equivalence=equivalence,
        max_block_mb=max_block_mb,
        routing=routing,
    )
    return sweep_from_spec(spec, max_workers=max_workers, serial=serial)


def sweep_from_spec(
    spec: SweepSpec,
    max_workers: int | None = None,
    serial: bool = False,
) -> SweepResult:
    """Run a :class:`~repro.parallel.SweepSpec` grid in one process pool.

    The spec's canonical cell enumeration is the single source of truth
    for row order — the same enumeration the shard runner partitions —
    so a serial run, a pooled run, and a K-shard merge all produce
    rows in the same order with the same values.
    """
    rows = list(
        run_tasks(
            run_cell, spec.cell_args(), max_workers=max_workers, serial=serial
        )
    )
    merged = None
    if spec.telemetry:
        snaps = [row.pop("telemetry") for row in rows]
        merged = fold_results(snaps, merge_snapshots)
    return SweepResult(rows=rows, telemetry=merged)
