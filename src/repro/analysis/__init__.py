"""Analysis: sweeps, statistics, and report tables."""

from .ascii_plot import grid_to_text, heatmap_ascii, network_ascii, scatter_ascii
from .compare import PairedComparison, paired_comparison, win_matrix
from .io import load_sweep, rows_to_csv, save_sweep, sweep_to_csv
from .report import ReportConfig, generate_report
from .stats import MeanCI, censored_mean, jains_index, latency_percentiles, mean_ci
from .sweep import (
    PROTOCOLS,
    SweepResult,
    run_cell,
    sweep_from_spec,
    sweep_protocols,
)
from .tables import render_kv, render_series, render_table, render_telemetry

__all__ = [
    "MeanCI",
    "PROTOCOLS",
    "PairedComparison",
    "ReportConfig",
    "SweepResult",
    "censored_mean",
    "generate_report",
    "grid_to_text",
    "heatmap_ascii",
    "jains_index",
    "latency_percentiles",
    "load_sweep",
    "mean_ci",
    "network_ascii",
    "paired_comparison",
    "render_kv",
    "rows_to_csv",
    "save_sweep",
    "scatter_ascii",
    "win_matrix",
    "render_series",
    "render_table",
    "render_telemetry",
    "run_cell",
    "sweep_from_spec",
    "sweep_protocols",
    "sweep_to_csv",
]
