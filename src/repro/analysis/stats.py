"""Summary statistics for replicated simulation runs.

Every Fig.-3 point is a mean over seeds; these helpers provide the
means, confidence intervals, and censoring-aware lifespan summaries the
report tables print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["MeanCI", "mean_ci", "censored_mean", "jains_index", "latency_percentiles"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(values, confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of ``values``."""
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    m = float(v.mean())
    if v.size == 1:
        return MeanCI(m, float("nan"), 1)
    sem = float(v.std(ddof=1)) / np.sqrt(v.size)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=v.size - 1))
    return MeanCI(m, t * sem, int(v.size))


def censored_mean(values, censored) -> tuple[float, int]:
    """Mean of lifespans where some runs never observed a death.

    Censored entries contribute their observed value (a lower bound);
    the second return is the number of censored runs so tables can
    annotate (e.g. "18.2 (3 censored)").
    """
    v = np.asarray(list(values), dtype=np.float64)
    c = np.asarray(list(censored), dtype=bool)
    if v.shape != c.shape:
        raise ValueError("values and censored must align")
    if v.size == 0:
        raise ValueError("need at least one value")
    return float(v.mean()), int(c.sum())


def jains_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in [1/n, 1]."""
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        raise ValueError("need at least one value")
    if np.any(v < 0):
        raise ValueError("values must be non-negative")
    denom = v.size * float((v * v).sum())
    if denom == 0.0:
        return 1.0
    return float(v.sum()) ** 2 / denom


def latency_percentiles(
    latencies, qs=(50, 90, 99)
) -> dict[str, float]:
    """Latency distribution summary (the abstract's "transmission
    latency" claim deserves more than a mean): percentiles in slots.

    ``latencies`` is any iterable of per-packet latencies — typically
    ``PacketStats.latencies``, which is exact below the reservoir
    capacity (4096 deliveries) and a uniform sample beyond it, so the
    percentiles here are estimates on very long runs while ``mean``
    from :class:`~repro.network.packet.PacketStats` itself stays exact.

    Returns ``{"p50": ..., "p90": ..., "p99": ..., "mean": ..., "max": ...}``
    (NaN everywhere when nothing was delivered).
    """
    v = np.asarray(list(latencies), dtype=np.float64)
    if v.size == 0:
        nan = float("nan")
        return {**{f"p{q}": nan for q in qs}, "mean": nan, "max": nan}
    out = {f"p{q}": float(np.percentile(v, q)) for q in qs}
    out["mean"] = float(v.mean())
    out["max"] = float(v.max())
    return out
