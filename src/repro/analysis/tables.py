"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates every figure of the paper as an
ASCII table (series per protocol, one row per network condition), so
results are diffable and readable in CI logs without plotting
dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as "-".
    columns:
        Column order; defaults to the keys of the first row.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [_fmt(row.get(c, "-"), precision) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render a figure-like dataset: one x column, one column per series.

    This is the shape of each panel of the paper's Fig. 3: x = network
    condition (lambda), one line per protocol.
    """
    lengths = {len(v) for v in series.values()}
    if lengths and lengths != {len(x_values)}:
        raise ValueError("every series must match the length of x_values")
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return render_table(rows, precision=precision, title=title)


def render_kv(pairs: Mapping[str, Any], precision: int = 4, title: str | None = None) -> str:
    """Render a key/value block (experiment headers, config echoes)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [f"{k.ljust(width)} : {_fmt(v, precision)}" for k, v in pairs.items()]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)
