"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates every figure of the paper as an
ASCII table (series per protocol, one row per network condition), so
results are diffable and readable in CI logs without plotting
dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "render_series", "render_kv", "render_telemetry"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as "-".
    columns:
        Column order; defaults to the keys of the first row.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [_fmt(row.get(c, "-"), precision) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render a figure-like dataset: one x column, one column per series.

    This is the shape of each panel of the paper's Fig. 3: x = network
    condition (lambda), one line per protocol.
    """
    lengths = {len(v) for v in series.values()}
    if lengths and lengths != {len(x_values)}:
        raise ValueError("every series must match the length of x_values")
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return render_table(rows, precision=precision, title=title)


def render_kv(pairs: Mapping[str, Any], precision: int = 4, title: str | None = None) -> str:
    """Render a key/value block (experiment headers, config echoes)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [f"{k.ljust(width)} : {_fmt(v, precision)}" for k, v in pairs.items()]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


#: Pipeline order of the engine's phase taxonomy (docs/observability.md);
#: phases outside this list render after it, alphabetically.
PHASE_ORDER = (
    "setup", "ch_select", "generate", "relay_choice", "discharge",
    "channel", "queue_offer", "estimator", "service", "uplink", "round_end",
)


def _metric_value(m: Mapping[str, Any]) -> Any:
    """The scalar a metric mapping renders as.

    Counters carry ``value``; gauges carry ``total`` (among others).
    Metric names are an open taxonomy — new producers add names under
    existing prefixes — so the renderer must not assume any particular
    kind behind a prefix: an unrecognized shape renders as 0 instead of
    raising.
    """
    if "value" in m:
        return m["value"]
    if "total" in m:
        return m["total"]
    return 0


def render_telemetry(
    snapshot: Mapping[str, Mapping[str, Any]],
    title: str | None = "Telemetry breakdown",
) -> str:
    """Render a telemetry metric snapshot as the per-phase breakdown.

    Three blocks: wall-clock per pipeline phase (with its share of the
    attributed time and the coverage of measured round time), energy by
    radio category, and packets by terminal outcome — the where-does-
    time/energy/loss-go view the sharding and compiled-backend roadmap
    items need.

    Tolerant of unknown metric names and shapes by design: snapshots
    merged from newer producers must still render (never ``KeyError``).
    """
    if not snapshot:
        return (title + "\n" if title else "") + "(no telemetry)"
    blocks: list[str] = []

    phases = {
        name.removeprefix("time/phase/"): _metric_value(m)
        for name, m in snapshot.items()
        if name.startswith("time/phase/")
    }
    if phases:
        total = sum(phases.values())
        ordered = [p for p in PHASE_ORDER if p in phases]
        ordered += sorted(set(phases) - set(ordered))
        rows = [
            {
                "phase": p,
                "time_s": phases[p],
                "share": phases[p] / total if total else 0.0,
            }
            for p in ordered
        ]
        rows.append({"phase": "(sum)", "time_s": total, "share": 1.0})
        block = render_table(rows, precision=4, title=title)
        round_time = snapshot.get("time/round")
        if round_time and round_time.get("count"):
            coverage = total / round_time["total"] if round_time["total"] else 0.0
            block += (
                f"\nphase coverage: {coverage:.1%} of "
                f"{round_time['total']:.4f}s over {round_time['count']} rounds"
            )
        blocks.append(block)
    elif title:
        blocks.append(title)

    energy = {
        name.removeprefix("energy/").removesuffix("_j"): _metric_value(m)
        for name, m in snapshot.items()
        if name.startswith("energy/")
    }
    if energy:
        blocks.append(
            render_kv(energy, precision=6, title="energy by category [J]")
        )

    packets = {
        name.removeprefix("packets/"): _metric_value(m)
        for name, m in snapshot.items()
        if name.startswith("packets/")
    }
    if packets:
        blocks.append(render_kv(packets, title="packets by outcome"))

    routing = {
        name.removeprefix("routing/"): m
        for name, m in snapshot.items()
        if name.startswith("routing/")
    }
    if routing:
        hops = routing.pop("hops", None)
        counters = {name: _metric_value(m) for name, m in sorted(routing.items())}
        if counters:
            blocks.append(render_kv(counters, title="routing counters"))
        if hops is not None and hops.get("count"):
            edges = hops.get("edges", [])
            buckets = hops.get("buckets", [])
            labels = []
            prev = None
            for e in edges:
                lo = "<=" if prev is None else f"{_fmt(prev, 0)}<"
                labels.append(f"{lo}{_fmt(float(e), 0)}")
                prev = float(e)
            labels.append(f">{_fmt(prev, 0)}" if prev is not None else ">")
            rows = [
                {"hops": lab, "frames": n}
                for lab, n in zip(labels, buckets)
                if n
            ]
            block = render_table(rows, title="hop-count histogram")
            mean = hops["total"] / hops["count"]
            block += f"\nmean hops: {mean:.3f} over {hops['count']} frames"
            blocks.append(block)

    attempts = snapshot.get("channel/attempts")
    n_attempts = _metric_value(attempts) if attempts else 0
    if n_attempts:
        acks = snapshot.get("channel/acks")
        n_acks = _metric_value(acks) if acks else 0
        blocks.append(
            f"channel: {n_acks}/{n_attempts} attempts ACKed "
            f"({n_acks / n_attempts:.1%})"
        )
    return "\n\n".join(blocks)
