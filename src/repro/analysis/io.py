"""Persistence for experiment outputs.

Sweeps are expensive; these helpers round-trip their row tables through
JSON (for resuming analysis without re-simulation) and export CSV for
external plotting tools.  Only plain summaries are persisted — full
`SimulationResult` objects carry numpy arrays and per-packet latency
lists that don't belong in a results file.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from .sweep import SweepResult

__all__ = ["save_sweep", "load_sweep", "sweep_to_csv", "rows_to_csv"]

_FORMAT_VERSION = 1


def save_sweep(sweep: SweepResult, path) -> None:
    """Write a sweep's rows as versioned JSON."""
    payload = {"format": _FORMAT_VERSION, "rows": sweep.rows}
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_sweep(path) -> SweepResult:
    """Load a sweep saved by :func:`save_sweep`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ValueError(f"{path}: not a sweep file")
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported sweep format {version!r} "
            f"(this build reads {_FORMAT_VERSION})"
        )
    return SweepResult(rows=list(payload["rows"]))


def rows_to_csv(rows: list[dict]) -> str:
    """Render dict rows as CSV text (union of keys, stable order)."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def sweep_to_csv(sweep: SweepResult, path) -> None:
    """Export a sweep's rows to a CSV file."""
    Path(path).write_text(rows_to_csv(sweep.rows), encoding="utf-8")
