"""Terminal-friendly spatial plots.

The paper's Figures 1 and 4 are scatter plots (network layout; the
consumption map over China).  For a dependency-free repository these
are rendered as character rasters: a projection of node positions onto
a character grid with per-class markers, and a shaded heatmap for
scalar fields.  Used by the examples and the Fig.-4 harness; exact
visuals are cosmetic, but the rasterisation itself is unit-tested.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_ascii", "heatmap_ascii", "network_ascii"]

#: Shade ramp, light to dark.
_RAMP = " .:-=+*#%@"


def _raster(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def scatter_ascii(
    points: np.ndarray,
    width: int = 60,
    height: int = 24,
    marker: str = ".",
    extent: tuple[float, float, float, float] | None = None,
    base: list[list[str]] | None = None,
) -> list[list[str]]:
    """Rasterise 2-D ``points`` onto a character grid.

    Later calls can pass the previous grid as ``base`` to overlay
    several classes (members, heads, BS) with different markers.
    Returns the mutable grid; render with :func:`grid_to_text`.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("points must have shape (n, >=2)")
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    if len(marker) != 1:
        raise ValueError("marker must be a single character")
    grid = base if base is not None else _raster(width, height)
    if points.shape[0] == 0:
        return grid
    if extent is None:
        x0, x1 = float(points[:, 0].min()), float(points[:, 0].max())
        y0, y1 = float(points[:, 1].min()), float(points[:, 1].max())
    else:
        x0, x1, y0, y1 = extent
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0
    cols = np.clip(((points[:, 0] - x0) / dx * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((points[:, 1] - y0) / dy * (height - 1)).astype(int), 0, height - 1)
    for r, c in zip(rows, cols):
        grid[height - 1 - r][c] = marker  # y grows upward
    return grid


def grid_to_text(grid: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in grid)


def heatmap_ascii(values: np.ndarray, ramp: str = _RAMP) -> str:
    """Render a 2-D scalar field as shaded characters (row 0 on top).

    NaN cells render as '?'.  Values are min-max normalised.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("values must be 2-D")
    if len(ramp) < 2:
        raise ValueError("ramp needs at least two shades")
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return "\n".join("?" * values.shape[1] for _ in range(values.shape[0]))
    lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    out_rows = []
    for row in values:
        chars = []
        for v in row:
            if not np.isfinite(v):
                chars.append("?")
            else:
                idx = int((v - lo) / span * (len(ramp) - 1))
                chars.append(ramp[idx])
        out_rows.append("".join(chars))
    return "\n".join(out_rows)


def network_ascii(
    positions: np.ndarray,
    heads: np.ndarray | None = None,
    bs_position=None,
    width: int = 60,
    height: int = 24,
) -> str:
    """The Figure-1 view: members '.', cluster heads 'H', sink 'S'
    (x-y projection of the 3-D layout)."""
    positions = np.asarray(positions, dtype=np.float64)
    x0, x1 = float(positions[:, 0].min()), float(positions[:, 0].max())
    y0, y1 = float(positions[:, 1].min()), float(positions[:, 1].max())
    extent = (x0, x1, y0, y1)
    grid = scatter_ascii(positions, width, height, ".", extent)
    if heads is not None and np.asarray(heads).size:
        grid = scatter_ascii(
            positions[np.asarray(heads)], width, height, "H", extent, base=grid
        )
    if bs_position is not None:
        grid = scatter_ascii(
            np.asarray([bs_position]), width, height, "S", extent, base=grid
        )
    return grid_to_text(grid)
