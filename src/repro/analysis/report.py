"""One-shot report generation: run every experiment, emit REPORT.md.

``python -m repro report`` (or :func:`generate_report`) executes the
full per-artifact driver set — Fig. 3, Fig. 4, Theorem 1, complexity,
ablation — and assembles a single markdown report with every regenerated
table, suitable for committing next to EXPERIMENTS.md after a run.
"""

from __future__ import annotations

import datetime
import io
import platform
from dataclasses import dataclass

__all__ = ["ReportConfig", "generate_report", "telemetry_section"]


@dataclass(frozen=True)
class ReportConfig:
    """Effort knobs for the full report run."""

    seeds: tuple[int, ...] = (0, 1, 2)
    lambdas: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0)
    fig4_nodes: int = 1000
    fig4_clusters: int = 94
    serial: bool = False
    #: Skip the slower drivers (fig4, ablation) for a quick look.
    quick: bool = False
    #: Append the instrumented Table-2 QLEC run (phase timers, energy
    #: and drop breakdown) as an observability section.
    telemetry: bool = True


def _block(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(config: ReportConfig | None = None) -> str:
    """Run all experiment drivers and return the markdown report."""
    # Imports are local so `repro.analysis` stays importable without
    # dragging every experiment module in.
    from ..experiments import (
        Fig3Config,
        Fig4Config,
        measure_qlearning_updates,
        measure_selection_scaling,
        render_ablation,
        render_complexity_report,
        run_ablation,
        run_fig3,
        run_fig4,
        run_kopt_validation,
    )

    cfg = config if config is not None else ReportConfig()
    out = io.StringIO()
    out.write("# QLEC reproduction report\n\n")
    out.write(
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} on "
        f"Python {platform.python_version()} / {platform.machine()}.\n\n"
        f"Seeds {list(cfg.seeds)}, lambda sweep {list(cfg.lambdas)}.\n\n"
    )

    fig3 = run_fig3(
        Fig3Config(lambdas=cfg.lambdas, seeds=cfg.seeds, serial=cfg.serial)
    )
    out.write(_block("Fig. 3 — delivery rate / energy / lifespan", fig3.render()))

    out.write(
        _block(
            "Theorem 1 — optimal cluster count",
            run_kopt_validation(mc_samples=100_000).render(),
        )
    )

    out.write(
        _block(
            "Complexity (Lemmas 2-3)",
            render_complexity_report(
                measure_selection_scaling(n_values=(50, 100, 200, 400)),
                measure_qlearning_updates(),
            ),
        )
    )

    if not cfg.quick:
        fig4 = run_fig4(
            Fig4Config(
                n_nodes=cfg.fig4_nodes,
                n_clusters=cfg.fig4_clusters,
                rounds=8,
                compare=("fcm", "kmeans"),
            )
        )
        out.write(_block("Fig. 4 — large-scale consumption evenness", fig4.render()))

        ablation = run_ablation(seeds=cfg.seeds[:2])
        out.write(_block("Ablation", render_ablation(ablation)))

    if cfg.telemetry:
        out.write(_block("Observability — instrumented QLEC run", telemetry_section(cfg)))

    return out.getvalue()


def telemetry_section(config: ReportConfig | None = None) -> str:
    """One instrumented Table-2 QLEC run, rendered as the phase/energy/
    drop breakdown (see docs/observability.md)."""
    from .sweep import run_cell
    from .tables import render_telemetry

    cfg = config if config is not None else ReportConfig()
    summary = run_cell(
        "qlec",
        mean_interarrival=cfg.lambdas[0],
        seed=cfg.seeds[0],
        telemetry=True,
    )
    header = (
        f"Table-2 scenario, protocol=qlec, lambda={cfg.lambdas[0]}, "
        f"seed={cfg.seeds[0]}\n\n"
    )
    return header + render_telemetry(summary["telemetry"])
