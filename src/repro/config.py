"""Simulation configuration for the QLEC reproduction.

This module is the single source of truth for every tunable the paper
exposes.  Table 2 of the paper ("Simulation Parameters") maps onto
:class:`PaperConfig`; every experiment driver and benchmark builds its
scenario from these dataclasses so that a change to one constant is
reflected everywhere.

Units
-----
The paper inherits the first-order radio model of Heinzelman et al.
(2002); all energies are in **joules**, distances in **meters** (the
paper says "units"; we treat one unit as one meter), packet sizes in
**bits**, and time in **rounds** subdivided into **slots**.
"""

from __future__ import annotations

import dataclasses
import math
import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # imported lazily to keep config dependency-free
    from .energy.harvesting import HarvestingConfig
    from .faults import FaultPlan
    from .network.mobility import MobilityConfig

__all__ = [
    "EQUIVALENCE_CHOICES",
    "ROUTING_CHOICES",
    "RadioConfig",
    "QLearningConfig",
    "TrafficConfig",
    "DeploymentConfig",
    "QueueConfig",
    "RoutingConfig",
    "SimulationConfig",
    "PaperConfig",
    "paper_config",
]

#: Numeric equivalence tiers a run may declare (single source of truth;
#: ``repro.kernels`` re-exports it).  ``bitwise`` is the CI-gated
#: default: every backend reproduces the numpy reference bit for bit.
#: ``statistical`` admits reassociating reducers and fastmath-compiled
#: kernels, verified distributionally (``repro.kernels.gates``) instead
#: of bitwise.
EQUIVALENCE_CHOICES = ("bitwise", "statistical")

#: Multi-hop routing substrates for the cluster-head uplink
#: (``repro.routing``).  ``direct`` is the bit-identical default: the
#: engine keeps today's behaviour (each protocol's own ``uplink_path``,
#: single CH->BS hop for most) and the substrate stays inert.  ``tree``
#: builds a cluster-tree over the CH overlay with mesh forwarding in
#: the local neighborhood; ``qspt`` learns a shortest-path tree with
#: distributed Q-learning.
ROUTING_CHOICES = ("direct", "tree", "qspt")


@dataclass(frozen=True)
class RoutingConfig:
    """Multi-hop uplink routing over the cluster-head overlay.

    Attributes
    ----------
    kind:
        One of :data:`ROUTING_CHOICES`.  Anything but ``direct`` arms
        the routing substrate: an energy-charged neighbor-discovery
        phase populates per-CH neighbor tables each round and the
        engine asks the active :class:`repro.routing.RoutingProtocol`
        for uplink paths instead of the clustering protocol.
    range_factor:
        Radio reach of a CH used for neighbor discovery, as a multiple
        of the radio's crossover distance ``d0`` (the same convention
        as the QELAR baseline).  Two CHs are overlay neighbors when
        their distance is within ``range_factor * d0``.
    hello_bits:
        Size of one HELLO/neighbor-table broadcast frame in bits.
        Discovery is billed to the energy ledger as ordinary radio
        tx/rx traffic, so multi-hop runs pay for their control plane.
    mesh:
        Tree routing only: when True a CH whose tree parent is
        unusable may forward across any live overlay neighbor that
        makes progress toward the BS (mesh repair) before falling back
        to a direct BS long shot.  False gives the tree-only
        comparator used by the chaos-partition acceptance test.
    qspt_episodes:
        Q-learning episodes per tree (re)build in ``qspt`` mode.
    qspt_epsilon:
        Exploration rate of the QSPT agent.
    qspt_learning_rate:
        Learning rate of the QSPT agent.
    """

    kind: str = "direct"
    range_factor: float = 2.0
    hello_bits: int = 256
    mesh: bool = True
    qspt_episodes: int = 60
    qspt_epsilon: float = 0.2
    qspt_learning_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_CHOICES:
            raise ValueError(
                f"routing kind must be one of {ROUTING_CHOICES}, "
                f"got {self.kind!r}"
            )
        if self.range_factor <= 0.0:
            raise ValueError("range_factor must be positive")
        if self.hello_bits < 1:
            raise ValueError("hello_bits must be >= 1")
        if self.qspt_episodes < 1:
            raise ValueError("qspt_episodes must be >= 1")
        if not 0.0 <= self.qspt_epsilon <= 1.0:
            raise ValueError("qspt_epsilon must lie in [0, 1]")
        if not 0.0 < self.qspt_learning_rate <= 1.0:
            raise ValueError("qspt_learning_rate must lie in (0, 1]")


@dataclass(frozen=True)
class RadioConfig:
    """First-order radio model constants (paper Eq. (6) and Eq. (18)).

    Attributes
    ----------
    e_elec:
        Energy dissipated per bit to run the transmitter or receiver
        circuit, in J/bit.  Heinzelman's canonical value is 50 nJ/bit.
    e_da:
        Data-aggregation cost expended at cluster heads, in J/bit.
        Canonical value 5 nJ/bit/signal.
    eps_fs:
        Free-space amplifier constant, J/bit/m^2.  Table 2 uses
        10 pJ/bit/m^2.
    eps_mp:
        Multi-path amplifier constant, J/bit/m^4.  Table 2 uses
        0.0013 pJ/bit/m^4.
    """

    e_elec: float = 50e-9
    e_da: float = 5e-9
    eps_fs: float = 10e-12
    eps_mp: float = 0.0013e-12

    def __post_init__(self) -> None:
        for name in ("e_elec", "e_da", "eps_fs", "eps_mp"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"radio constant {name!r} must be positive")

    @property
    def d0(self) -> float:
        """Crossover distance between free-space and multi-path regimes.

        ``d0 = sqrt(eps_fs / eps_mp)`` (paper, below Eq. (18)).
        """
        return math.sqrt(self.eps_fs / self.eps_mp)


@dataclass(frozen=True)
class QLearningConfig:
    """Q-learning hyper-parameters for the data-transmission phase.

    The reward weights come straight from Table 2:
    ``alpha1 = beta1 = 0.05`` weight residual energy and
    ``alpha2 = beta2 = 1.05`` weight transmission cost
    (Eqs. (17), (19), (20)).
    """

    gamma: float = 0.95
    alpha1: float = 0.05
    alpha2: float = 1.05
    beta1: float = 0.05
    beta2: float = 1.05
    #: Constant punishment ``-g`` applied to every transmission attempt.
    g: float = 0.1
    #: Arbitrarily-large penalty ``l`` for talking directly to the BS
    #: (Eq. (19)).  Large relative to the per-packet reward scale.
    bs_penalty: float = 100.0
    #: Number of expected-model sweeps per routing decision epoch; the
    #: paper iterates the Bellman backup of Eq. (15) until V converges.
    max_backups: int = 200
    #: Convergence tolerance on the sup-norm change of the V table.
    tol: float = 1e-6
    #: Energy normalisation applied to ``x(b_i)`` (residual energies are
    #: divided by this before entering the reward so the alpha/beta
    #: weights of Table 2 act on O(1) quantities).  ``None`` auto-scales
    #: by the network's mean initial energy, making x(.) start at 1.
    energy_scale: float | None = None
    #: Normalisation for the transmission cost ``y(b_i, h_j)``.  ``None``
    #: auto-scales by the amplifier energy of one packet at the radio's
    #: crossover distance d0, making y ~ O(1) for typical links.
    cost_scale: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if self.max_backups < 1:
            raise ValueError("max_backups must be >= 1")
        if self.tol <= 0.0:
            raise ValueError("tol must be positive")
        for name in ("alpha1", "alpha2", "beta1", "beta2"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"reward weight {name!r} must be >= 0")


@dataclass(frozen=True)
class TrafficConfig:
    """Poisson traffic model (paper §5.2).

    Packet generation in the network follows a Poisson process;
    ``mean_interarrival`` is the paper's lambda: the average packet
    inter-arrival time *per node* measured in slots.  Smaller values
    mean a more congested network.
    """

    mean_interarrival: float = 4.0
    #: Number of transmission slots per round; each slot a node may
    #: forward at most one packet.
    slots_per_round: int = 10
    #: Application payload size L in bits (Heinzelman uses 4000 bit
    #: packets; the paper never overrides this).
    packet_bits: int = 4000

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0.0:
            raise ValueError("mean_interarrival must be positive")
        if self.slots_per_round < 1:
            raise ValueError("slots_per_round must be >= 1")
        if self.packet_bits < 1:
            raise ValueError("packet_bits must be >= 1")

    @property
    def rate_per_slot(self) -> float:
        """Per-node packet arrival rate per slot (1 / lambda)."""
        return 1.0 / self.mean_interarrival


@dataclass(frozen=True)
class DeploymentConfig:
    """Node deployment in the M x M x M cube (paper §5.1)."""

    n_nodes: int = 100
    side: float = 200.0
    initial_energy: float = 5.0
    #: Base-station position; ``None`` places it at the cube centre,
    #: matching Figure 1 ("the green node in the center is the sink").
    bs_position: tuple[float, float, float] | None = None
    #: A node is considered dead once its residual energy falls below
    #: this "energy death line" (paper §5.1); the network dies when the
    #: first node crosses it.
    death_line: float = 0.0
    #: DEEC's heterogeneous setting (Qing et al. 2006): a fraction m of
    #: "advanced" nodes carries (1 + a) times the normal battery.
    #: Defaults reproduce the paper's homogeneous §5.1 scenario.
    advanced_fraction: float = 0.0
    advanced_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not 0.0 <= self.advanced_fraction <= 1.0:
            raise ValueError("advanced_fraction must lie in [0, 1]")
        if self.advanced_factor < 0.0:
            raise ValueError("advanced_factor must be >= 0")
        if self.side <= 0.0:
            raise ValueError("side must be positive")
        if self.initial_energy <= 0.0:
            raise ValueError("initial_energy must be positive")
        if self.death_line < 0.0:
            raise ValueError("death_line must be >= 0")
        if self.death_line >= self.initial_energy:
            raise ValueError("death_line must be below initial_energy")

    @property
    def bs(self) -> tuple[float, float, float]:
        if self.bs_position is not None:
            return self.bs_position
        half = self.side / 2.0
        return (half, half, half)


@dataclass(frozen=True)
class QueueConfig:
    """Finite cluster-head buffer (paper §5.2: "limited storage caches
    of cluster heads may lead to packet loss")."""

    capacity: int = 16
    #: How many queued packets a CH can serve (aggregate) per slot.
    service_rate: int = 8
    #: How many *direct* (unaggregated, contention-based) packets the
    #: base station accepts per slot.  Scheduled cluster-head uplinks
    #: of fused data are coordinated by the BS and do not contend.
    #: This models the paper's motivation for the penalty l: direct
    #: transmission "will aggravate the burden of the BS".
    bs_capacity_per_slot: int = 4

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be >= 0")
        if self.service_rate < 1:
            raise ValueError("service_rate must be >= 1")
        if self.bs_capacity_per_slot < 0:
            raise ValueError("bs_capacity_per_slot must be >= 0")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete scenario description consumed by the simulation engine."""

    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    qlearning: QLearningConfig = field(default_factory=QLearningConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    queue: QueueConfig = field(default_factory=QueueConfig)
    #: Total rounds R of the protocol (Table 2 runs R = 20).
    rounds: int = 20
    #: Data-fusion compression ratio at cluster heads (Table 2: 50 %).
    compression_ratio: float = 0.5
    #: Fusion model: "ratio" (Table 2's proportional compression),
    #: "perfect" (Heinzelman's assumption — any number of member
    #: packets fuses into ONE fixed-size uplink frame), or "none"
    #: (pure relaying, one uplink frame per member packet).
    aggregation: str = "ratio"
    #: Cluster count.  ``None`` derives k from Theorem 1; the paper pins
    #: k_opt ~= 5 for the 100-node cube.
    n_clusters: int | None = None
    #: Link-layer ARQ: how many times an unacknowledged *channel*
    #: failure is retransmitted (an explicit buffer-full rejection is
    #: not retried).  Applies identically to every protocol.
    max_retries: int = 2
    #: TTL for hop-by-hop (store-and-forward) routing: packets that
    #: accumulate this many radio hops expire.  Irrelevant to
    #: cluster-based protocols (their paths are 2-3 hops).
    max_hops: int = 12
    #: Optional node mobility (extension; §3.1 motivates rounds by
    #: mobility but the paper's evaluation is static).
    mobility: "MobilityConfig | None" = None
    #: Optional energy harvesting (extension; cf. the HyDRO citation).
    harvesting: "HarvestingConfig | None" = None
    #: Optional fault-injection plan (:class:`repro.faults.FaultPlan`).
    #: ``None`` — the default — is the bit-identical golden-trace path
    #: (the engine holds the inert NULL injector).  A plan, even an
    #: empty one, arms the degradation machinery (dead-head masking,
    #: bounded retry-with-backoff) and is part of run identity: the
    #: plan hashes into the config fingerprint and sharding cell IDs.
    faults: "FaultPlan | None" = None
    #: EWMA weight of the ACK-ratio link estimator (paper §4.2 / [2]).
    estimator_alpha: float = 0.08
    #: When True a target's ACK outcomes update every sender's estimate
    #: (its service ratio is effectively broadcast); False keeps the
    #: classical private per-pair estimate.
    estimator_shared: bool = True
    #: Kernel backend selector for the batched slot pipeline: "auto"
    #: (numba when installed, else the numpy reference), "numpy",
    #: "numba", or any name registered via
    #: :func:`repro.kernels.register_backend`.  Every backend is
    #: bit-identical by contract, so this changes wall-clock only —
    #: but the *resolved* name is part of run identity (manifests,
    #: sharding cell IDs) and therefore of the config fingerprint.
    backend: str = "auto"
    #: Numeric equivalence tier (see :data:`EQUIVALENCE_CHOICES`).
    #: ``bitwise`` (default) keeps the golden-trace guarantees: every
    #: kernel reproduces the numpy reference bit for bit.
    #: ``statistical`` licenses reassociating reducers (GEMM-form
    #: distances) and fastmath compilation; results are validated
    #: distributionally (per-metric means over seed batches within the
    #: declared tolerances of :mod:`repro.kernels.gates`) rather than
    #: bitwise.  The tier is part of run identity: it fingerprints,
    #: rides in manifests, and hashes into sharding cell IDs, so
    #: artifacts from different tiers never silently mix.
    equivalence: str = "bitwise"
    #: Memory budget (MiB) for the dense ``(senders, actions)`` distance
    #: blocks of the batched relay-scoring path.  ``None`` computes each
    #: block in one shot; a budget streams the block in row chunks
    #: sized to fit (bit-identical per row — the reduction is per
    #: element — so the bitwise tier is unaffected).  Large deployments
    #: (N >= 1e5) should set this to keep peak memory O(budget) instead
    #: of O(senders x actions).
    max_block_mb: float | None = None
    #: Multi-hop routing substrate for the CH uplink
    #: (:mod:`repro.routing`).  The default ``direct`` kind keeps the
    #: substrate inert — the NULL-substrate pattern shared with faults
    #: and telemetry — so golden traces stay bit-identical.  Like the
    #: backend and equivalence tier, routing is part of run identity:
    #: it fingerprints and hashes into sharding cell IDs.
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must lie in (0, 1]")
        if self.n_clusters is not None and self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1 when given")
        if self.aggregation not in ("ratio", "perfect", "none"):
            raise ValueError("aggregation must be 'ratio', 'perfect', or 'none'")
        if not 0.0 < self.estimator_alpha <= 1.0:
            raise ValueError("estimator_alpha must lie in (0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        # Free-form beyond the built-ins so registered third-party
        # backends work; resolution validates against the registry.
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty selector string")
        if self.equivalence not in EQUIVALENCE_CHOICES:
            raise ValueError(
                f"equivalence must be one of {EQUIVALENCE_CHOICES}, "
                f"got {self.equivalence!r}"
            )
        if self.max_block_mb is not None and self.max_block_mb <= 0.0:
            raise ValueError("max_block_mb must be positive when given")
        if not isinstance(self.routing, RoutingConfig):
            raise ValueError("routing must be a RoutingConfig instance")

    def replace(self, **changes) -> "SimulationConfig":
        """Return a copy with ``changes`` applied (nested keys allowed
        via the sub-config dataclasses)."""
        return dataclasses.replace(self, **changes)


def paper_config(
    mean_interarrival: float = 4.0,
    seed: int = 0,
    rounds: int = 20,
    initial_energy: float = 0.25,
    death_line: float = 0.0,
) -> SimulationConfig:
    """Scenario of Table 2 / §5.1: 100 nodes, 200^3 cube, k = 5.

    Parameters
    ----------
    mean_interarrival:
        The paper sweeps four congestion levels by varying lambda; pass
        the desired value here.
    seed:
        Seed for the deployment and every stochastic component.
    rounds:
        Successive rounds R (Table 2 uses 20).
    initial_energy:
        Per-node battery in joules.  The default 0.25 J is *calibrated*
        so the network's designed lifetime is on the order of R = 20
        rounds — the regime Eqs. (2) and (4) assume and the only one in
        which energy-aware head selection can matter within the run
        (see EXPERIMENTS.md, substitution notes).  Pass 5.0 for
        Table 2's literal value, under which every node is effectively
        immortal for 20 rounds with standard radio constants.
    death_line:
        Residual energy below which a node counts dead (§5.1's "energy
        death line").
    """
    return SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=100,
            side=200.0,
            initial_energy=initial_energy,
            death_line=death_line,
        ),
        radio=RadioConfig(),
        qlearning=QLearningConfig(),
        traffic=TrafficConfig(mean_interarrival=mean_interarrival),
        queue=QueueConfig(),
        rounds=rounds,
        compression_ratio=0.5,
        n_clusters=5,
        seed=seed,
    )


#: Alias used across examples/benchmarks for discoverability.
PaperConfig = paper_config
