"""Telemetry: phase timers, mergeable counters, self-describing runs.

The instrumentation layer behind the sweep-sharding and compiled-
backend roadmap items: before fanning cells across processes or
swapping kernels, we need to know where time, energy, and packets go —
per phase of the slot pipeline and per worker of the pool.

Three pieces:

* :mod:`~repro.telemetry.registry` — counters, gauges (commutative
  summaries), and fixed-bucket histograms, collected in a picklable,
  order-insensitively mergeable :class:`MetricRegistry`;
* :mod:`~repro.telemetry.timers` — :class:`Telemetry` (a registry plus
  a lap clock for phase attribution) and the :data:`NULL` disabled
  singleton whose hooks are no-ops, keeping the instrumented engine
  single-path and essentially free when telemetry is off;
* :mod:`~repro.telemetry.manifest` — config fingerprints and the
  run-manifest header that makes trace files self-describing;
* :mod:`~repro.telemetry.jsonl` — the shared torn-tail-tolerant JSONL
  reader and the optional gzip/zstd compression codecs every artifact
  writer and reader goes through.

See ``docs/observability.md`` for the metric-name taxonomy and the
trace JSONL schema.
"""

from .jsonl import (
    COMPRESSION_CHOICES,
    CompressionUnavailableError,
    JsonlWriter,
    detect_compression,
    read_jsonl_tolerant,
    read_text_tolerant,
    resolve_compression,
)
from .manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    SHARD_MANIFEST_KIND,
    config_fingerprint,
    run_manifest,
    shard_manifest,
    stable_fingerprint,
)
from .registry import (
    NONDETERMINISTIC_PREFIXES,
    TIME_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    deterministic_view,
    merge_snapshots,
)
from .timers import NULL, NullTelemetry, Telemetry
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    SpanTracer,
    merge_trace_summaries,
    read_trace_jsonl,
    rss_mb,
)

__all__ = [
    "COMPRESSION_CHOICES",
    "CompressionUnavailableError",
    "JsonlWriter",
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA",
    "NONDETERMINISTIC_PREFIXES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL",
    "NULL_TRACER",
    "NullTelemetry",
    "NullTracer",
    "SHARD_MANIFEST_KIND",
    "SpanTracer",
    "TIME_PREFIX",
    "TRACE_SCHEMA",
    "Telemetry",
    "config_fingerprint",
    "detect_compression",
    "deterministic_view",
    "merge_snapshots",
    "merge_trace_summaries",
    "read_jsonl_tolerant",
    "read_text_tolerant",
    "read_trace_jsonl",
    "resolve_compression",
    "rss_mb",
    "run_manifest",
    "shard_manifest",
    "stable_fingerprint",
]
