"""Self-describing run artifacts: config fingerprints and manifests.

A trace file or telemetry snapshot divorced from the scenario that
produced it is unreproducible; the manifest captures what a reader
needs to rerun the exact cell: protocol, seed, a stable fingerprint of
the full :class:`~repro.config.SimulationConfig`, and the package
version.  The manifest is the first line of every trace JSONL dump
(``kind: "manifest"``) and rides along in
``SimulationResult.extras["telemetry"]``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..config import SimulationConfig

__all__ = ["MANIFEST_KIND", "MANIFEST_SCHEMA", "config_fingerprint", "run_manifest"]

#: Discriminator value of the manifest header line in trace JSONL.
MANIFEST_KIND = "manifest"

#: Bump when manifest keys change incompatibly.
MANIFEST_SCHEMA = 1


def config_fingerprint(config: "SimulationConfig") -> str:
    """Stable 16-hex-digit digest of the complete scenario.

    Two configs fingerprint equal iff every tunable (nested sub-configs
    included) is equal — the seed included, since the seed is part of
    the scenario identity for reproduction purposes.
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_manifest(
    config: "SimulationConfig",
    protocol: str,
    extra: dict | None = None,
) -> dict:
    """Build the self-describing header for one simulation run."""
    from .. import __version__  # deferred: repro/__init__ imports the engine

    manifest = {
        "kind": MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "protocol": protocol,
        "seed": config.seed,
        "config_fingerprint": config_fingerprint(config),
        "n_nodes": config.deployment.n_nodes,
        "rounds": config.rounds,
        "mean_interarrival": config.traffic.mean_interarrival,
    }
    if extra:
        overlap = set(extra) & set(manifest)
        if overlap:
            raise ValueError(f"extra keys shadow manifest keys: {sorted(overlap)}")
        manifest.update(extra)
    return manifest
