"""Self-describing run artifacts: config fingerprints and manifests.

A trace file or telemetry snapshot divorced from the scenario that
produced it is unreproducible; the manifest captures what a reader
needs to rerun the exact cell: protocol, seed, a stable fingerprint of
the full :class:`~repro.config.SimulationConfig`, and the package
version.  The manifest is the first line of every trace JSONL dump
(``kind: "manifest"``) and rides along in
``SimulationResult.extras["telemetry"]``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..config import SimulationConfig

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA",
    "SHARD_MANIFEST_KIND",
    "config_fingerprint",
    "run_manifest",
    "shard_manifest",
    "stable_fingerprint",
]

#: Discriminator value of the manifest header line in trace JSONL.
MANIFEST_KIND = "manifest"

#: Discriminator value of the shard-artifact header line.
SHARD_MANIFEST_KIND = "shard-manifest"

#: Bump when manifest keys change incompatibly.
MANIFEST_SCHEMA = 1


def stable_fingerprint(payload) -> str:
    """Stable 16-hex-digit digest of any JSON-able payload.

    Canonicalised via sorted-key JSON, so two payloads fingerprint
    equal iff they are value-equal — independent of dict insertion
    order, process, or host.  This is the primitive behind config
    fingerprints, sweep-spec fingerprints, and shard cell IDs.
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def config_fingerprint(config: "SimulationConfig") -> str:
    """Stable 16-hex-digit digest of the complete scenario.

    Two configs fingerprint equal iff every tunable (nested sub-configs
    included) is equal — the seed included, since the seed is part of
    the scenario identity for reproduction purposes.
    """
    return stable_fingerprint(dataclasses.asdict(config))


def run_manifest(
    config: "SimulationConfig",
    protocol: str,
    extra: dict | None = None,
    backend: str | None = None,
) -> dict:
    """Build the self-describing header for one simulation run.

    ``backend`` is the *resolved* kernel-backend name the run executes
    on (the engine passes it); when omitted it is derived from
    ``config.backend`` — never recorded as ``"auto"``, so an artifact
    always names its concrete kernel provenance.  The versions of the
    numeric dependencies ride along (``backend_versions``): backends
    are bit-identical by contract, but a violated contract is only
    diagnosable if the artifact says what produced it.
    """
    from .. import __version__  # deferred: repro/__init__ imports the engine
    from ..kernels import backend_versions, resolve_backend_name

    manifest = {
        "kind": MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "protocol": protocol,
        "seed": config.seed,
        "config_fingerprint": config_fingerprint(config),
        "n_nodes": config.deployment.n_nodes,
        "rounds": config.rounds,
        "mean_interarrival": config.traffic.mean_interarrival,
        "backend": (
            backend
            if backend is not None
            else resolve_backend_name(config.backend)
        ),
        "equivalence": config.equivalence,
        "backend_versions": backend_versions(),
    }
    if extra:
        overlap = set(extra) & set(manifest)
        if overlap:
            raise ValueError(f"extra keys shadow manifest keys: {sorted(overlap)}")
        manifest.update(extra)
    return manifest


def shard_manifest(
    spec_payload: dict,
    spec_fingerprint: str,
    shard: int,
    num_shards: int,
    extra: dict | None = None,
) -> dict:
    """Build the self-describing header of one shard artifact.

    ``shard`` is 1-based (``shard/num_shards`` mirrors the CLI's
    ``--shard k/K``); the pair ``(0, 0)`` is reserved for *merged*
    artifacts, which cover an arbitrary subset of the grid rather than
    one hash-assigned shard — the work-stealing scheduler writes its
    whole-grid artifact under that marker, with its run parameters in
    an ``extra={"scheduler": ...}`` block.  ``extra`` keys must not
    shadow the core keys (same rule as :func:`run_manifest`), and they
    never participate in spec fingerprints: provenance, not identity.
    """
    from .. import __version__  # deferred: repro/__init__ imports the engine

    if (shard, num_shards) != (0, 0) and not 1 <= shard <= num_shards:
        raise ValueError(f"shard {shard}/{num_shards} out of range")
    manifest = {
        "kind": SHARD_MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "shard": shard,
        "num_shards": num_shards,
        "spec": dict(spec_payload),
        "spec_fingerprint": spec_fingerprint,
    }
    if extra:
        overlap = set(extra) & set(manifest)
        if overlap:
            raise ValueError(f"extra keys shadow manifest keys: {sorted(overlap)}")
        manifest.update(extra)
    return manifest
