"""Mergeable metric primitives: counters, gauges, histograms.

The sweep harness fans independent simulation cells out over a process
pool, so every metric here obeys the same contract as
:meth:`repro.network.packet.PacketStats.merge` and
:meth:`repro.network.packet.LatencyReservoir.merge`:

* **picklable** — plain attribute state, nothing process-local;
* **order-insensitively mergeable** — ``merge(a, b) == merge(b, a)``
  and merging an empty metric is the identity, so per-worker registries
  fold into one sweep-level view regardless of completion order.

That rules out "last value wins" gauges: the :class:`Gauge` here keeps
the commutative summary (count / total / min / max) of everything it
observed instead of a single latest reading.  Histograms use *fixed*
bucket edges chosen at creation so two workers' histograms are
bucket-wise addable.

Wall-clock metrics are deterministic in *structure* but not in value;
by convention every metric whose value is measured in seconds lives
under the ``time/`` name prefix, and :func:`deterministic_view` strips
that prefix so tests (and the pool-vs-serial equivalence guarantee) can
compare the remaining, fully deterministic counters exactly.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_snapshots",
    "deterministic_view",
]

#: Name prefix for wall-clock metrics, excluded from determinism checks.
TIME_PREFIX = "time/"


class Counter:
    """Monotone additive counter (int or float increments)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def add(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def copy(self) -> "Counter":
        return Counter(self.value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Counter":
        return cls(snap["value"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """Commutative observation summary: count, total, min, max.

    A classic "set the current value" gauge cannot merge
    order-insensitively (whose value is current?), so this gauge keeps
    the summary statistics of *every* observation instead; ``mean``
    recovers the typical reading.
    """

    kind = "gauge"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        self.count += v.size
        self.total += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Gauge") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "Gauge":
        g = Gauge()
        g.merge(self)
        return g

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"kind": self.kind, "count": 0, "total": 0.0,
                    "min": None, "max": None}
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Gauge":
        g = cls()
        if snap["count"]:
            g.count = snap["count"]
            g.total = snap["total"]
            g.min = snap["min"]
            g.max = snap["max"]
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gauge):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and (self.count == 0 or (self.min == other.min and self.max == other.max))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge(count={self.count}, mean={self.mean:.4g})"


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``edges`` are strictly increasing upper bounds: bucket ``i`` counts
    observations ``v`` with ``edges[i-1] < v <= edges[i]`` (the first
    bucket is ``v <= edges[0]``), and one extra overflow bucket counts
    ``v > edges[-1]``.  Because the edges are fixed at creation, two
    histograms with the same edges merge bucket-wise; merging different
    edges is a :class:`ValueError`, not a silent re-binning.
    """

    kind = "histogram"
    __slots__ = ("edges", "buckets", "count", "total")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if len(edges) == 0:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self.buckets = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.observe_many([value])

    def observe_many(self, values) -> None:
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.edges), v, side="left")
        counts = np.bincount(idx, minlength=len(self.buckets))
        for i, c in enumerate(counts):
            self.buckets[i] += int(c)
        self.count += v.size
        self.total += float(v.sum())

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        self.buckets = [a + b for a, b in zip(self.buckets, other.buckets)]
        self.count += other.count
        self.total += other.total

    def copy(self) -> "Histogram":
        h = Histogram(self.edges)
        h.merge(self)
        return h

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Histogram":
        h = cls(snap["edges"])
        h.buckets = list(snap["buckets"])
        h.count = snap["count"]
        h.total = snap["total"]
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.edges == other.edges
            and self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(edges={self.edges}, count={self.count})"


_KINDS = {m.kind: m for m in (Counter, Gauge, Histogram)}


class MetricRegistry:
    """Named collection of metrics with get-or-create accessors.

    The registry is the unit that crosses the process-pool boundary:
    it pickles as plain state and merges name-wise (union of names,
    metric-wise merge for shared names, kind mismatch is an error).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- accessors -----------------------------------------------------
    def _get_or_create(self, name: str, kind, *args):
        m = self._metrics.get(name)
        if m is None:
            m = kind(*args)
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, "
                f"not {kind.kind}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        h = self._get_or_create(name, Histogram, edges)
        if h.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {h.edges}"
            )
        return h

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    # -- merge / snapshot ----------------------------------------------
    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold ``other`` in (union of names); returns self."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = metric.copy()
            elif mine.kind != metric.kind:
                raise TypeError(
                    f"metric {name!r} kind mismatch: {mine.kind} vs {metric.kind}"
                )
            else:
                mine.merge(metric)
        return self

    def snapshot(self) -> dict:
        """Plain JSON-able dict, keys sorted for deterministic output."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "MetricRegistry":
        reg = cls()
        for name, m in snap.items():
            reg._metrics[name] = _KINDS[m["kind"]].from_snapshot(m)
        return reg

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricRegistry):
            return NotImplemented
        return self._metrics == other._metrics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricRegistry({self.names()})"


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge snapshot dicts (as produced by :meth:`MetricRegistry.snapshot`).

    Commutative and associative, with ``{}`` as the identity — the
    reduction the sweep harness runs over per-worker telemetry.
    """
    merged = MetricRegistry()
    for snap in snapshots:
        merged.merge(MetricRegistry.from_snapshot(snap))
    return merged.snapshot()


#: Metric-name prefixes that are wall-clock or host-dependent and are
#: therefore stripped by :func:`deterministic_view`: ``time/`` (wall
#: seconds), ``mem/`` (memory-report samples), and ``prof/rss`` (RSS
#: samples).  Everything else — including the ``prof/kernels/``
#: invocation/element/byte counters — must be a pure function of the
#: seeded RNG streams.  Documented in docs/observability.md.
NONDETERMINISTIC_PREFIXES = (TIME_PREFIX, "mem/", "prof/rss")


def deterministic_view(snapshot: Mapping) -> dict:
    """The snapshot minus wall-clock-adjacent metrics.

    Strips every name matching :data:`NONDETERMINISTIC_PREFIXES`.
    Everything that remains is a pure function of the simulation's
    seeded RNG streams, so a pool sweep and a serial sweep must agree
    on it exactly — profiling enabled or not.
    """
    return {
        name: dict(m) for name, m in snapshot.items()
        if not name.startswith(NONDETERMINISTIC_PREFIXES)
    }
