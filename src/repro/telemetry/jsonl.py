"""Compressed, torn-tail-tolerant JSONL: the one reader all artifacts share.

Every durable artifact in this repo — shard artifacts, trace dumps,
status sidecars — is JSONL written append-and-flush, so a crash leaves
at most one partial trailing line.  Before this module each reader
re-implemented the same tolerance inline; now they share one
primitive, and it additionally understands *compressed* streams:

* ``gz`` — gzip members via the stdlib (always available);
* ``zst`` — zstandard frames via the optional ``zstandard`` package
  (or the stdlib ``compression.zstd`` on Python >= 3.14).  When
  neither is importable, requesting ``zst`` raises
  :class:`CompressionUnavailableError` with the remedy spelled out;
  ``"auto"`` degrades to ``gz`` instead.

Readers never need to be told the codec: :func:`detect_compression`
sniffs the magic bytes (zstd ``28 B5 2F FD``, gzip ``1F 8B``), so a
merge can be handed any mix of plain and compressed artifacts.

Torn tails generalise to compressed streams: a process killed
mid-write leaves a truncated final member/frame, and
:func:`read_text_tolerant` feeds an incremental decompressor and keeps
every byte it produced before the stream broke off — the partial tail
then falls to the same drop-the-last-line rule as a plain torn line.
Both gzip and zstd allow *concatenated* members, which is what makes
append-after-atomic-rewrite (the shard resume protocol) work on
compressed artifacts: the retained prefix is one member, each
append session starts another.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from pathlib import Path

__all__ = [
    "COMPRESSION_CHOICES",
    "CompressionUnavailableError",
    "JsonlWriter",
    "compression_suffix",
    "detect_compression",
    "read_jsonl_tolerant",
    "read_text_tolerant",
    "resolve_compression",
    "zstd_module",
]

#: Codec selectors accepted by writers; ``"auto"`` resolves to the best
#: available compressed codec (zst when importable, else gz).
COMPRESSION_CHOICES = ("auto", "none", "gz", "zst")

_MAGIC_ZSTD = b"\x28\xb5\x2f\xfd"
_MAGIC_GZIP = b"\x1f\x8b"


class CompressionUnavailableError(RuntimeError):
    """An explicitly requested codec this host cannot provide."""


def zstd_module():
    """The zstandard binding to use, or ``None`` when absent.

    Prefers the third-party ``zstandard`` package and falls back to the
    stdlib ``compression.zstd`` (Python >= 3.14).  Both expose the
    ``ZstdCompressor``/``ZstdDecompressor`` API surface used here.
    """
    try:
        import zstandard

        return zstandard
    except ImportError:
        pass
    try:
        from compression import zstd as _stdlib_zstd  # Python >= 3.14

        return _stdlib_zstd
    except ImportError:
        return None


def resolve_compression(compression: str | None) -> str:
    """Resolve a selector to a concrete codec name (never ``"auto"``).

    ``None`` means ``"none"``; ``"auto"`` prefers zstd and degrades to
    gzip when no zstd binding is importable; an explicit ``"zst"``
    without a binding raises — mirroring the kernel-backend policy
    (auto degrades, explicit requests fail loudly).
    """
    if compression is None:
        return "none"
    if compression not in COMPRESSION_CHOICES:
        raise ValueError(
            f"compression must be one of {COMPRESSION_CHOICES}, "
            f"got {compression!r}"
        )
    if compression == "auto":
        return "zst" if zstd_module() is not None else "gz"
    if compression == "zst" and zstd_module() is None:
        raise CompressionUnavailableError(
            "zstd compression requested but no zstd binding is available; "
            "install the 'zstandard' package (pip install zstandard) or "
            "use --compress gz / --compress auto"
        )
    return compression


def compression_suffix(codec: str) -> str:
    """The filename suffix a codec appends (``""`` for ``none``)."""
    return {"none": "", "gz": ".gz", "zst": ".zst"}[codec]


def detect_compression(path) -> str:
    """Sniff a file's codec from its magic bytes (``none``/``gz``/``zst``).

    Falls back to the filename suffix when the file does not exist yet
    (a writer choosing the codec for a path it is about to create).
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            head = fh.read(4)
    except FileNotFoundError:
        name = path.name
        if name.endswith(".zst"):
            return "zst"
        if name.endswith(".gz"):
            return "gz"
        return "none"
    if head[:4] == _MAGIC_ZSTD:
        return "zst"
    if head[:2] == _MAGIC_GZIP:
        return "gz"
    return "none"


# ---------------------------------------------------------------------------
# Tolerant reading
# ---------------------------------------------------------------------------


def _decompress_gzip_tolerant(data: bytes) -> bytes:
    """Inflate concatenated gzip members, keeping bytes up to a torn tail."""
    out = bytearray()
    while data:
        obj = zlib.decompressobj(wbits=31)  # 31 = gzip wrapper
        try:
            out += obj.decompress(data)
            out += obj.flush()
        except zlib.error:
            break  # torn final member: keep what it produced so far
        if not obj.eof:
            break  # stream ended mid-member (crash mid-flush)
        data = obj.unused_data
    return bytes(out)


def _decompress_zstd_tolerant(data: bytes) -> bytes:
    """Decompress concatenated zstd frames, keeping bytes up to a torn tail."""
    zstd = zstd_module()
    if zstd is None:  # pragma: no cover - callers sniffed a zstd file
        raise CompressionUnavailableError(
            "cannot read a zstd-compressed artifact: no zstd binding is "
            "available (pip install zstandard)"
        )
    out = bytearray()
    while data:
        obj = zstd.ZstdDecompressor().decompressobj()
        try:
            out += obj.decompress(data)
        except Exception:  # zstd.ZstdError; keep the partial tail
            break
        tail = getattr(obj, "unused_data", b"")
        if not tail or tail == data:
            break
        data = tail
    return bytes(out)


def read_text_tolerant(path) -> str:
    """The decoded text of a (possibly compressed) artifact.

    Codec is sniffed from magic bytes; a truncated compressed tail is
    decoded as far as the stream allows, exactly like a torn plain-text
    line — the caller's line-level tolerance then applies unchanged.
    """
    path = Path(path)
    raw = path.read_bytes()
    codec = (
        "zst" if raw[:4] == _MAGIC_ZSTD
        else "gz" if raw[:2] == _MAGIC_GZIP
        else "none"
    )
    if codec == "gz":
        raw = _decompress_gzip_tolerant(raw)
    elif codec == "zst":
        raw = _decompress_zstd_tolerant(raw)
    return raw.decode("utf-8", errors="replace")


def read_jsonl_tolerant(path) -> list[dict]:
    """Parse a (possibly compressed) JSONL artifact, dropping a torn tail.

    The shared contract of every artifact reader in the repo: a crash
    mid-append leaves at most one partial trailing line, which is
    silently dropped; a malformed line anywhere *else* is data
    corruption and raises ``ValueError``.
    """
    path = Path(path)
    lines = read_text_tolerant(path).splitlines()
    parsed: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a crash mid-write
            raise ValueError(
                f"{path}: malformed JSONL at line {i + 1}"
            ) from None
    return parsed


# ---------------------------------------------------------------------------
# Streaming writes
# ---------------------------------------------------------------------------


class JsonlWriter:
    """Append-and-flush JSONL writer over an optional compressed codec.

    The durability contract matches the plain-text writers it replaces:
    :meth:`flush` pushes every written line into the OS file (for gzip
    via a ``Z_SYNC_FLUSH`` point, for zstd via ``flush(FLUSH_BLOCK)``),
    so a reader — or a crash — sees complete lines, never buffered
    ones.  ``append=True`` starts a *new* member/frame after existing
    bytes, which concatenated-stream decompressors (and
    :func:`read_text_tolerant`) handle natively.
    """

    def __init__(self, path, *, compression: str = "none", append: bool = False):
        if compression in (None, "auto") or compression not in (
            "none", "gz", "zst"
        ):
            raise ValueError(
                "JsonlWriter needs a resolved codec ('none', 'gz', 'zst'); "
                f"got {compression!r} — call resolve_compression() first"
            )
        self.path = Path(path)
        self.compression = compression
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._raw = open(self.path, "ab" if append else "wb")
        if compression == "gz":
            # mtime=0 and an empty FNAME keep the bytes a pure function
            # of the payload — else the header would embed the wall
            # clock and the output path, and the byte-equality
            # determinism gates would fail across paths and runs.
            self._stream = gzip.GzipFile(
                filename="", fileobj=self._raw, mode="wb", mtime=0
            )
        elif compression == "zst":
            zstd = zstd_module()
            if zstd is None:
                self._raw.close()
                raise CompressionUnavailableError(
                    "zstd compression requested but no zstd binding is "
                    "available (pip install zstandard)"
                )
            self._zstd = zstd
            self._stream = zstd.ZstdCompressor().stream_writer(
                self._raw, closefd=False
            )
        else:
            self._stream = None

    def write_record(self, record: dict) -> None:
        self.write_line(json.dumps(record, sort_keys=True))

    def write_line(self, text: str) -> None:
        data = (text + "\n").encode("utf-8")
        if self._stream is None:
            self._raw.write(data)
        else:
            self._stream.write(data)

    def flush(self, *, fsync: bool = False) -> None:
        if self._stream is not None:
            if self.compression == "gz":
                self._stream.flush(zlib.Z_SYNC_FLUSH)
            else:
                self._stream.flush(self._zstd.FLUSH_BLOCK)
        self._raw.flush()
        if fsync:
            os.fsync(self._raw.fileno())

    def close(self, *, fsync: bool = False) -> None:
        if self._stream is not None:
            if self.compression == "zst":
                self._stream.flush(self._zstd.FLUSH_FRAME)
            self._stream.close()
        self._raw.flush()
        if fsync:
            os.fsync(self._raw.fileno())
        self._raw.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
