"""Hierarchical span tracing: run → round → phase → kernel call.

The aggregate counters of :mod:`~repro.telemetry.registry` answer
*how much* — this module answers *when* and *inside what*.  A
:class:`SpanTracer` records a bounded in-memory stream of events:

* **spans** — intervals with an identity, a parent, and a category:
  the whole ``run``, each ``round``, the lap-clock ``phase`` segments
  inside it, and each ``kernel`` backend invocation (recorded by
  :class:`~repro.kernels.profiling.ProfiledBackend`);
* **instants** — zero-duration marks: fault-injection/recovery events
  (emitted by the injector's accounting hook, so they land inside the
  round span that applied them) and periodic memory samples.

Span *identities* are deterministic: IDs are a sequential counter in
event order, and the engine's event order is a pure function of the
run (only the ``ts``/``dur`` wall-clock fields vary between two runs
of the same cell).  The buffer is bounded (:attr:`SpanTracer.max_events`);
overflow drops new events and counts them in :attr:`SpanTracer.dropped`
rather than growing without limit on a million-node run.

Exports:

* :meth:`SpanTracer.write_jsonl` — manifest-headed JSONL (``span`` /
  ``instant`` rows plus a ``trace-summary`` trailer), schema-linted by
  ``scripts/check_docs_jsonl.py`` like every other artifact format;
* :meth:`SpanTracer.write_chrome` — Chrome trace-event JSON loadable
  in Perfetto / ``chrome://tracing`` (``ph: "X"`` complete spans and
  ``ph: "i"`` instants, microsecond timestamps).

The PR 2 contract applies unchanged: the engine holds the
:data:`NULL_TRACER` no-op singleton by default, no hook ever touches a
simulation RNG stream, and the disabled-path cost is covered by the
<2 % overhead guard in ``benchmarks/test_bench_micro.py``.  The
deterministic part of a trace (the :meth:`SpanTracer.summary` name
counts) merges order-insensitively via :func:`merge_trace_summaries`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from .manifest import MANIFEST_KIND

__all__ = [
    "INSTANT_KIND",
    "NULL_TRACER",
    "NullTracer",
    "SPAN_KIND",
    "SpanTracer",
    "TRACE_SCHEMA",
    "TRACE_SUMMARY_KIND",
    "merge_trace_summaries",
    "read_trace_jsonl",
    "rss_mb",
]

#: Record discriminators inside a trace JSONL dump (after the manifest).
SPAN_KIND = "span"
INSTANT_KIND = "instant"
TRACE_SUMMARY_KIND = "trace-summary"

#: Bump when span/instant/summary keys change incompatibly.
TRACE_SCHEMA = 1

#: Default event-buffer bound; ~55 MB of dicts at the default, far
#: above a chaos scenario (< 10k events) but a hard ceiling for a
#: long large-N run with kernel spans on.
DEFAULT_MAX_EVENTS = 200_000


def rss_mb() -> float | None:
    """Resident-set size of this process in MiB, or None off-Linux.

    Reads ``/proc/self/statm`` (no dependencies); falls back to
    ``getrusage`` peak RSS.  Wall-clock-adjacent by nature — values
    recorded from it live under the ``prof/rss`` / ``mem/`` prefixes
    that :func:`~repro.telemetry.registry.deterministic_view` strips.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 2**20
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:  # pragma: no cover - exotic platforms
        return None


class SpanTracer:
    """Records hierarchical spans and instants into a bounded buffer.

    Parenting: :meth:`begin`/:meth:`end` maintain an explicit stack
    (run, round); :meth:`lap` emits retrospective *phase* spans
    covering the time since the previous lap marker (piggybacking on
    the engine's existing lap-clock sites) parented to the stack top;
    :meth:`kernel` spans are re-parented to the phase span that closes
    over them (the next ``lap`` call), since a phase span only comes
    into existence *after* the kernels it contains have run.
    """

    enabled = True

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        manifest: dict | None = None,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        #: Run manifest emitted as the JSONL header (the engine fills
        #: this in when it builds its own manifest).
        self.manifest = manifest
        self.events: list[dict] = []
        self.dropped = 0
        self._next_id = 1
        #: Open spans: (id, name, cat, t0, parent_id, args).
        self._stack: list[tuple] = []
        #: Kernel events awaiting re-parent to the next phase span.
        self._pending: list[dict] = []
        self._epoch: float | None = None
        self._t_last: float | None = None

    # -- clock ---------------------------------------------------------
    @staticmethod
    def now() -> float:
        return perf_counter()

    def _ts(self, t: float) -> float:
        if self._epoch is None:
            self._epoch = t
        return t - self._epoch

    def _emit(self, ev: dict) -> dict | None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        self.events.append(ev)
        return ev

    def _parent(self) -> int | None:
        return self._stack[-1][0] if self._stack else None

    # -- explicit spans (run, round) -----------------------------------
    def begin(self, name: str, cat: str = "span", args: dict | None = None) -> int:
        """Open a span; returns its deterministic ID."""
        t0 = self.now()
        if self._epoch is None:
            self._epoch = t0
        sid = self._next_id
        self._next_id += 1
        # The span being opened is not yet on the stack, so the current
        # top is its parent.
        self._stack.append((sid, name, cat, t0, self._parent(), args))
        return sid

    def end(self) -> int:
        """Close the innermost open span; returns its ID."""
        if not self._stack:
            raise RuntimeError("SpanTracer.end() with no open span")
        now = self.now()
        sid, name, cat, t0, parent, args = self._stack.pop()
        ev = {
            "kind": SPAN_KIND,
            "id": sid,
            "parent": parent,
            "name": name,
            "cat": cat,
            "ts": self._ts(t0),
            "dur": now - t0,
        }
        if args:
            ev["args"] = dict(args)
        self._emit(ev)
        return sid

    # -- lap-clock phase spans -----------------------------------------
    def lap_start(self) -> None:
        """Arm the lap clock (start of a round)."""
        t = self.now()
        if self._epoch is None:
            self._epoch = t
        self._t_last = t

    def lap(self, phase: str) -> None:
        """Emit a phase span covering time since the previous marker."""
        now = self.now()
        t_last = self._t_last if self._t_last is not None else now
        sid = self._next_id
        self._next_id += 1
        ev = {
            "kind": SPAN_KIND,
            "id": sid,
            "parent": self._parent(),
            "name": phase,
            "cat": "phase",
            "ts": self._ts(t_last),
            "dur": now - t_last,
        }
        self._emit(ev)
        # Kernel calls since the previous marker ran *inside* this
        # phase segment; adopt them now that the segment has an ID.
        for kev in self._pending:
            kev["parent"] = sid
        self._pending.clear()
        self._t_last = now

    # -- kernel + instant hooks ----------------------------------------
    def kernel(
        self, method: str, t0: float, dur: float, elements: int, nbytes: int
    ) -> None:
        """Record one kernel-backend invocation (called by
        :class:`~repro.kernels.profiling.ProfiledBackend`)."""
        if self._epoch is None:
            self._epoch = t0
        sid = self._next_id
        self._next_id += 1
        ev = {
            "kind": SPAN_KIND,
            "id": sid,
            "parent": self._parent(),
            "name": method,
            "cat": "kernel",
            "ts": self._ts(t0),
            "dur": dur,
            "args": {"elements": int(elements), "bytes": int(nbytes)},
        }
        emitted = self._emit(ev)
        if emitted is not None:
            self._pending.append(emitted)

    def instant(self, name: str, cat: str = "event", args: dict | None = None) -> None:
        """Record a zero-duration mark parented to the open span."""
        t = self.now()
        if self._epoch is None:
            self._epoch = t
        sid = self._next_id
        self._next_id += 1
        ev = {
            "kind": INSTANT_KIND,
            "id": sid,
            "parent": self._parent(),
            "name": name,
            "cat": cat,
            "ts": self._ts(t),
        }
        if args:
            ev["args"] = dict(args)
        self._emit(ev)

    # -- export --------------------------------------------------------
    def summary(self) -> dict:
        """Deterministic trailer: event counts by span/instant name.

        Everything here is structure (a pure function of the run), so
        summaries from two shards merge order-insensitively
        (:func:`merge_trace_summaries`) — unlike ``ts``/``dur``.
        """
        spans: dict[str, int] = {}
        instants: dict[str, int] = {}
        for ev in self.events:
            d = spans if ev["kind"] == SPAN_KIND else instants
            d[ev["name"]] = d.get(ev["name"], 0) + 1
        return {
            "kind": TRACE_SUMMARY_KIND,
            "schema": TRACE_SCHEMA,
            "events": len(self.events),
            "dropped": self.dropped,
            "spans_by_name": {k: spans[k] for k in sorted(spans)},
            "instants_by_name": {k: instants[k] for k in sorted(instants)},
        }

    def to_jsonl(self) -> str:
        lines = []
        if self.manifest is not None:
            lines.append(json.dumps(self.manifest, sort_keys=True))
        lines.extend(json.dumps(ev, sort_keys=True) for ev in self.events)
        lines.append(json.dumps(self.summary(), sort_keys=True))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> Path:
        """Atomically write the manifest-headed JSONL span dump."""
        return _atomic_write_text(path, self.to_jsonl())

    def chrome_events(self) -> list[dict]:
        """The event stream in Chrome trace-event form.

        ``ph: "X"`` complete spans and ``ph: "i"`` thread-scoped
        instants, timestamps/durations in microseconds, sorted by
        ``ts`` (monotone per thread — everything runs on tid 0, which
        is also what lets Perfetto nest spans by time containment).
        """
        meta = [
            {
                "ph": "M", "pid": 0, "tid": 0, "ts": 0,
                "name": "process_name", "args": {"name": "repro"},
            },
            {
                "ph": "M", "pid": 0, "tid": 0, "ts": 0,
                "name": "thread_name", "args": {"name": "engine"},
            },
        ]
        out = []
        for ev in self.events:
            args = dict(ev.get("args") or {})
            args["id"] = ev["id"]
            if ev["parent"] is not None:
                args["parent"] = ev["parent"]
            ce = {
                "pid": 0,
                "tid": 0,
                "name": ev["name"],
                "cat": ev["cat"],
                "ts": round(ev["ts"] * 1e6, 3),
                "args": args,
            }
            if ev["kind"] == SPAN_KIND:
                ce["ph"] = "X"
                ce["dur"] = round(ev["dur"] * 1e6, 3)
            else:
                ce["ph"] = "i"
                ce["s"] = "t"
            out.append(ce)
        out.sort(key=lambda e: e["ts"])
        return meta + out

    def to_chrome(self) -> str:
        return json.dumps(
            {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        )

    def write_chrome(self, path) -> Path:
        """Atomically write the Perfetto-loadable Chrome trace JSON."""
        return _atomic_write_text(path, self.to_chrome() + "\n")


class NullTracer:
    """Disabled tracer: every hook is a no-op (the PR 2 NULL pattern).

    The engine holds this singleton when no tracer is attached, so the
    instrumented code stays single-path; the disabled cost per marker
    is one attribute lookup plus one no-op call, covered by the
    overhead guard in ``benchmarks/test_bench_micro.py``.
    """

    enabled = False
    manifest = None
    events: list = []
    dropped = 0

    def begin(self, name: str, cat: str = "span", args: dict | None = None) -> int:
        return 0

    def end(self) -> int:
        return 0

    def lap_start(self) -> None:
        pass

    def lap(self, phase: str) -> None:
        pass

    def kernel(
        self, method: str, t0: float, dur: float, elements: int, nbytes: int
    ) -> None:
        pass

    def instant(self, name: str, cat: str = "event", args: dict | None = None) -> None:
        pass

    @staticmethod
    def now() -> float:
        return 0.0


#: Shared disabled-tracer singleton.
NULL_TRACER = NullTracer()


def merge_trace_summaries(*summaries: dict) -> dict:
    """Fold ``trace-summary`` records order-insensitively.

    Commutative and associative with the empty summary as identity —
    the same contract as :func:`~repro.telemetry.registry.merge_snapshots`,
    so per-shard deterministic trace structure folds fleet-wide.
    """
    events = dropped = 0
    spans: dict[str, int] = {}
    instants: dict[str, int] = {}
    for s in summaries:
        events += s.get("events", 0)
        dropped += s.get("dropped", 0)
        for k, v in s.get("spans_by_name", {}).items():
            spans[k] = spans.get(k, 0) + v
        for k, v in s.get("instants_by_name", {}).items():
            instants[k] = instants.get(k, 0) + v
    return {
        "kind": TRACE_SUMMARY_KIND,
        "schema": TRACE_SCHEMA,
        "events": events,
        "dropped": dropped,
        "spans_by_name": {k: spans[k] for k in sorted(spans)},
        "instants_by_name": {k: instants[k] for k in sorted(instants)},
    }


def read_trace_jsonl(path) -> dict:
    """Parse a span dump back into ``{"manifest", "events", "summary"}``.

    Reads through the shared tolerant JSONL reader
    (:func:`repro.telemetry.jsonl.read_jsonl_tolerant`), so a torn
    final line (crash mid-write) — or a truncated compressed tail — is
    dropped like in every other artifact reader in the repo; a
    manifest anywhere but record one is an error.
    """
    from .jsonl import read_jsonl_tolerant

    manifest = None
    summary = None
    events: list[dict] = []
    for i, obj in enumerate(read_jsonl_tolerant(path)):
        kind = obj.get("kind")
        if kind == MANIFEST_KIND:
            if i != 0:
                raise ValueError(f"{path}: manifest must be the first line")
            manifest = obj
        elif kind in (SPAN_KIND, INSTANT_KIND):
            events.append(obj)
        elif kind == TRACE_SUMMARY_KIND:
            summary = obj
        else:
            raise ValueError(
                f"{path}: unknown record kind {kind!r} at record {i + 1}"
            )
    return {"manifest": manifest, "events": events, "summary": summary}


def _atomic_write_text(path, text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
    return path
