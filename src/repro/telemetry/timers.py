"""Phase timers: wall-clock attribution for the slot pipeline.

The engine's hot loop cannot afford context-manager churn per phase,
so timing uses a *lap clock*: :meth:`Telemetry.lap_start` arms the
clock and every :meth:`Telemetry.lap` call attributes the time elapsed
since the previous marker to a named phase counter
(``time/phase/<name>``).  Markers placed contiguously over a round
partition its wall time, so per-phase totals sum to ~100 % of the
round — the property the observability acceptance check relies on.

When telemetry is off the engine holds the shared :data:`NULL`
singleton instead of a real :class:`Telemetry`; every hook on it is a
``pass``-body method, so the disabled cost of an instrumented phase is
one attribute lookup plus one no-op call (nanoseconds against a
multi-millisecond round — see the guard in
``benchmarks/test_bench_micro.py``).  Crucially no hook ever touches a
simulation RNG stream, so enabling telemetry cannot perturb a run:
golden traces and the scalar/batched equivalence stay bit-identical.
"""

from __future__ import annotations

from time import perf_counter

from .registry import Counter, Gauge, Histogram, MetricRegistry

__all__ = ["Telemetry", "NullTelemetry", "NULL"]


class _Span:
    """Context manager timing one block into a ``time/...`` counter."""

    __slots__ = ("_counter", "_t0")

    def __init__(self, counter: Counter) -> None:
        self._counter = counter
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._counter.add(perf_counter() - self._t0)


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Live instrumentation handle: a metric registry plus lap clock.

    Pass one to :class:`~repro.simulation.engine.SimulationEngine`
    (or ``run_cell(..., telemetry=True)``) to collect phase timings
    and pipeline counters; read them back with :meth:`snapshot`.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        profile_kernels: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        #: Opt-in kernel profiling: when True the engine wraps its
        #: backend in :class:`~repro.kernels.profiling.ProfiledBackend`
        #: so per-kernel ``prof/kernels/*`` counters and
        #: ``time/kernel/*`` wall-clock accumulate here.  Opt-in
        #: because kernel *call counts* differ between the scalar and
        #: batched engine paths — with profiling off, their
        #: deterministic views stay exactly equal.
        self.profile_kernels = bool(profile_kernels)
        self._t_last = 0.0
        #: Phase-name -> counter cache so the hot path skips the
        #: registry dict and string concatenation after first use.
        self._phase_cache: dict[str, Counter] = {}

    # -- clock ---------------------------------------------------------
    @staticmethod
    def now() -> float:
        return perf_counter()

    def lap_start(self) -> None:
        """Arm the lap clock (start of a round)."""
        self._t_last = perf_counter()

    def lap(self, phase: str) -> None:
        """Attribute time since the previous marker to ``phase``."""
        now = perf_counter()
        c = self._phase_cache.get(phase)
        if c is None:
            c = self.registry.counter("time/phase/" + phase)
            self._phase_cache[phase] = c
        c.add(now - self._t_last)
        self._t_last = now

    def span(self, name: str) -> _Span:
        """Time a ``with`` block into counter ``time/<name>``."""
        return _Span(self.registry.counter("time/" + name))

    # -- registry passthrough ------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str, edges) -> Histogram:
        return self.registry.histogram(name, edges)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def merge(self, other: "Telemetry") -> "Telemetry":
        self.registry.merge(other.registry)
        return self


class NullTelemetry:
    """Disabled telemetry: every hook is a no-op.

    The engine unconditionally calls ``lap_start``/``lap`` on its
    telemetry handle; holding this singleton instead of branching keeps
    the instrumented code single-path while costing only a no-op call
    per marker when telemetry is off.  Code that would *allocate*
    (round-end counter rollups) must still guard on ``enabled``.
    """

    enabled = False
    registry = None
    profile_kernels = False

    def lap_start(self) -> None:
        pass

    def lap(self, phase: str) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    @staticmethod
    def now() -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}


#: Shared disabled-telemetry singleton.
NULL = NullTelemetry()
