"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``quickstart``   one Table-2 run per protocol, printed side by side
``fig3``         regenerate the three panels of Fig. 3
``fig4``         the large-scale dataset evenness report (Fig. 4)
``kopt``         Theorem-1 / Lemma-1 validation
``complexity``   the O(RN) / O(kX) measurements (§4.3)
``ablation``     QLEC design-choice ablation
``lifespan``     alive-node curves + FND/HND/LND milestones
``convergence``  Theorem-3 X measurement (expected vs sampled backups)
``sensitivity``  QLEC hyperparameter robustness sweep
``scenario``     run one protocol on a named scenario from the catalog
``resume``       finish a checkpointed run from an engine snapshot
``sweep``        run one shard of a sweep grid into a JSONL artifact
``serve``        long-running scheduler over a directory of job files
``status``       render the live progress of sharded sweep invocations
``merge``        fold shard artifacts back into one sweep
``report``       run everything and write REPORT.md
``version``      package version plus kernel-dependency provenance
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _version_text() -> str:
    from . import __version__
    from .kernels import backend_versions

    deps = ", ".join(
        f"{name} {ver if ver is not None else 'absent'}"
        for name, ver in sorted(backend_versions().items())
    )
    return f"repro {__version__} ({deps})"


class _VersionAction(argparse.Action):
    """``--version`` ahead of subcommand dispatch (argparse's built-in
    'version' action would need the string eagerly; the kernel-registry
    import stays deferred this way)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(_version_text())
        parser.exit(0)


def _add_backend_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--backend", type=str, default="auto",
        choices=("auto", "numpy", "numba"),
        help="kernel backend for the batched slot pipeline; 'auto' "
             "prefers the compiled backend and falls back to the numpy "
             "reference (bit-identical under the default tier)",
    )
    cmd.add_argument(
        "--equivalence", type=str, default="bitwise",
        choices=("bitwise", "statistical"),
        help="numeric equivalence tier: 'bitwise' (default) guarantees "
             "bit-identical results across backends and admits golden "
             "traces; 'statistical' licenses reassociated/fastmath "
             "kernels validated distributionally (see docs/kernels.md)",
    )
    cmd.add_argument(
        "--max-block-mb", type=float, default=None, metavar="MB",
        help="stream the relay-scoring distance block in chunks so its "
             "temporaries stay under this budget (large-N runs); "
             "bit-identical to the unblocked computation",
    )


def _add_routing_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--routing", type=str, default="direct",
        choices=("direct", "tree", "qspt"),
        help="multi-hop routing substrate: 'direct' (default) keeps the "
             "single-hop CH->BS uplink bit-identical to committed golden "
             "traces; 'tree' builds an ETX cluster tree with mesh repair; "
             "'qspt' learns shortest-path trees with distributed "
             "Q-learning (see docs/routing.md)",
    )


def _add_checkpoint_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="snapshot the complete engine state every N rounds so a "
             "killed or drained run resumes bit-identically (see "
             "docs/checkpointing.md); default off — runs without it "
             "execute exactly as before",
    )
    cmd.add_argument(
        "--checkpoint-dir", type=str, default="checkpoints", metavar="DIR",
        help="directory holding the rotated .ckpt snapshots",
    )
    cmd.add_argument(
        "--keep-last", type=int, default=3, metavar="K",
        help="rotated snapshots kept per run (older ones are unlinked); "
             "restore degrades to the newest snapshot that validates",
    )


def _add_faults_arg(cmd: argparse.ArgumentParser) -> None:
    # Choices deferred to runtime would hide typos until the run starts;
    # the catalog import is cheap (pure-python, no numpy work at import).
    from .faults import fault_scenario_names

    cmd.add_argument(
        "--faults", type=str, default=None, metavar="SCENARIO",
        choices=fault_scenario_names(),
        help="overlay a named fault plan from the chaos catalog "
             f"({', '.join(fault_scenario_names())}); the plan is "
             "seeded, deterministic, and part of the run fingerprint",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QLEC (ICPP 2019) reproduction — experiment drivers",
    )
    parser.add_argument(
        "--version", action=_VersionAction,
        help="print package version and kernel-dependency versions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="compare protocols on Table 2")
    quick.add_argument("--seed", type=int, default=7)
    quick.add_argument("--lam", type=float, default=4.0,
                       help="mean packet inter-arrival (congestion level)")
    quick.add_argument("--telemetry", action="store_true",
                       help="print the per-phase time/energy/drop breakdown")
    _add_backend_arg(quick)
    _add_routing_arg(quick)

    fig3 = sub.add_parser("fig3", help="regenerate Fig. 3 (a)-(c)")
    fig3.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    fig3.add_argument("--lambdas", type=float, nargs="+",
                      default=[2.0, 4.0, 8.0, 16.0])
    fig3.add_argument("--serial", action="store_true",
                      help="disable the process pool")
    fig3.add_argument("--telemetry", action="store_true",
                      help="print the sweep-merged telemetry breakdown")
    fig3.add_argument("--from-artifacts", type=str, nargs="+", default=None,
                      metavar="PATH",
                      help="aggregate pre-run shard artifacts instead of "
                           "simulating (see 'repro sweep' / 'repro merge')")
    _add_backend_arg(fig3)

    swp = sub.add_parser(
        "sweep", help="run one shard of a sweep grid into a JSONL artifact"
    )
    swp.add_argument("--protocols", type=str, nargs="+",
                     default=["qlec", "fcm", "kmeans"])
    swp.add_argument("--lambdas", type=float, nargs="+",
                     default=[2.0, 4.0, 8.0, 16.0])
    swp.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    swp.add_argument("--rounds", type=int, default=20)
    swp.add_argument("--energy", type=float, default=0.25)
    swp.add_argument("--shard", type=str, default="1/1", metavar="k/K",
                     help="which shard of the grid this invocation runs")
    swp.add_argument("--out", type=str, default=None,
                     help="artifact path (default sweep-shard-<k>of<K>.jsonl)")
    swp.add_argument("--no-resume", action="store_true",
                     help="recompute every cell even if the artifact "
                          "already has matching rows")
    swp.add_argument("--retries", type=int, default=1,
                     help="extra in-worker attempts before a cell is "
                          "recorded as an error row")
    swp.add_argument("--serial", action="store_true",
                     help="disable the process pool")
    swp.add_argument("--workers", type=int, default=None)
    swp.add_argument("--telemetry", action="store_true",
                     help="instrument every cell; snapshots ride in the "
                          "artifact and merge across shards")
    swp.add_argument("--scheduler", action="store_true",
                     help="run the whole grid under the work-stealing "
                          "lease scheduler instead of one static shard "
                          "(incompatible with --shard other than 1/1); "
                          "worker deaths are reclaimed and respawned")
    swp.add_argument("--lease-seconds", type=float, default=None,
                     metavar="S",
                     help="scheduler lease duration before a silent "
                          "worker's cell is reclaimed and re-queued")
    swp.add_argument("--compress", type=str, default=None,
                     choices=("auto", "none", "gz", "zst"), metavar="CODEC",
                     help="artifact compression (auto/none/gz/zst); 'auto' "
                          "prefers zstd and degrades to gzip, an explicit "
                          "'zst' without the zstandard package fails; "
                          "default keeps an existing artifact's codec")
    _add_backend_arg(swp)
    _add_faults_arg(swp)
    _add_routing_arg(swp)
    _add_checkpoint_args(swp)

    srv = sub.add_parser(
        "serve",
        help="long-running sweep scheduler over a directory of job files",
    )
    srv.add_argument("jobs_dir", type=str,
                     help="directory holding *.job.json catalog entries; "
                          "artifacts land in <dir>/artifacts/")
    srv.add_argument("--once", action="store_true",
                     help="drain the current catalog once and exit "
                          "(instead of polling for new job files forever)")
    srv.add_argument("--cycles", type=int, default=None, metavar="N",
                     help="exit after N catalog passes (implies bounded run)")
    srv.add_argument("--workers", type=int, default=None,
                     help="override every job's worker count")
    srv.add_argument("--idle", type=float, default=2.0, metavar="S",
                     help="sleep between catalog passes")

    mrg = sub.add_parser(
        "merge", help="fold shard artifacts back into one sweep"
    )
    mrg.add_argument("artifacts", type=str, nargs="+",
                     help="shard artifact paths, any subset, any order")
    mrg.add_argument("--out", type=str, default=None,
                     help="write the merged rows as a sweep JSON file")
    mrg.add_argument("--artifact-out", type=str, default=None,
                     help="write the merge itself as an artifact "
                          "(pre-merged half for a later 'repro merge')")
    mrg.add_argument("--strict", action="store_true",
                     help="exit non-zero when cells are missing or errored")
    mrg.add_argument("--telemetry", action="store_true",
                     help="print the merged telemetry breakdown")

    fig4 = sub.add_parser("fig4", help="large-scale dataset run (Fig. 4)")
    fig4.add_argument("--nodes", type=int, default=2896)
    fig4.add_argument("--clusters", type=int, default=272)
    fig4.add_argument("--rounds", type=int, default=10)
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--compare", action="store_true",
                      help="also run FCM and k-means on the same network")
    fig4.add_argument("--csv", type=str, default=None,
                      help="path to a real Global Power Plant Database CSV")
    _add_backend_arg(fig4)

    sub.add_parser("kopt", help="Theorem 1 validation")
    sub.add_parser("complexity", help="O(RN) / O(kX) measurements")

    abl = sub.add_parser("ablation", help="QLEC design-choice ablation")
    abl.add_argument("--lam", type=float, default=4.0)
    abl.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    life = sub.add_parser("lifespan", help="alive curves + FND/HND/LND")
    life.add_argument("--rounds", type=int, default=60)
    life.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    life.add_argument("--energy", type=float, default=0.1)

    sub.add_parser("convergence", help="Theorem-3 X measurement")

    sens = sub.add_parser("sensitivity", help="QLEC hyperparameter robustness")
    sens.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    sens.add_argument("--axes", type=str, nargs="+", default=None)

    scen = sub.add_parser("scenario", help="run a protocol on a named scenario")
    scen.add_argument("name", type=str, help="scenario name (see --list)")
    scen.add_argument("--protocol", type=str, default="qlec")
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument("--layout", action="store_true",
                      help="print the ASCII network layout")
    scen.add_argument("--telemetry", action="store_true",
                      help="print the per-phase time/energy/drop breakdown")
    scen.add_argument("--trace", type=str, default=None, metavar="PATH",
                      help="write a hierarchical span trace of the run: "
                           "schema-linted JSONL at PATH plus a Chrome "
                           "trace-event twin (<stem>.chrome.json) "
                           "loadable in Perfetto/chrome://tracing")
    _add_backend_arg(scen)
    _add_faults_arg(scen)
    _add_routing_arg(scen)
    _add_checkpoint_args(scen)

    res = sub.add_parser(
        "resume", help="finish a checkpointed run from an engine snapshot"
    )
    res.add_argument("snapshot", type=str,
                     help="path to a .ckpt snapshot written by a "
                          "checkpointing run (scenario/sweep cell)")
    res.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N",
                     help="keep snapshotting every N rounds while "
                          "finishing (snapshots land next to the input)")
    res.add_argument("--keep-last", type=int, default=3, metavar="K",
                     help="rotated snapshots kept while finishing")

    stat = sub.add_parser(
        "status", help="render live progress of sharded sweep invocations"
    )
    stat.add_argument("paths", type=str, nargs="+",
                      help="artifact paths, status sidecars, or directories "
                           "to scan for *.status.jsonl")

    sub.add_parser("version", help="package and kernel-dependency versions")

    rep = sub.add_parser("report", help="run everything, write REPORT.md")
    rep.add_argument("--out", type=str, default="REPORT.md")
    rep.add_argument("--quick", action="store_true")
    rep.add_argument("--serial", action="store_true")

    return parser


def _cmd_quickstart(args) -> int:
    from .analysis import render_table, render_telemetry
    from .analysis.sweep import PROTOCOLS, run_cell
    from .parallel import fold_results
    from .telemetry import merge_snapshots

    rows = [
        run_cell(
            name, args.lam, args.seed,
            telemetry=args.telemetry, backend=args.backend,
            equivalence=args.equivalence, max_block_mb=args.max_block_mb,
            routing=args.routing,
        )
        for name in ("qlec", "fcm", "kmeans", "deec", "leach", "direct")
    ]
    snaps = [row.pop("telemetry", None) for row in rows]
    print(render_table(rows, title=f"Table-2 scenario, lambda={args.lam}"))
    if args.telemetry:
        merged = fold_results([s for s in snaps if s], merge_snapshots)
        print()
        print(render_telemetry(merged, title="Telemetry (all protocols)"))
    _ = PROTOCOLS  # documented entry point for custom protocols
    return 0


def _cmd_fig3(args) -> int:
    from .analysis import render_telemetry
    from .experiments import Fig3Config, fig3_from_artifacts, run_fig3

    if args.from_artifacts:
        result = fig3_from_artifacts(args.from_artifacts)
    else:
        result = run_fig3(
            Fig3Config(
                lambdas=tuple(args.lambdas),
                seeds=tuple(args.seeds),
                serial=args.serial,
                telemetry=args.telemetry,
                backend=args.backend,
                equivalence=args.equivalence,
                max_block_mb=args.max_block_mb,
            )
        )
    print(result.render())
    if args.telemetry and result.telemetry is not None:
        print()
        print(render_telemetry(result.telemetry, title="Telemetry (sweep merge)"))
    return 0


def _cmd_fig4(args) -> int:
    from .experiments import Fig4Config, run_fig4

    report = run_fig4(
        Fig4Config(
            n_nodes=args.nodes,
            n_clusters=args.clusters,
            rounds=args.rounds,
            seed=args.seed,
            dataset_path=args.csv,
            compare=("fcm", "kmeans") if args.compare else (),
            backend=args.backend,
            equivalence=args.equivalence,
            max_block_mb=args.max_block_mb,
        )
    )
    print(report.render())
    return 0


def _cmd_kopt(_args) -> int:
    from .experiments import run_kopt_validation

    print(run_kopt_validation().render())
    return 0


def _cmd_complexity(_args) -> int:
    from .experiments import (
        measure_qlearning_updates,
        measure_selection_scaling,
        render_complexity_report,
    )

    print(
        render_complexity_report(
            measure_selection_scaling(), measure_qlearning_updates()
        )
    )
    return 0


def _cmd_ablation(args) -> int:
    from .experiments import render_ablation, run_ablation

    print(
        render_ablation(
            run_ablation(mean_interarrival=args.lam, seeds=tuple(args.seeds))
        )
    )
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import ReportConfig, generate_report

    text = generate_report(ReportConfig(quick=args.quick, serial=args.serial))
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.out} ({len(text)} chars)")
    return 0


def _cmd_lifespan(args) -> int:
    from .experiments import LifespanCurveConfig, run_lifespan_curves

    result = run_lifespan_curves(
        LifespanCurveConfig(
            rounds=args.rounds,
            seeds=tuple(args.seeds),
            initial_energy=args.energy,
        )
    )
    print(result.render())
    return 0


def _cmd_convergence(_args) -> int:
    from .experiments import render_convergence_study, run_convergence_study

    print(render_convergence_study(run_convergence_study()))
    return 0


def _cmd_sensitivity(args) -> int:
    from .experiments import render_sensitivity, run_sensitivity

    print(
        render_sensitivity(
            run_sensitivity(axes=args.axes, seeds=tuple(args.seeds))
        )
    )
    return 0


def _cmd_scenario(args) -> int:
    from pathlib import Path

    from .analysis import network_ascii, render_table, render_telemetry
    from .analysis.sweep import PROTOCOLS
    from .simulation import SimulationEngine, build_scenario, scenario_names
    from .telemetry import SpanTracer, Telemetry

    if args.name in ("--list", "list"):
        print("\n".join(scenario_names()))
        return 0
    config, nodes, bs = build_scenario(args.name, seed=args.seed)
    if args.equivalence != "bitwise" or args.max_block_mb is not None:
        config = config.replace(
            equivalence=args.equivalence, max_block_mb=args.max_block_mb
        )
    if args.routing != "direct":
        from .config import RoutingConfig

        config = config.replace(routing=RoutingConfig(kind=args.routing))
    if args.faults:
        from .faults import build_fault_plan

        config = config.replace(faults=build_fault_plan(args.faults, config))
    tel = Telemetry() if args.telemetry else None
    tracer = SpanTracer() if args.trace else None
    engine = SimulationEngine(
        config, PROTOCOLS[args.protocol](), nodes=nodes, bs=bs,
        telemetry=tel, backend=args.backend, tracer=tracer,
    )
    if args.checkpoint_every:
        from .checkpoint import DrainInterrupted
        from .parallel import drain_on_signals

        with drain_on_signals() as stop:
            try:
                result = engine.run(
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_keep_last=args.keep_last,
                    checkpoint_tag=(
                        f"{args.protocol}-{args.name}-s{args.seed}"
                    ),
                    stop_requested=stop,
                )
            except DrainInterrupted as exc:
                print(
                    f"drained after round {exc.round_index}: "
                    f"snapshot {exc.snapshot_path}; finish with "
                    f"'repro resume {exc.snapshot_path}'"
                )
                return 0
    else:
        result = engine.run()
    if tracer is not None:
        trace_path = Path(args.trace)
        tracer.write_jsonl(trace_path)
        chrome_path = trace_path.with_name(trace_path.stem + ".chrome.json")
        tracer.write_chrome(chrome_path)
        s = tracer.summary()
        print(
            f"trace: {s['events']} events ({s['dropped']} dropped) -> "
            f"{trace_path} + {chrome_path}"
        )
    if args.layout:
        print(
            network_ascii(
                result.positions, bs_position=engine.state.bs.position
            )
        )
        print()
    print(render_table([result.summary()],
                       title=f"{args.protocol} on scenario {args.name!r}"))
    if result.faults is not None:
        f = result.faults
        deaths = ", ".join(
            f"{k}={v}" for k, v in sorted(f["deaths_by_cause"].items())
        ) or "none"
        print()
        print(
            f"faults: plan {f['plan_fingerprint']} injected {f['injected']} "
            f"(absorbed {f['absorbed']}, fatal {f['fatal']}); "
            f"deaths {deaths}; revived {f['revived']}"
        )
    routing = result.extras.get("routing")
    if routing is not None:
        print()
        print(
            f"routing: {routing['kind']} substrate — "
            f"repairs {routing['repairs']}, fallbacks {routing['fallbacks']}, "
            f"discovery broadcasts {routing['broadcasts']}"
        )
    if tel is not None:
        print()
        print(render_telemetry(tel.snapshot()))
    return 0


def _cmd_resume(args) -> int:
    from pathlib import Path

    from .analysis import render_table, render_telemetry
    from .checkpoint import CHECKPOINT_SUFFIX, DrainInterrupted, read_checkpoint
    from .parallel import drain_on_signals

    path = Path(args.snapshot)
    header, engine = read_checkpoint(path)
    stem = path.name[: -len(CHECKPOINT_SUFFIX)]
    tag = stem.rpartition("-r")[0] or stem
    run_kwargs = {}
    if args.checkpoint_every:
        run_kwargs = {
            "checkpoint_every": args.checkpoint_every,
            "checkpoint_dir": path.parent,
            "checkpoint_keep_last": args.keep_last,
            "checkpoint_tag": tag,
        }
    print(
        f"resuming from round {header['round_index']} of "
        f"{engine.config.rounds} ({path})"
    )
    with drain_on_signals() as stop:
        try:
            result = engine.run(stop_requested=stop, **run_kwargs)
        except DrainInterrupted as exc:
            print(
                f"drained after round {exc.round_index}: "
                f"snapshot {exc.snapshot_path}"
            )
            return 0
    print(render_table([result.summary()], title=f"resumed run {tag!r}"))
    if engine.telemetry.enabled:
        print()
        print(render_telemetry(engine.telemetry.snapshot()))
    return 0


def _cmd_sweep(args) -> int:
    from .parallel import (
        SweepSpec,
        drain_on_signals,
        parse_shard_arg,
        run_scheduled,
        run_shard,
    )
    from .telemetry.jsonl import compression_suffix, resolve_compression

    shard, num_shards = parse_shard_arg(args.shard)
    spec = SweepSpec(
        protocols=tuple(args.protocols),
        lambdas=tuple(args.lambdas),
        seeds=tuple(args.seeds),
        initial_energy=args.energy,
        rounds=args.rounds,
        telemetry=args.telemetry,
        backend=args.backend,
        faults=args.faults,
        equivalence=args.equivalence,
        max_block_mb=args.max_block_mb,
        routing=args.routing,
    )
    suffix = (
        compression_suffix(resolve_compression(args.compress))
        if args.compress
        else ""
    )
    if args.scheduler:
        if (shard, num_shards) != (1, 1):
            print(
                "error: --scheduler runs the whole grid; "
                "it cannot be combined with --shard "
                f"{shard}/{num_shards}",
                file=sys.stderr,
            )
            return 2
        out = args.out or f"sweep-scheduled.jsonl{suffix}"
        with drain_on_signals() as stop:
            sched = run_scheduled(
                spec,
                out,
                num_workers=args.workers,
                resume=not args.no_resume,
                retries=args.retries,
                compression=args.compress,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=(
                    args.checkpoint_dir if args.checkpoint_every else None
                ),
                checkpoint_keep_last=args.keep_last,
                stop_requested=stop,
                **(
                    {"lease_seconds": args.lease_seconds}
                    if args.lease_seconds is not None
                    else {}
                ),
            )
        print(
            f"scheduled: {len(spec)} cells -> {sched.path}"
        )
        print(
            f"  executed {len(sched.executed)}, resumed {len(sched.skipped)}, "
            f"errors {len(sched.errors)}; steals {sched.steals}, "
            f"reclaims {sched.reclaims}, worker deaths {sched.worker_deaths}"
        )
        for err in sched.errors:
            print(
                f"  ERROR cell {err['cell_id']} "
                f"({err['protocol']}, lambda={err['lambda']}, "
                f"seed={err['seed']}): "
                f"{err['error']['type']}: {err['error']['message']}"
            )
        if stop.requested:
            print(
                "drained: artifact left resumable; "
                "re-run the same command to finish"
            )
        return 1 if sched.errors else 0
    out = args.out or f"sweep-shard-{shard}of{num_shards}.jsonl{suffix}"
    with drain_on_signals() as stop:
        result = run_shard(
            spec,
            shard,
            num_shards,
            out,
            resume=not args.no_resume,
            max_workers=args.workers,
            serial=args.serial,
            retries=args.retries,
            compression=args.compress,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=(
                args.checkpoint_dir if args.checkpoint_every else None
            ),
            checkpoint_keep_last=args.keep_last,
            stop_requested=stop,
        )
    if stop.requested:
        print(
            "drained: artifact left resumable; "
            "re-run the same command to finish"
        )
    print(
        f"shard {shard}/{num_shards}: {len(result.cells)} of {len(spec)} "
        f"cells -> {result.path}"
    )
    print(
        f"  executed {len(result.executed)}, resumed {len(result.skipped)}, "
        f"errors {len(result.errors)}"
    )
    for err in result.errors:
        print(
            f"  ERROR cell {err['cell_id']} "
            f"({err['protocol']}, lambda={err['lambda']}, seed={err['seed']}): "
            f"{err['error']['type']}: {err['error']['message']}"
        )
    return 1 if result.errors else 0


def _cmd_serve(args) -> int:
    from .parallel import drain_on_signals
    from .parallel.serve import serve_forever, serve_once

    with drain_on_signals() as stop:
        if args.once or args.cycles is not None:
            if args.once and args.cycles is None:
                report = serve_once(
                    args.jobs_dir, workers=args.workers, stop_requested=stop
                )
            else:
                report = serve_forever(
                    args.jobs_dir,
                    workers=args.workers,
                    idle_seconds=args.idle,
                    max_cycles=args.cycles,
                    stop_requested=stop,
                )
        else:  # pragma: no cover - unbounded interactive loop
            report = serve_forever(
                args.jobs_dir, workers=args.workers, idle_seconds=args.idle,
                stop_requested=stop,
            )
    if stop.requested:
        print(
            "drained: in-flight cells landed in their artifacts; "
            "the next 'repro serve' pass computes exactly the rest"
        )
    print(
        f"serve: {len(report.jobs)} job(s); executed {report.executed}, "
        f"resumed {report.resumed}, errors {report.errors}; "
        f"steals {report.steals}, reclaims {report.reclaims}, "
        f"worker deaths {report.worker_deaths}"
    )
    return 1 if report.errors else 0


def _cmd_status(args) -> int:
    import time

    from .analysis import render_table
    from .parallel import find_status_files, load_status

    files = find_status_files(args.paths)
    if not files:
        print("error: no status sidecars found", file=sys.stderr)
        return 2
    rows = []
    statuses = []
    now = time.time()
    for path in files:
        st = load_status(path)
        statuses.append(st)
        ewma = st["ewma_cell_seconds"]
        eta = st["eta_seconds"]
        shard_label = (
            "sched"
            if (st["shard"], st["num_shards"]) == (0, 0)
            else f"{st['shard']}/{st['num_shards']}"
        )
        rows.append({
            "shard": shard_label,
            "state": st["state"],
            "done": st["done"],
            "failed": st["failed"],
            "retried": st["retried"],
            "steals": st.get("steals", 0),
            "reclaimed": st.get("reclaimed", 0),
            "total": st["cells_total"],
            "cell_s": "-" if ewma is None else f"{ewma:.2f}",
            "eta_s": "-" if eta is None else f"{eta:.1f}",
            "age_s": f"{max(0.0, now - st['updated_unix']):.0f}",
        })
    print(render_table(rows, title="Shard status"))
    done = sum(s["done"] for s in statuses)
    failed = sum(s["failed"] for s in statuses)
    total = sum(s["cells_total"] for s in statuses)
    fleet_state = (
        "complete"
        if all(s["state"] == "complete" for s in statuses)
        else "running"
    )
    print(f"fleet: {done}/{total} cells done, {failed} failed ({fleet_state})")
    return 0


def _cmd_version(_args) -> int:
    print(_version_text())
    return 0


def _cmd_merge(args) -> int:
    from .analysis import render_table, render_telemetry, save_sweep
    from .parallel import merge_artifacts, write_merged_artifact

    merged = merge_artifacts(args.artifacts)
    spec = merged.spec
    print(
        f"merged {len(args.artifacts)} artifact(s): "
        f"{len(merged.sweep.rows)} of {len(spec)} cells recovered"
    )
    print(render_table(merged.sweep.rows, title="Merged sweep"))
    if args.telemetry and merged.sweep.telemetry is not None:
        print()
        print(render_telemetry(merged.sweep.telemetry, title="Telemetry (merge)"))
    for err in merged.errors:
        print(
            f"ERROR cell {err['cell_id']} "
            f"({err['protocol']}, lambda={err['lambda']}, seed={err['seed']}): "
            f"{err['error']['type']}: {err['error']['message']}"
        )
    if merged.missing:
        print(f"MISSING {len(merged.missing)} cell(s): {merged.missing}")
    if args.out:
        save_sweep(merged.sweep, args.out)
        print(f"wrote {args.out}")
    if args.artifact_out:
        write_merged_artifact(merged, args.artifacts, args.artifact_out)
        print(f"wrote {args.artifact_out}")
    incomplete = bool(merged.errors or merged.missing)
    return 1 if (args.strict and incomplete) else 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "kopt": _cmd_kopt,
    "complexity": _cmd_complexity,
    "ablation": _cmd_ablation,
    "lifespan": _cmd_lifespan,
    "convergence": _cmd_convergence,
    "sensitivity": _cmd_sensitivity,
    "scenario": _cmd_scenario,
    "resume": _cmd_resume,
    "status": _cmd_status,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "merge": _cmd_merge,
    "report": _cmd_report,
    "version": _cmd_version,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .checkpoint import CheckpointError
    from .kernels import BackendUnavailableError, EquivalenceError
    from .telemetry.jsonl import CompressionUnavailableError

    try:
        return _COMMANDS[args.command](args)
    except (
        BackendUnavailableError,
        EquivalenceError,
        CompressionUnavailableError,
        CheckpointError,
    ) as exc:
        # An explicitly requested backend or codec the host cannot
        # provide — or a tier combination the policy forbids
        # (statistical + golden traces, cross-tier merges), or a
        # snapshot that fails validation (corrupt, wrong config,
        # wrong version) — is a usage error, not a crash: say what
        # is wrong and how to proceed, exit distinctly.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
