"""Energy substrate: first-order radio model and battery accounting."""

from .battery import EnergyLedger
from .radio import (
    FirstOrderRadio,
    aggregate_energy,
    amplifier_energy,
    receive_energy,
    transmit_energy,
)

__all__ = [
    "EnergyLedger",
    "FirstOrderRadio",
    "aggregate_energy",
    "amplifier_energy",
    "receive_energy",
    "transmit_energy",
]
