"""Energy-harvesting models (extension; cf. the paper's HyDRO citation).

Basagni et al.'s HyDRO — which the paper cites as prior Q-learning
routing work — targets *harvesting-aware* networks where nodes trickle
energy back between rounds.  This module adds that capability as an
optional engine feature: a per-round per-node energy income, capped at
the node's initial capacity, with optional revival of nodes that climb
back above the death line.

Two standard profiles:

* :class:`SolarHarvester` — sinusoidal diurnal profile (zero at night)
  with multiplicative weather noise; panel capacity varies per node.
* :class:`ConstantHarvester` — fixed trickle (vibration/thermal
  scavenging), the analytically convenient baseline.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from .battery import EnergyLedger

__all__ = [
    "HarvestingConfig",
    "Harvester",
    "ConstantHarvester",
    "SolarHarvester",
    "build_harvester",
]


@dataclass(frozen=True)
class HarvestingConfig:
    """Declarative harvesting selection for :class:`SimulationConfig`.

    Attributes
    ----------
    model:
        ``"solar"`` or ``"constant"``.
    mean_income:
        Mean per-node energy income per round, joules.
    rounds_per_day:
        Period of the solar cycle, in rounds.
    revive:
        Whether a node climbing back above the death line counts as
        alive again (affects liveness, not the recorded first-death
        round).
    """

    model: str = "solar"
    mean_income: float = 0.002
    rounds_per_day: int = 10
    revive: bool = True

    def __post_init__(self) -> None:
        if self.model not in ("solar", "constant"):
            raise ValueError("model must be 'solar' or 'constant'")
        if self.mean_income < 0.0:
            raise ValueError("mean_income must be >= 0")
        if self.rounds_per_day < 1:
            raise ValueError("rounds_per_day must be >= 1")


class Harvester(abc.ABC):
    """Per-round energy income generator."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    @abc.abstractmethod
    def income(self, n: int, round_index: int) -> np.ndarray:
        """Per-node harvested joules for this round, shape ``(n,)``."""

    def apply(
        self, ledger: EnergyLedger, round_index: int, revive: bool = True
    ) -> float:
        """Credit this round's income to the ledger; returns the total
        joules actually banked (capacity-capped)."""
        return ledger.recharge(self.income(ledger.n, round_index), revive=revive)


class ConstantHarvester(Harvester):
    """Fixed trickle income, identical for every node."""

    def __init__(self, rng: np.random.Generator, mean_income: float) -> None:
        super().__init__(rng)
        if mean_income < 0.0:
            raise ValueError("mean_income must be >= 0")
        self.mean_income = mean_income

    def income(self, n: int, round_index: int) -> np.ndarray:
        return np.full(n, self.mean_income)


class SolarHarvester(Harvester):
    """Diurnal sinusoid, clipped at night, with weather noise.

    Income at round r: ``capacity_i * max(0, sin(2 pi r / P)) * w`` with
    ``w ~ LogNormal(0, 0.25)`` shared per round (clouds affect everyone)
    and per-node panel capacities drawn once ~ U(0.5, 1.5)*mean.
    The daytime mean over a full period equals ``mean_income``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_income: float,
        rounds_per_day: int = 10,
    ) -> None:
        super().__init__(rng)
        if mean_income < 0.0:
            raise ValueError("mean_income must be >= 0")
        if rounds_per_day < 1:
            raise ValueError("rounds_per_day must be >= 1")
        self.mean_income = mean_income
        self.rounds_per_day = rounds_per_day
        self._panels: np.ndarray | None = None
        # E[max(0, sin)] over a period is 1/pi; normalise so the
        # *average* income per round matches mean_income.
        self._norm = math.pi

    def income(self, n: int, round_index: int) -> np.ndarray:
        if self._panels is None or self._panels.size != n:
            self._panels = self.mean_income * self.rng.uniform(0.5, 1.5, size=n)
        phase = 2.0 * math.pi * (round_index % self.rounds_per_day) / self.rounds_per_day
        sun = max(0.0, math.sin(phase)) * self._norm
        weather = float(self.rng.lognormal(mean=0.0, sigma=0.25))
        return self._panels * sun * weather


def build_harvester(
    config: HarvestingConfig, rng: np.random.Generator
) -> Harvester:
    """Instantiate the harvester a :class:`HarvestingConfig` describes."""
    if config.model == "constant":
        return ConstantHarvester(rng, config.mean_income)
    return SolarHarvester(rng, config.mean_income, config.rounds_per_day)
