"""Vectorized battery ledger for a sensor-node population.

The simulator accounts every joule a node spends: transmit, receive,
aggregate.  Energies live in one contiguous float64 array so discharge
operations across the whole population are single vectorized calls (per
the HPC guides: in-place ops, no per-node Python objects on the hot
path).

Death semantics follow the paper (§5.1): "the network dies when there
exists one sensor possessing less energy than a given energy death
line."  A node at or below the death line is *dead*: it neither
generates traffic nor serves as a cluster head, and its residual energy
is frozen.
"""

from __future__ import annotations

import numpy as np

from ..kernels import KernelBackend, default_backend

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Tracks residual energy, consumption, and liveness for N nodes.

    Parameters
    ----------
    initial:
        Per-node initial energies, shape ``(N,)``.  Heterogeneous
        initial energies (the DEEC setting and the large-scale dataset
        experiment) are supported directly.
    death_line:
        Residual energy at or below which a node counts as dead.
    kernels:
        Kernel backend for the batched discharge path (defaults to the
        numpy reference); every backend is bit-identical by contract.
    """

    def __init__(
        self,
        initial: np.ndarray,
        death_line: float = 0.0,
        kernels: KernelBackend | None = None,
    ) -> None:
        initial = np.asarray(initial, dtype=np.float64)
        if initial.ndim != 1 or initial.size == 0:
            raise ValueError("initial must be a non-empty 1-D array")
        if np.any(initial <= 0.0):
            raise ValueError("initial energies must be positive")
        if death_line < 0.0:
            raise ValueError("death_line must be >= 0")
        if np.any(initial <= death_line):
            raise ValueError("all initial energies must exceed the death line")
        self._initial = initial.copy()
        self._residual = initial.copy()
        self._death_line = float(death_line)
        self._alive = np.ones(initial.size, dtype=bool)
        self.kernels = kernels if kernels is not None else default_backend()
        #: Cumulative spend per consumption category, for reporting.
        self.spent_tx = 0.0
        self.spent_rx = 0.0
        self.spent_da = 0.0
        #: Death events by cause ("battery" for death-line crossings,
        #: "crash"/"ch_kill"/"drain"/... for injected faults) and
        #: revival events.  Every alive->dead transition increments
        #: exactly one cause and every dead->alive transition increments
        #: ``revived_count``, so at any instant
        #: ``total_deaths - revived_count == n - n_alive`` — the
        #: liveness-conservation invariant fault runs validate.
        self._deaths_by_cause: dict[str, int] = {}
        self.revived_count = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._initial.size

    @property
    def death_line(self) -> float:
        return self._death_line

    @property
    def initial(self) -> np.ndarray:
        """Read-only view of the initial energies."""
        v = self._initial.view()
        v.flags.writeable = False
        return v

    @property
    def residual(self) -> np.ndarray:
        """Read-only view of the residual energies."""
        v = self._residual.view()
        v.flags.writeable = False
        return v

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness mask (read-only view)."""
        v = self._alive.view()
        v.flags.writeable = False
        return v

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    @property
    def any_dead(self) -> bool:
        """True once at least one node crossed the death line — the
        paper's network-death criterion."""
        return bool((~self._alive).any())

    @property
    def total_initial(self) -> float:
        return float(self._initial.sum())

    @property
    def total_residual(self) -> float:
        return float(self._residual.sum())

    @property
    def total_consumed(self) -> float:
        """Net battery drawdown (initial minus residual).  Equals the
        gross radio spend unless harvesting credited energy back."""
        return self.total_initial - self.total_residual

    @property
    def total_spent(self) -> float:
        """Gross radio energy spent (tx + rx + aggregation) — the
        metric Fig. 3(b) reports; unaffected by harvesting income."""
        return self.spent_tx + self.spent_rx + self.spent_da

    def category_breakdown(self) -> dict[str, float]:
        """Cumulative gross spend per radio category.

        The telemetry layer diffs successive snapshots of this dict to
        attribute each round's joules to transmit / receive /
        aggregation without the ledger keeping per-round state.
        """
        return {"tx": self.spent_tx, "rx": self.spent_rx, "da": self.spent_da}

    def deaths_by_cause(self) -> dict[str, int]:
        """Death events per cause (owned copy, sorted by cause)."""
        return dict(sorted(self._deaths_by_cause.items()))

    @property
    def total_deaths(self) -> int:
        """Total alive->dead transitions (revivals counted separately)."""
        return sum(self._deaths_by_cause.values())

    def consumption_ratio(self) -> np.ndarray:
        """Per-node consumed / initial energy ratio (Figure 4's metric)."""
        return (self._initial - self._residual) / self._initial

    def average_energy(self) -> float:
        """Mean residual energy over *all* nodes (dead nodes included,
        matching the paper's network-average estimate E(r))."""
        return float(self._residual.mean())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _record_deaths(self, cause: str, count: int) -> None:
        if count:
            self._deaths_by_cause[cause] = (
                self._deaths_by_cause.get(cause, 0) + int(count)
            )

    def _charge_category(self, category: str, amount: float) -> None:
        if category == "tx":
            self.spent_tx += amount
        elif category == "rx":
            self.spent_rx += amount
        elif category == "da":
            self.spent_da += amount
        else:
            raise ValueError(f"unknown energy category {category!r}")

    def discharge(self, idx, amount, category: str = "tx") -> None:
        """Subtract ``amount`` joules from nodes ``idx``.

        ``idx`` may be a scalar index, an index array, or a boolean
        mask; ``amount`` broadcasts against it.  Dead nodes are skipped
        (their residual is frozen at the value they died with).
        Residuals are floored at zero — a node can never bank negative
        energy.
        """
        idx = np.atleast_1d(np.asarray(idx))
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        amount = np.broadcast_to(np.asarray(amount, dtype=np.float64), idx.shape)
        if np.any(amount < 0.0):
            raise ValueError("discharge amount must be non-negative")
        live = self._alive[idx]
        idx = idx[live]
        amount = amount[live]
        if idx.size == 0:
            return
        before = self._residual[idx]
        after = np.maximum(before - amount, 0.0)
        self._charge_category(category, float((before - after).sum()))
        self._residual[idx] = after
        newly_dead = idx[after <= self._death_line]
        if newly_dead.size:
            self._alive[newly_dead] = False
            self._record_deaths("battery", newly_dead.size)

    def discharge_many(self, idx, amounts, category: str = "tx") -> None:
        """Batched :meth:`discharge` that tolerates duplicate indices.

        ``idx`` may repeat (e.g. one cluster head receiving from many
        members in a slot); duplicate charges are summed per node
        before applying, which is exact under the floor-at-zero
        semantics because all charges of one call share a category and
        land atomically.  A plain fancy-indexed subtraction would be
        last-write-wins and silently undercharge — hence this method.

        The fold/floor/death pass runs on the configured kernel backend
        (``self.kernels``); the per-category total is summed here with
        numpy so the pairwise reduction matches the reference exactly.
        """
        idx = np.atleast_1d(np.asarray(idx))
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        amounts = np.broadcast_to(
            np.asarray(amounts, dtype=np.float64), idx.shape
        )
        if np.any(amounts < 0.0):
            raise ValueError("discharge amount must be non-negative")
        if category not in ("tx", "rx", "da"):
            raise ValueError(f"unknown energy category {category!r}")
        if idx.size == 0:
            return
        # The kernel flips liveness in place without reporting deaths;
        # an alive-count diff attributes them (cause "battery").
        alive_before = int(np.count_nonzero(self._alive))
        delta = self.kernels.grouped_discharge(
            self._residual, self._alive, idx, amounts, self._death_line
        )
        if delta.size:
            self._charge_category(category, float(delta.sum()))
        self._record_deaths(
            "battery", alive_before - int(np.count_nonzero(self._alive))
        )

    def recharge(self, amount, revive: bool = True) -> float:
        """Credit harvested energy, capped at each node's initial
        capacity (the battery cannot over-charge).

        Parameters
        ----------
        amount:
            Scalar or ``(N,)`` joules of income per node.
        revive:
            When True, nodes whose residual climbs back above the death
            line become alive again (harvesting-aware semantics); the
            historical first-death event is untouched — only current
            liveness changes.

        Returns
        -------
        float
            Joules actually banked after capacity clipping.
        """
        amount = np.broadcast_to(
            np.asarray(amount, dtype=np.float64), (self.n,)
        )
        if np.any(amount < 0.0):
            raise ValueError("recharge amount must be non-negative")
        before = self._residual.copy()
        np.minimum(self._residual + amount, self._initial, out=self._residual)
        banked = float((self._residual - before).sum())
        if revive:
            back = (~self._alive) & (self._residual > self._death_line)
            self.revived_count += int(back.sum())
            self._alive |= back
        return banked

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def force_kill(self, idx, cause: str = "crash") -> int:
        """Kill nodes outright (a non-battery fault: crash, CH kill).

        Residuals are untouched — the battery did not empty, the node
        failed — so energy accounting (gross spend, consumption ratio)
        is unaffected.  Already-dead nodes are skipped.  Returns how
        many nodes actually died, recorded under ``cause``.
        """
        idx = np.atleast_1d(np.asarray(idx))
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        if idx.size == 0:
            return 0
        victims = idx[self._alive[idx]]
        if victims.size:
            self._alive[victims] = False
            self._record_deaths(cause, victims.size)
        return int(victims.size)

    def revive_nodes(self, idx) -> int:
        """Bring crashed nodes back (fault churn's flip side).

        Only dead nodes whose frozen residual still clears the death
        line revive — a battery-dead node stays dead, matching the
        paper's death-line semantics.  Returns how many revived.
        """
        idx = np.atleast_1d(np.asarray(idx))
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        if idx.size == 0:
            return 0
        back = idx[
            (~self._alive[idx]) & (self._residual[idx] > self._death_line)
        ]
        if back.size:
            self._alive[back] = True
            self.revived_count += int(back.size)
        return int(back.size)

    def drain(self, idx, amounts, cause: str = "drain") -> int:
        """Battery anomaly: residual vanishes without radio work.

        Unlike :meth:`discharge` this books **no** tx/rx/da spend —
        the joules leaked, they were not transmitted — so the Fig.-3
        gross-energy metric and the per-round energy-sum invariant are
        unaffected while consumption ratios and liveness see the loss.
        Dead nodes are skipped; residuals floor at zero.  Returns how
        many nodes the drain pushed across the death line (recorded
        under ``cause``).
        """
        idx = np.atleast_1d(np.asarray(idx))
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        amounts = np.broadcast_to(
            np.asarray(amounts, dtype=np.float64), idx.shape
        )
        if np.any(amounts < 0.0):
            raise ValueError("drain amount must be non-negative")
        live = self._alive[idx]
        idx = idx[live]
        amounts = amounts[live]
        if idx.size == 0:
            return 0
        self._residual[idx] = np.maximum(self._residual[idx] - amounts, 0.0)
        newly_dead = idx[self._residual[idx] <= self._death_line]
        if newly_dead.size:
            self._alive[newly_dead] = False
            self._record_deaths(cause, newly_dead.size)
        return int(newly_dead.size)

    def is_alive(self, i: int) -> bool:
        return bool(self._alive[i])

    def snapshot(self) -> np.ndarray:
        """Residual energies as an owned copy (safe to store)."""
        return self._residual.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnergyLedger(n={self.n}, alive={self.n_alive}, "
            f"residual={self.total_residual:.3f}J / {self.total_initial:.3f}J)"
        )
