"""First-order radio energy model (Heinzelman et al., 2002).

The paper adopts this model twice: Eq. (6) expresses the total energy a
round dissipates, and Eq. (18) gives the per-packet transmit cost

    y(b_i, h_j) = L * eps_fs * d^2   if d <  d0
                  L * eps_mp * d^4   if d >= d0

with the crossover distance ``d0 = sqrt(eps_fs / eps_mp)``.  On top of
the amplifier term every transmitted or received bit pays the circuit
energy ``E_elec`` and aggregation at a cluster head pays ``E_DA`` per
bit.

All functions are vectorized over distances so a node can evaluate the
cost to every candidate cluster head in one call (this is the hot path
of the Q backup in Algorithm 4).
"""

from __future__ import annotations

import numpy as np

from ..config import RadioConfig

__all__ = [
    "FirstOrderRadio",
    "amplifier_energy",
    "transmit_energy",
    "receive_energy",
    "aggregate_energy",
]


def amplifier_energy(
    bits: float, distance: np.ndarray | float, radio: RadioConfig
) -> np.ndarray | float:
    """Amplifier-only energy for sending ``bits`` over ``distance``.

    Implements Eq. (18) exactly: free-space (d^2) attenuation below the
    crossover distance ``d0`` and multi-path (d^4) at or above it.
    Accepts a scalar or an array of distances.
    """
    d = np.asarray(distance, dtype=np.float64)
    if np.any(d < 0.0):
        raise ValueError("distance must be non-negative")
    fs = radio.eps_fs * d * d
    mp = radio.eps_mp * d ** 4
    out = bits * np.where(d < radio.d0, fs, mp)
    if np.isscalar(distance) or getattr(distance, "ndim", 1) == 0:
        return float(out)
    return out


def transmit_energy(
    bits: float, distance: np.ndarray | float, radio: RadioConfig
) -> np.ndarray | float:
    """Total transmit cost: circuit energy plus amplifier energy.

    ``E_tx(L, d) = L*E_elec + L*eps*d^n``
    """
    amp = amplifier_energy(bits, distance, radio)
    return bits * radio.e_elec + amp


def receive_energy(bits: float, radio: RadioConfig) -> float:
    """Receive cost ``E_rx(L) = L * E_elec`` (distance independent)."""
    if bits < 0:
        raise ValueError("bits must be non-negative")
    return bits * radio.e_elec


def aggregate_energy(bits: float, radio: RadioConfig) -> float:
    """Data-fusion cost ``E_DA`` per bit aggregated at a cluster head."""
    if bits < 0:
        raise ValueError("bits must be non-negative")
    return bits * radio.e_da


class FirstOrderRadio:
    """Convenience object bundling the radio constants with the model.

    A single instance is shared by the channel, the protocols, and the
    reward function, so every subsystem prices energy identically.

    Examples
    --------
    >>> radio = FirstOrderRadio(RadioConfig())
    >>> cost = radio.tx(4000, 50.0)
    >>> cost > radio.rx(4000)
    True
    """

    def __init__(self, config: RadioConfig | None = None) -> None:
        self.config = config if config is not None else RadioConfig()

    @property
    def d0(self) -> float:
        """Free-space / multi-path crossover distance."""
        return self.config.d0

    def amp(self, bits: float, distance):
        """Amplifier energy only (the ``y(b_i, h_j)`` of Eq. (18))."""
        return amplifier_energy(bits, distance, self.config)

    def tx(self, bits: float, distance):
        """Full transmit energy including circuit cost."""
        return transmit_energy(bits, distance, self.config)

    def rx(self, bits: float) -> float:
        """Receive energy."""
        return receive_energy(bits, self.config)

    def da(self, bits: float) -> float:
        """Aggregation energy."""
        return aggregate_energy(bits, self.config)

    def round_energy(
        self,
        bits: float,
        n_nodes: int,
        k: int,
        d_to_bs: float,
        d_to_ch_sq: float,
    ) -> float:
        """Total network energy per round, Eq. (6).

        ``E_r = L (2 N E_elec + N E_DA + k eps_mp d_toBS^4
        + N eps_fs d_toCH^2)``

        Parameters
        ----------
        bits:
            Payload bits L each non-CH node contributes per round.
        n_nodes:
            Total node count N.
        k:
            Cluster count.
        d_to_bs:
            Average CH -> BS distance.
        d_to_ch_sq:
            Average *squared* member -> CH distance (Lemma 1 supplies
            the closed form).
        """
        if k < 1 or n_nodes < 1:
            raise ValueError("n_nodes and k must be >= 1")
        c = self.config
        return bits * (
            2.0 * n_nodes * c.e_elec
            + n_nodes * c.e_da
            + k * c.eps_mp * d_to_bs ** 4
            + n_nodes * c.eps_fs * d_to_ch_sq
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"FirstOrderRadio(e_elec={c.e_elec:g}, e_da={c.e_da:g}, "
            f"eps_fs={c.eps_fs:g}, eps_mp={c.eps_mp:g}, d0={self.d0:.2f})"
        )
