#!/usr/bin/env python
"""CI gate: a 3-shard mini-sweep must merge back to the serial result.

Runs one small (protocol × λ × seed) grid three ways — serially, as
3 shards, and as N singleton shards — merges the artifacts in a
shuffled order, and diffs rows and deterministic telemetry against the
serial sweep.  Then resumes every shard and asserts nothing is
recomputed and no artifact byte changes.  Any drift fails the build:
shard determinism is a contract, not a best effort.

Usage: PYTHONPATH=src python scripts/check_shard_determinism.py [workdir]
"""

from __future__ import annotations

import random
import sys
import tempfile
from pathlib import Path

from repro.analysis.sweep import sweep_from_spec
from repro.parallel.sharding import SweepSpec, merge_artifacts, run_shard
from repro.telemetry import deterministic_view

SPEC = SweepSpec(
    protocols=("direct", "kmeans"),
    lambdas=(4.0, 8.0),
    seeds=(0, 1),
    rounds=2,
    telemetry=True,
)


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def run_shards(root: Path, num_shards: int) -> list:
    return [
        run_shard(
            SPEC, k, num_shards,
            root / f"shard-{k}of{num_shards}.jsonl",
            max_workers=2,
        )
        for k in range(1, num_shards + 1)
    ]


def main(argv: list[str]) -> int:
    workdir = Path(argv[0]) if argv else Path(tempfile.mkdtemp(prefix="shards-"))
    workdir.mkdir(parents=True, exist_ok=True)
    serial = sweep_from_spec(SPEC, serial=True)
    rng = random.Random(7)

    for num_shards in (1, 3, len(SPEC)):
        root = workdir / f"k{num_shards}"
        root.mkdir(exist_ok=True)
        results = run_shards(root, num_shards)
        errors = [e for r in results for e in r.errors]
        if errors:
            return fail(f"K={num_shards}: error rows {errors}")

        paths = [r.path for r in results]
        rng.shuffle(paths)
        merged = merge_artifacts(paths)
        if not merged.complete:
            return fail(
                f"K={num_shards}: merge incomplete "
                f"(missing {merged.missing}, errors {merged.errors})"
            )
        if merged.sweep.rows != serial.rows:
            return fail(f"K={num_shards}: merged rows differ from serial run")
        if deterministic_view(merged.sweep.telemetry) != deterministic_view(
            serial.telemetry
        ):
            return fail(
                f"K={num_shards}: merged telemetry differs from serial run"
            )

        before = [p.read_bytes() for p in sorted(paths)]
        resumed = run_shards(root, num_shards)
        recomputed = [cid for r in resumed for cid in r.executed]
        if recomputed:
            return fail(f"K={num_shards}: resume recomputed {recomputed}")
        after = [p.read_bytes() for p in sorted(paths)]
        if before != after:
            return fail(f"K={num_shards}: resume rewrote artifact bytes")
        print(
            f"ok: K={num_shards} — {len(serial.rows)} cells, "
            f"merge == serial, resume touched nothing"
        )

    print("ok: shard determinism holds for K in {1, 3, N}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
