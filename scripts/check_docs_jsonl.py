#!/usr/bin/env python
"""Lint the JSONL examples embedded in the documentation.

Documentation drifts; schemas don't have to.  This script extracts
every fenced ```jsonl block from the given markdown files, checks that
each line parses as JSON, and validates any manifest line against the
real schema in :mod:`repro.telemetry.manifest` — the keys
:func:`run_manifest` emits, with the right value types and the current
schema version.  Round-record lines are checked against the
:class:`repro.simulation.trace.RoundTrace` field set.

Usage: PYTHONPATH=src python scripts/check_docs_jsonl.py docs/observability.md
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import fields
from pathlib import Path

from repro.checkpoint import CHECKPOINT_KIND, CHECKPOINT_SCHEMA
from repro.parallel.scheduler import SCHED_EVENT_KIND
from repro.parallel.status import STATUS_KIND, STATUS_SCHEMA
from repro.simulation.trace import PATH_KIND, RoundTrace
from repro.telemetry.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    SHARD_MANIFEST_KIND,
)
from repro.telemetry.trace import (
    INSTANT_KIND,
    SPAN_KIND,
    TRACE_SCHEMA,
    TRACE_SUMMARY_KIND,
)

#: Key -> required type(s) of every field run_manifest() always emits.
MANIFEST_KEYS = {
    "kind": str,
    "schema": int,
    "package": str,
    "version": str,
    "protocol": str,
    "seed": int,
    "config_fingerprint": str,
    "n_nodes": int,
    "rounds": int,
    "mean_interarrival": (int, float),
    "backend": str,
    "equivalence": str,
    "backend_versions": dict,
}

#: Key -> required type(s) of every field shard_manifest() always emits.
SHARD_MANIFEST_KEYS = {
    "kind": str,
    "schema": int,
    "package": str,
    "version": str,
    "shard": int,
    "num_shards": int,
    "spec": dict,
    "spec_fingerprint": str,
}

#: Required keys of the per-cell records in a shard artifact.
CELL_KEYS = {
    "kind": str,
    "cell_id": str,
    "protocol": str,
    "lambda": (int, float),
    "seed": int,
    "config_fingerprint": str,
    "backend": str,
    "equivalence": str,
    "attempts": int,
}

#: Required keys of a span event in a trace JSONL file.
SPAN_KEYS = {
    "kind": str,
    "id": int,
    "parent": (int, type(None)),
    "name": str,
    "cat": str,
    "ts": (int, float),
    "dur": (int, float),
}

#: Required keys of an instant event (a span without extent).
INSTANT_KEYS = {
    "kind": str,
    "id": int,
    "parent": (int, type(None)),
    "name": str,
    "cat": str,
    "ts": (int, float),
}

#: Required keys of the trailing trace summary.
TRACE_SUMMARY_KEYS = {
    "kind": str,
    "schema": int,
    "events": int,
    "dropped": int,
    "spans_by_name": dict,
    "instants_by_name": dict,
}

#: Required keys of a shard-status heartbeat row.
STATUS_KEYS = {
    "kind": str,
    "schema": int,
    "spec_fingerprint": str,
    "shard": int,
    "num_shards": int,
    "cells_total": int,
    "done": int,
    "failed": int,
    "retried": int,
    "resumed": int,
    "steals": int,
    "reclaimed": int,
    "ewma_cell_seconds": (int, float, type(None)),
    "eta_seconds": (int, float, type(None)),
    "elapsed_seconds": (int, float),
    "updated_unix": (int, float),
    "state": str,
}

#: Required keys of a scheduler-event sidecar row; the ``event`` value
#: must be one of the lifecycle verbs the state machine emits.
SCHED_EVENT_KEYS = {
    "kind": str,
    "seq": int,
    "event": str,
}

#: Required keys of a per-packet path record (active routing
#: substrates append one per walked uplink chain).
PATH_KEYS = {
    "kind": str,
    "round": int,
    "head": int,
    "path": list,
    "hops": int,
    "frames": int,
    "delivered": int,
}

#: Required keys of an engine-checkpoint header line (the single JSON
#: line that precedes the binary payload in a ``.ckpt`` snapshot).
CHECKPOINT_KEYS = {
    "kind": str,
    "schema": int,
    "package": str,
    "version": str,
    "config_fingerprint": str,
    "round_index": int,
    "run": dict,
    "payload_bytes": int,
    "payload_sha256": str,
}

#: Required keys of a ``<tag>.resume.jsonl`` sidecar row (one appended
#: per snapshot-restored cell attempt).
RESUME_KEYS = {
    "kind": str,
    "tag": str,
    "round_index": int,
    "snapshot": str,
}

SCHED_EVENTS = (
    "lease",
    "steal",
    "requeue",
    "reclaim",
    "complete",
    "duplicate",
    "stale-failure",
    "error",
    "worker-dead",
)

FENCE = re.compile(r"^```jsonl\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def check_manifest(obj: dict, where: str) -> list[str]:
    errors = []
    for key, typ in MANIFEST_KEYS.items():
        if key not in obj:
            errors.append(f"{where}: manifest missing key {key!r}")
        elif not isinstance(obj[key], typ):
            errors.append(
                f"{where}: manifest key {key!r} has type "
                f"{type(obj[key]).__name__}, expected {typ}"
            )
    if obj.get("schema") != MANIFEST_SCHEMA:
        errors.append(
            f"{where}: manifest schema {obj.get('schema')} != {MANIFEST_SCHEMA}"
        )
    fp = obj.get("config_fingerprint", "")
    if not re.fullmatch(r"[0-9a-f]{16}", fp):
        errors.append(f"{where}: config_fingerprint {fp!r} is not 16 hex digits")
    if obj.get("backend") == "auto":
        errors.append(
            f"{where}: manifest backend must be a resolved name, not 'auto'"
        )
    return errors


def _check_keys(obj: dict, schema: dict, what: str, where: str) -> list[str]:
    errors = []
    for key, typ in schema.items():
        if key not in obj:
            errors.append(f"{where}: {what} missing key {key!r}")
        elif not isinstance(obj[key], typ):
            errors.append(
                f"{where}: {what} key {key!r} has type "
                f"{type(obj[key]).__name__}, expected {typ}"
            )
    return errors


def check_shard_manifest(obj: dict, where: str) -> list[str]:
    errors = _check_keys(obj, SHARD_MANIFEST_KEYS, "shard manifest", where)
    fp = obj.get("spec_fingerprint", "")
    if not re.fullmatch(r"[0-9a-f]{16}", fp):
        errors.append(f"{where}: spec_fingerprint {fp!r} is not 16 hex digits")
    return errors


def check_cell_record(obj: dict, where: str) -> list[str]:
    errors = _check_keys(obj, CELL_KEYS, "cell record", where)
    cid = obj.get("cell_id", "")
    if not re.fullmatch(r"[0-9a-f]{16}", cid):
        errors.append(f"{where}: cell_id {cid!r} is not 16 hex digits")
    if obj.get("kind") == "cell" and not isinstance(obj.get("summary"), dict):
        errors.append(f"{where}: cell record needs a dict 'summary'")
    if obj.get("kind") == "cell-error" and not isinstance(
        obj.get("error"), dict
    ):
        errors.append(f"{where}: cell-error record needs a dict 'error'")
    return errors


def check_tolerance_record(obj: dict, where: str) -> list[str]:
    """A ``kind: "tolerance"`` line documents one entry of the gate's
    tolerance schema; it must match the code in
    ``repro.kernels.gates.METRIC_TOLERANCES`` exactly, so the docs can
    never advertise allowances the gate does not enforce."""
    from repro.kernels.gates import METRIC_TOLERANCES

    errors = []
    metric = obj.get("metric")
    if metric not in METRIC_TOLERANCES:
        errors.append(
            f"{where}: tolerance metric {metric!r} is not gated "
            f"(known: {sorted(METRIC_TOLERANCES)})"
        )
        return errors
    declared = METRIC_TOLERANCES[metric]
    for key in ("abs", "rel"):
        if not isinstance(obj.get(key), (int, float)):
            errors.append(f"{where}: tolerance needs numeric {key!r}")
        elif float(obj[key]) != float(declared[key]):
            errors.append(
                f"{where}: tolerance {key}={obj[key]} for {metric!r} "
                f"disagrees with METRIC_TOLERANCES ({declared[key]})"
            )
    return errors


def check_trace_summary(obj: dict, where: str) -> list[str]:
    errors = _check_keys(obj, TRACE_SUMMARY_KEYS, "trace summary", where)
    if obj.get("schema") != TRACE_SCHEMA:
        errors.append(
            f"{where}: trace-summary schema {obj.get('schema')} != "
            f"{TRACE_SCHEMA}"
        )
    return errors


def check_status_record(obj: dict, where: str) -> list[str]:
    errors = _check_keys(obj, STATUS_KEYS, "shard-status row", where)
    if obj.get("schema") != STATUS_SCHEMA:
        errors.append(
            f"{where}: shard-status schema {obj.get('schema')} != "
            f"{STATUS_SCHEMA}"
        )
    if obj.get("state") not in ("running", "complete", "draining", "stopped"):
        errors.append(
            f"{where}: shard-status state {obj.get('state')!r} must be "
            "'running', 'complete', 'draining', or 'stopped'"
        )
    fp = obj.get("spec_fingerprint", "")
    if not re.fullmatch(r"[0-9a-f]{16}", fp):
        errors.append(f"{where}: spec_fingerprint {fp!r} is not 16 hex digits")
    return errors


def check_sched_event(obj: dict, where: str) -> list[str]:
    errors = _check_keys(obj, SCHED_EVENT_KEYS, "sched-event row", where)
    event = obj.get("event")
    if event not in SCHED_EVENTS:
        errors.append(
            f"{where}: sched-event {event!r} is not a scheduler "
            f"lifecycle verb (known: {', '.join(SCHED_EVENTS)})"
        )
    if event in ("lease", "steal", "requeue", "reclaim", "complete", "error"):
        cid = obj.get("cell_id", "")
        if not (isinstance(cid, str) and re.fullmatch(r"[0-9a-f]{16}", cid)):
            errors.append(f"{where}: cell_id {cid!r} is not 16 hex digits")
    return errors


def check_path_record(obj: dict, where: str) -> list[str]:
    """A ``kind: "path"`` line is one uplink chain walked by an active
    routing substrate — the invariants mirror
    :meth:`repro.simulation.trace.TraceRecorder.record_path`."""
    errors = _check_keys(obj, PATH_KEYS, "path record", where)
    path = obj.get("path", [])
    if isinstance(path, list) and not all(isinstance(p, int) for p in path):
        errors.append(f"{where}: path must be a list of node indices")
    if isinstance(path, list) and isinstance(obj.get("hops"), int):
        if obj["hops"] != len(path) + 1:
            errors.append(
                f"{where}: hops {obj['hops']} != len(path) + 1 "
                f"({len(path) + 1})"
            )
    if isinstance(path, list) and obj.get("head") in path:
        errors.append(f"{where}: head may not appear in its own path")
    frames, delivered = obj.get("frames"), obj.get("delivered")
    if isinstance(frames, int) and isinstance(delivered, int):
        if not 0 <= delivered <= frames:
            errors.append(
                f"{where}: delivered {delivered} outside [0, frames={frames}]"
            )
    return errors


def check_checkpoint_header(obj: dict, where: str) -> list[str]:
    """An ``engine-checkpoint`` line is the self-describing header of a
    ``.ckpt`` snapshot; the invariants mirror the validation order in
    :func:`repro.checkpoint.read_checkpoint`."""
    errors = _check_keys(obj, CHECKPOINT_KEYS, "checkpoint header", where)
    if obj.get("schema") != CHECKPOINT_SCHEMA:
        errors.append(
            f"{where}: checkpoint schema {obj.get('schema')} != "
            f"{CHECKPOINT_SCHEMA}"
        )
    fp = obj.get("config_fingerprint", "")
    if not re.fullmatch(r"[0-9a-f]{16}", fp):
        errors.append(f"{where}: config_fingerprint {fp!r} is not 16 hex digits")
    sha = obj.get("payload_sha256", "")
    if not re.fullmatch(r"[0-9a-f]{64}", sha):
        errors.append(f"{where}: payload_sha256 {sha!r} is not 64 hex digits")
    return errors


def check_round_record(obj: dict, where: str) -> list[str]:
    known = {f.name for f in fields(RoundTrace)}
    unknown = set(obj) - known
    missing = known - set(obj)
    errors = []
    if unknown:
        errors.append(f"{where}: unknown round-record keys {sorted(unknown)}")
    if missing:
        errors.append(f"{where}: round record missing keys {sorted(missing)}")
    return errors


def check_file(path: Path) -> list[str]:
    errors = []
    blocks = FENCE.findall(path.read_text(encoding="utf-8"))
    if not blocks:
        errors.append(f"{path}: no ```jsonl blocks found")
    for bi, block in enumerate(blocks):
        for li, line in enumerate(filter(None, map(str.strip, block.splitlines()))):
            where = f"{path} block {bi + 1} line {li + 1}"
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: invalid JSON ({exc})")
                continue
            kind = obj.get("kind")
            if kind == MANIFEST_KIND:
                if li != 0:
                    errors.append(f"{where}: manifest must be the first line")
                errors.extend(check_manifest(obj, where))
            elif kind == SHARD_MANIFEST_KIND:
                if li != 0:
                    errors.append(f"{where}: manifest must be the first line")
                errors.extend(check_shard_manifest(obj, where))
            elif kind in ("cell", "cell-error"):
                errors.extend(check_cell_record(obj, where))
            elif kind == "shard-telemetry":
                if not isinstance(obj.get("snapshot"), dict):
                    errors.append(
                        f"{where}: shard-telemetry needs a dict 'snapshot'"
                    )
            elif kind == "tolerance":
                errors.extend(check_tolerance_record(obj, where))
            elif kind == SPAN_KIND:
                errors.extend(_check_keys(obj, SPAN_KEYS, "span", where))
            elif kind == INSTANT_KIND:
                errors.extend(_check_keys(obj, INSTANT_KEYS, "instant", where))
            elif kind == TRACE_SUMMARY_KIND:
                errors.extend(check_trace_summary(obj, where))
            elif kind == STATUS_KIND:
                errors.extend(check_status_record(obj, where))
            elif kind == SCHED_EVENT_KIND:
                errors.extend(check_sched_event(obj, where))
            elif kind == PATH_KIND:
                errors.extend(check_path_record(obj, where))
            elif kind == CHECKPOINT_KIND:
                errors.extend(check_checkpoint_header(obj, where))
            elif kind == "checkpoint-resume":
                errors.extend(
                    _check_keys(obj, RESUME_KEYS, "resume row", where)
                )
            else:
                errors.extend(check_round_record(obj, where))
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_docs_jsonl.py <markdown file>...", file=sys.stderr)
        return 2
    all_errors = []
    for name in argv:
        all_errors.extend(check_file(Path(name)))
    for err in all_errors:
        print(f"ERROR {err}", file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(argv)} file(s) checked")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
