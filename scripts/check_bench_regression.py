#!/usr/bin/env python
"""CI gate: freshly measured benchmarks must not regress the baselines.

Benchmark legs publish machine-readable ``BENCH_<name>.json`` records
into ``benchmarks/results/``; the repo commits reference copies of the
same records at its root.  This gate compares fresh against committed
and fails on:

* a **throughput drop** of more than :data:`DROP_TOLERANCE` on any
  throughput-like key (``node_rounds_per_sec``, ``speedup``) relative
  to the committed baseline;
* an **RSS ceiling breach** — fresh ``peak_rss_mb`` above the
  *baseline's* ``rss_ceiling_mb`` (the committed ceiling is the
  contract, whatever the fresh record claims);
* a **floor breach** — fresh values below the absolute floors the
  records themselves carry (``throughput_floor``, ``speedup_floor``).

A benchmark with no committed baseline (new bench, not yet anchored)
or no fresh record (leg not run on this host) is skipped with a
warning rather than failed: hosts differ in which optional legs they
run, and anchoring a new bench is a separate, deliberate commit.  The
relative-drop tolerance is deliberately loose — CI runners are noisy —
while the absolute floors catch catastrophic regressions exactly.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py \
        [--fresh-dir benchmarks/results] [--baseline-dir .]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Keys compared relatively (fresh must reach 1 - DROP_TOLERANCE of base).
THROUGHPUT_KEYS = ("node_rounds_per_sec", "speedup")
#: Allowed relative throughput drop before the gate fails.  Same-host
#: re-runs of the slot-kernel bench have been observed to swing ~20%
#: (scalar-loop timing noise), so anything tighter than 25% would flake;
#: the absolute floors below catch real regressions exactly.
DROP_TOLERANCE = 0.25
#: Absolute floors carried in the records themselves: floor key ->
#: measured key it bounds.
FLOOR_KEYS = {
    "throughput_floor": "node_rounds_per_sec",
    "speedup_floor": "speedup",
}


def load_bench(path: Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def compare(name: str, fresh: dict, base: dict) -> list[str]:
    """Failure messages for one benchmark pair (empty = pass)."""
    failures: list[str] = []
    for key in THROUGHPUT_KEYS:
        if key not in base:
            continue
        if key not in fresh:
            failures.append(f"{name}: fresh record lacks {key!r}")
            continue
        floor = (1.0 - DROP_TOLERANCE) * base[key]
        if fresh[key] < floor:
            failures.append(
                f"{name}: {key} dropped >{DROP_TOLERANCE:.0%}: "
                f"fresh {fresh[key]:.2f} < {floor:.2f} "
                f"(baseline {base[key]:.2f})"
            )
    ceiling = base.get("rss_ceiling_mb")
    if ceiling is not None and "peak_rss_mb" in fresh:
        if fresh["peak_rss_mb"] > ceiling:
            failures.append(
                f"{name}: peak_rss_mb {fresh['peak_rss_mb']:.1f} breaches "
                f"the committed ceiling {ceiling:.1f}"
            )
    for floor_key, value_key in FLOOR_KEYS.items():
        floor = fresh.get(floor_key)
        if floor is not None and value_key in fresh:
            if fresh[value_key] < floor:
                failures.append(
                    f"{name}: {value_key} {fresh[value_key]:.2f} below "
                    f"its absolute floor {floor:.2f}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", type=Path,
                        default=Path("benchmarks/results"))
    parser.add_argument("--baseline-dir", type=Path, default=Path("."))
    args = parser.parse_args(argv)

    fresh_paths = sorted(args.fresh_dir.glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"WARNING: no fresh BENCH_*.json under {args.fresh_dir}; "
              "nothing to gate", file=sys.stderr)
        return 0

    failures: list[str] = []
    compared = 0
    for fresh_path in fresh_paths:
        name = fresh_path.name
        base_path = args.baseline_dir / name
        if not base_path.exists():
            print(f"WARNING: {name}: no committed baseline at {base_path}; "
                  "skipped (anchor it in a deliberate commit)",
                  file=sys.stderr)
            continue
        fresh = load_bench(fresh_path)
        base = load_bench(base_path)
        msgs = compare(name, fresh, base)
        failures.extend(msgs)
        compared += 1
        verdict = "FAIL" if msgs else "ok"
        summary = ", ".join(
            f"{k}={fresh[k]:.2f} (base {base[k]:.2f})"
            for k in THROUGHPUT_KEYS if k in base and k in fresh
        )
        print(f"{verdict}: {name} {summary}")

    if not compared:
        print("WARNING: no benchmark had both a fresh record and a "
              "committed baseline; the gate checked nothing",
              file=sys.stderr)
        return 0
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print(f"bench-regression gate: {compared} benchmark(s) within "
          f"{DROP_TOLERANCE:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
