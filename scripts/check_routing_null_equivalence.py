#!/usr/bin/env python
"""CI gate: the routing substrate must cost nothing when unused.

Three checks:

1. **Golden equivalence** — every protocol's default
   (``routing=direct``) run reproduces
   ``tests/simulation/golden_trace.json`` round for round.  The inert
   DIRECT router may not move a single draw, joule, or packet relative
   to the pre-substrate traces.
2. **Scalar/batched equivalence under active routing** — the tree and
   qspt substrates produce the identical result summary (and routing
   summary) on the scalar and batched slot paths.
3. **No stray observability** — a direct run emits no path records and
   no ``routing/`` metrics; active runs emit both.

Usage: PYTHONPATH=src python scripts/check_routing_null_equivalence.py
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import sys

from repro.analysis import PROTOCOLS
from repro.config import ROUTING_CHOICES, RoutingConfig, paper_config
from repro.core import QLECProtocol
from repro.simulation import TraceRecorder
from repro.simulation.engine import SimulationEngine, run_simulation
from repro.telemetry import Telemetry

GOLDEN = (
    pathlib.Path(__file__).resolve().parents[1]
    / "tests" / "simulation" / "golden_trace.json"
)
ROUNDS = 5
SEED = 0


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def trace_rows(result) -> list[dict]:
    rows = []
    for rs in result.per_round:
        p = rs.packets
        rows.append(
            {
                "round": rs.round_index,
                "n_heads": rs.n_heads,
                "n_alive": rs.n_alive,
                "energy": rs.energy_consumed,
                "generated": p.generated,
                "delivered": p.delivered,
                "dropped_channel": p.dropped_channel,
                "dropped_queue": p.dropped_queue,
                "dropped_dead": p.dropped_dead,
                "expired": p.expired,
                "latency_slots": p.total_latency_slots,
                "hops": p.total_hops,
                "mean_queue_peak": rs.mean_queue_peak,
                "v_updates": rs.v_updates,
            }
        )
    return rows


def rows_match(got: list[dict], want: list[dict]) -> bool:
    """Same comparison contract as tests/simulation/test_golden_trace.py:
    exact on every integer field, rel=1e-9 on floats."""
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        for key, val in w.items():
            if isinstance(val, float):
                if not math.isclose(g[key], val, rel_tol=1e-9, abs_tol=0.0):
                    return False
            elif g[key] != val:
                return False
    return True


def check_golden_equivalence() -> int:
    golden = json.loads(GOLDEN.read_text())
    for name in sorted(PROTOCOLS):
        cfg = paper_config(seed=SEED, rounds=ROUNDS)
        # Say it explicitly: the default under test IS routing=direct.
        cfg = dataclasses.replace(cfg, routing=RoutingConfig(kind="direct"))
        trace = TraceRecorder()
        result = SimulationEngine(
            cfg, PROTOCOLS[name](), backend="numpy", trace=trace
        ).run()
        if "routing" in result.extras:
            return fail(f"{name}: direct run grew a routing summary")
        if trace.paths:
            return fail(f"{name}: direct run emitted path records")
        if not rows_match(trace_rows(result), golden[name]):
            return fail(
                f"{name}: routing=direct run diverged from the golden "
                "trace — the inert-router path is not bit-identical"
            )
        print(f"ok golden {name}")
    return 0


def check_scalar_batched_routing() -> int:
    for kind in ROUTING_CHOICES:
        if kind == "direct":
            continue
        cfg = dataclasses.replace(
            paper_config(seed=SEED, rounds=10),
            routing=RoutingConfig(kind=kind),
        )
        batched = run_simulation(cfg, QLECProtocol(), batched=True)
        scalar = run_simulation(cfg, QLECProtocol(), batched=False)
        if batched.summary() != scalar.summary():
            return fail(f"{kind}: scalar and batched summaries differ")
        if batched.extras.get("routing") != scalar.extras.get("routing"):
            return fail(f"{kind}: scalar and batched routing summaries differ")
        print(
            f"ok routing {kind} (pdr={batched.delivery_rate:.4f}, "
            f"broadcasts={batched.extras['routing']['broadcasts']})"
        )
    return 0


def check_observability() -> int:
    cfg = dataclasses.replace(
        paper_config(seed=SEED, rounds=4),
        routing=RoutingConfig(kind="tree"),
    )
    tel = Telemetry()
    trace = TraceRecorder()
    result = SimulationEngine(
        cfg, QLECProtocol(), telemetry=tel, trace=trace
    ).run()
    snap = tel.snapshot()
    if not trace.paths:
        return fail("tree run emitted no path records")
    if "routing/hops" not in snap:
        return fail("tree run emitted no routing/hops histogram")
    if result.extras.get("routing", {}).get("kind") != "tree":
        return fail("tree run's result extras carry no routing summary")
    print(f"ok observability tree ({len(trace.paths)} path records)")

    cfg = dataclasses.replace(cfg, routing=RoutingConfig(kind="direct"))
    tel = Telemetry()
    trace = TraceRecorder()
    SimulationEngine(cfg, QLECProtocol(), telemetry=tel, trace=trace).run()
    if trace.paths or any(k.startswith("routing/") for k in tel.snapshot()):
        return fail("direct run leaked routing observability")
    print("ok observability direct (silent)")
    return 0


def main() -> int:
    return (
        check_golden_equivalence()
        or check_scalar_batched_routing()
        or check_observability()
    )


if __name__ == "__main__":
    sys.exit(main())
