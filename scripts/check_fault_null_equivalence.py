#!/usr/bin/env python
"""CI gate: the fault subsystem must cost nothing when unused.

Two checks, both bit-exact:

1. **Golden equivalence** — every protocol's default (no-plan) run
   reproduces ``tests/simulation/golden_trace.json`` round for round.
   The NULL-injector path may not move a single draw, joule, or packet
   relative to the pre-fault-subsystem traces.
2. **Scalar/batched equivalence under chaos** — every catalog fault
   scenario produces the identical result summary (and fault summary)
   on the scalar and batched slot paths, so chaos never becomes an
   excuse for kernel divergence.

Usage: PYTHONPATH=src python scripts/check_fault_null_equivalence.py
"""

from __future__ import annotations

import json
import math
import pathlib
import sys

from repro.analysis import PROTOCOLS
from repro.config import paper_config
from repro.core import QLECProtocol
from repro.faults import build_fault_plan, fault_scenario_names
from repro.simulation import run_simulation
from repro.simulation.engine import SimulationEngine

GOLDEN = (
    pathlib.Path(__file__).resolve().parents[1]
    / "tests" / "simulation" / "golden_trace.json"
)
ROUNDS = 5
SEED = 0


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def trace_rows(result) -> list[dict]:
    rows = []
    for rs in result.per_round:
        p = rs.packets
        rows.append(
            {
                "round": rs.round_index,
                "n_heads": rs.n_heads,
                "n_alive": rs.n_alive,
                "energy": rs.energy_consumed,
                "generated": p.generated,
                "delivered": p.delivered,
                "dropped_channel": p.dropped_channel,
                "dropped_queue": p.dropped_queue,
                "dropped_dead": p.dropped_dead,
                "expired": p.expired,
                "latency_slots": p.total_latency_slots,
                "hops": p.total_hops,
                "mean_queue_peak": rs.mean_queue_peak,
                "v_updates": rs.v_updates,
            }
        )
    return rows


def rows_match(got: list[dict], want: list[dict]) -> bool:
    """Same comparison contract as tests/simulation/test_golden_trace.py:
    exact on every integer field, rel=1e-9 on floats (summation-order
    noise on the energy accumulators predates this subsystem)."""
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        for key, val in w.items():
            if isinstance(val, float):
                if not math.isclose(g[key], val, rel_tol=1e-9, abs_tol=0.0):
                    return False
            elif g[key] != val:
                return False
    return True


def check_golden_equivalence() -> int:
    golden = json.loads(GOLDEN.read_text())
    for name in sorted(PROTOCOLS):
        cfg = paper_config(seed=SEED, rounds=ROUNDS)
        assert cfg.faults is None  # the default path under test
        result = SimulationEngine(
            cfg, PROTOCOLS[name](), backend="numpy"
        ).run()
        if result.faults is not None:
            return fail(f"{name}: no-plan run grew a fault summary")
        if not rows_match(trace_rows(result), golden[name]):
            return fail(
                f"{name}: no-plan run diverged from the golden trace — "
                "the NULL-injector path is not bit-identical"
            )
        print(f"ok golden {name}")
    return 0


def check_scalar_batched_chaos() -> int:
    for scenario in fault_scenario_names():
        cfg = paper_config(seed=SEED, rounds=12)
        cfg = cfg.replace(faults=build_fault_plan(scenario, cfg))
        batched = run_simulation(cfg, QLECProtocol(), batched=True)
        scalar = run_simulation(cfg, QLECProtocol(), batched=False)
        if batched.summary() != scalar.summary():
            return fail(f"{scenario}: scalar and batched summaries differ")
        if batched.faults != scalar.faults:
            return fail(f"{scenario}: scalar and batched fault summaries differ")
        print(f"ok chaos {scenario} (pdr={batched.delivery_rate:.4f})")
    return 0


def main() -> int:
    return check_golden_equivalence() or check_scalar_batched_chaos()


if __name__ == "__main__":
    sys.exit(main())
