#!/usr/bin/env python
"""CI gate: qualify the statistical equivalence tier distributionally.

Runs the declared seed batch under the bitwise numpy reference and
under the candidate backend in the statistical tier, then checks every
gated metric's batch mean against the tolerances declared in
``repro.kernels.gates.METRIC_TOLERANCES``.  Exit 0 iff every metric of
every gated cell passes; failures print the offending metric, the two
means, and the allowance, so a drifting kernel is diagnosable from the
CI log alone.

Usage:
    PYTHONPATH=src python scripts/check_statistical_gates.py \
        [--backend auto] [--seeds 10] [--rounds 6] \
        [--protocols qlec fcm] [--lambdas 16.0] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", type=str, default="auto",
                        help="candidate backend to gate (resolved per host)")
    parser.add_argument("--seeds", type=int, default=10,
                        help="size of the seed batch (seeds 0..N-1)")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--protocols", type=str, nargs="+", default=["qlec"])
    parser.add_argument("--lambdas", type=float, nargs="+", default=[16.0])
    parser.add_argument("--json", type=str, default=None,
                        help="also write the full gate report as JSON")
    args = parser.parse_args(argv)

    from repro.kernels import run_statistical_gate

    report = run_statistical_gate(
        backend=args.backend,
        protocols=tuple(args.protocols),
        lambdas=tuple(args.lambdas),
        seeds=tuple(range(args.seeds)),
        rounds=args.rounds,
    )

    for cell in report.cells:
        print(
            f"[gate] {cell['protocol']} lambda={cell['lambda']} "
            f"backend={cell['resolved_backend']} "
            f"({report.n_seeds} seeds)"
        )
        for m in cell["metrics"]:
            status = "ok  " if m["passed"] else "FAIL"
            print(
                f"  {status} {m['metric']:<14} ref={m['ref_mean']:.6g} "
                f"cand={m['cand_mean']:.6g} |d|={m['delta']:.3g} "
                f"tol={m['tolerance']:.3g}"
            )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"[gate] wrote {args.json}")

    if not report.passed:
        print(
            f"[gate] FAILED: {len(report.failures)} metric(s) outside "
            "tolerance",
            file=sys.stderr,
        )
        return 1
    print("[gate] statistical tier within declared tolerances")
    return 0


if __name__ == "__main__":
    sys.exit(main())
