#!/usr/bin/env python
"""CI gate: a chaos-ridden scheduled sweep must merge back to serial.

Runs one small grid under the work-stealing scheduler with two injected
casualties — one worker SIGKILLed mid-cell (transient: the lease must
be reclaimed and only that cell re-leased) and one deterministic cell
failure (an immediate ``cell-error`` row, never re-leased) — then heals
the deterministic fault, resumes, and diffs rows and deterministic
telemetry against the serial sweep.  A clean scheduled pass and a
gzip-compressed pass are checked the same way, plus the resume
contract: re-running a complete scheduled artifact must recompute
nothing and leave its bytes untouched.  Any drift fails the build:
scheduler determinism is a contract, not a best effort.

Usage: PYTHONPATH=src python scripts/check_scheduler_determinism.py [workdir]
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
from pathlib import Path

from repro.analysis.sweep import run_cell, sweep_from_spec
from repro.parallel.scheduler import run_scheduled
from repro.parallel.sharding import SweepSpec, merge_artifacts
from repro.telemetry import deterministic_view

SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1, 2, 3),
    rounds=2,
    telemetry=True,
)

KILL_DIR_ENV = "REPRO_GATE_KILL_DIR"
HEAL_ENV = "REPRO_GATE_HEAL"
KILL_SEED, FAIL_SEED = 0, 1
CHAOS_LAMBDA = 4.0


def chaos_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    kill_dir = os.environ.get(KILL_DIR_ENV)
    if kill_dir and seed == KILL_SEED and lam == CHAOS_LAMBDA:
        marker = Path(kill_dir) / "killed-once"
        if not marker.exists():
            marker.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
    if (
        seed == FAIL_SEED
        and lam == CHAOS_LAMBDA
        and not os.environ.get(HEAL_ENV)
    ):
        raise ValueError("injected deterministic cell failure")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def check_merge(path: Path, serial, label: str) -> int:
    merged = merge_artifacts([path])
    if not merged.complete:
        return fail(
            f"{label}: merge incomplete "
            f"(missing {merged.missing}, errors {merged.errors})"
        )
    if merged.sweep.rows != serial.rows:
        return fail(f"{label}: merged rows differ from serial run")
    if deterministic_view(merged.sweep.telemetry) != deterministic_view(
        serial.telemetry
    ):
        return fail(f"{label}: merged telemetry differs from serial run")
    return 0


def main(argv: list[str]) -> int:
    workdir = Path(argv[0]) if argv else Path(tempfile.mkdtemp(prefix="sched-"))
    workdir.mkdir(parents=True, exist_ok=True)
    serial = sweep_from_spec(SPEC, serial=True)

    # -- clean scheduled pass + resume contract ------------------------
    # Chaos disarmed: no kill marker dir, fault healed.
    os.environ.pop(KILL_DIR_ENV, None)
    os.environ[HEAL_ENV] = "1"
    clean = workdir / "clean.jsonl"
    result = run_scheduled(
        SPEC, clean, num_workers=2, cell_fn=chaos_cell,
        poll_seconds=0.02,
    )
    if not result.ok or len(result.executed) != len(SPEC):
        return fail(f"clean: run incomplete ({result.errors})")
    if rc := check_merge(clean, serial, "clean"):
        return rc
    before = clean.read_bytes()
    resumed = run_scheduled(
        SPEC, clean, num_workers=2, cell_fn=chaos_cell, poll_seconds=0.02
    )
    if resumed.executed:
        return fail(f"clean: resume recomputed {resumed.executed}")
    if clean.read_bytes() != before:
        return fail("clean: resume rewrote artifact bytes")
    print(f"ok: clean scheduled run — {len(SPEC)} cells, merge == serial, "
          "resume touched nothing")

    # -- chaos pass: one SIGKILL + one deterministic failure -----------
    os.environ[KILL_DIR_ENV] = str(workdir)
    os.environ.pop(HEAL_ENV, None)
    chaotic = workdir / "chaos.jsonl"
    chaos = run_scheduled(
        SPEC, chaotic, num_workers=2, cell_fn=chaos_cell,
        poll_seconds=0.02,
    )
    if chaos.worker_deaths != 1:
        return fail(f"chaos: expected 1 worker death, saw {chaos.worker_deaths}")
    if chaos.reclaims != 1:
        return fail(
            "chaos: expected exactly the transient cell re-leased, "
            f"saw {chaos.reclaims} reclaim(s)"
        )
    if len(chaos.errors) != 1:
        return fail(f"chaos: expected 1 error row, saw {len(chaos.errors)}")
    err = chaos.errors[0]
    if err["error"]["class"] != "deterministic" or err["attempts"] != 1:
        return fail(f"chaos: deterministic failure re-leased: {err}")
    print("ok: chaos pass — 1 worker death reclaimed, deterministic "
          "failure errored on its single grant")

    # -- heal + resume: recompute only the errored cell ----------------
    os.environ[HEAL_ENV] = "1"
    healed = run_scheduled(
        SPEC, chaotic, num_workers=2, cell_fn=chaos_cell,
        poll_seconds=0.02,
    )
    if not healed.ok:
        return fail(f"healed: still erroring ({healed.errors})")
    if len(healed.executed) != 1:
        return fail(
            f"healed: expected exactly 1 recomputed cell, "
            f"got {healed.executed}"
        )
    if rc := check_merge(chaotic, serial, "healed chaos"):
        return rc
    print("ok: healed resume — recomputed 1 cell, merge == serial")

    # -- compressed pass -----------------------------------------------
    packed = workdir / "packed.jsonl.gz"
    result = run_scheduled(
        SPEC, packed, num_workers=2, cell_fn=chaos_cell,
        compression="gz", poll_seconds=0.02,
    )
    if not result.ok:
        return fail(f"gz: run incomplete ({result.errors})")
    if rc := check_merge(packed, serial, "gz"):
        return rc
    print("ok: gz-compressed scheduled run — merge == serial")

    print("ok: scheduler determinism holds through kills, faults, and codecs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
