#!/usr/bin/env python
"""CI gate: crash-safe checkpointing is bit-identical end to end.

The headline invariant of ``repro.checkpoint``: a run that is SIGKILLed
at an arbitrary round and resumed from its newest valid round-boundary
snapshot produces the *same* ``SimulationResult`` — summary, per-round
trace rows, faults, routing summary, and telemetry deterministic-view —
as a run that was never interrupted.  Checked for both the scalar and
batched engines with a fault plan and tree routing active, i.e. every
RNG stream (protocol, faults, routing) must survive the round trip.

Also checks the null path: a run with checkpointing enabled is
bit-identical to one without (snapshots are pure observation).

The kill leg re-executes this file as a subprocess (``--child``) that
checkpoints every CKPT_EVERY rounds and SIGKILLs itself after round
KILL_ROUND — deliberately *not* a snapshot boundary, so the resume has
to re-execute the rounds between the newest snapshot and the crash.
"""

import dataclasses
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.checkpoint import latest_valid, run_signature, snapshot_paths
from repro.config import RoutingConfig, paper_config
from repro.core import QLECProtocol
from repro.faults import build_fault_plan
from repro.simulation import SimulationEngine
from repro.telemetry import Telemetry
from repro.telemetry.manifest import config_fingerprint
from repro.telemetry.registry import deterministic_view

ROUNDS = 8
SEED = 0
CKPT_EVERY = 2
KILL_ROUND = 5  # not a multiple of CKPT_EVERY: resume must re-execute 5..8
TAG = "gate"


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def gate_config():
    config = dataclasses.replace(
        paper_config(seed=SEED, rounds=ROUNDS),
        routing=RoutingConfig(kind="tree"),
    )
    return config.replace(faults=build_fault_plan("ch-kill", config))


def gate_engine(config, *, batched: bool) -> SimulationEngine:
    return SimulationEngine(
        config, QLECProtocol(), batched=batched, telemetry=Telemetry()
    )


def round_rows(result) -> list[dict]:
    return [dataclasses.asdict(r) for r in result.per_round]


def child(checkpoint_dir: Path, batched: bool) -> None:
    """Run checkpointed, then die hard right after KILL_ROUND."""
    engine = gate_engine(gate_config(), batched=batched)

    def kill_switch() -> bool:
        if engine.state.round_index >= KILL_ROUND:
            os.kill(os.getpid(), signal.SIGKILL)
        return False

    engine.run(
        checkpoint_every=CKPT_EVERY,
        checkpoint_dir=checkpoint_dir,
        checkpoint_tag=TAG,
        stop_requested=kill_switch,
    )
    raise SystemExit("unreachable: the kill switch never fired")


def compare(resumed, reference, resumed_tel, reference_tel, leg: str) -> int:
    if resumed.summary() != reference.summary():
        return fail(f"{leg}: resumed summary diverged")
    if round_rows(resumed) != round_rows(reference):
        return fail(f"{leg}: resumed per-round trace rows diverged")
    if resumed.faults != reference.faults:
        return fail(f"{leg}: resumed fault report diverged")
    if resumed.extras.get("routing") != reference.extras.get("routing"):
        return fail(f"{leg}: resumed routing summary diverged")
    if deterministic_view(resumed_tel.snapshot()) != deterministic_view(
        reference_tel.snapshot()
    ):
        return fail(f"{leg}: telemetry deterministic-view diverged")
    return 0


def check_kill_resume(batched: bool) -> int:
    leg = "batched" if batched else "scalar"
    config = gate_config()
    reference_engine = gate_engine(config, batched=batched)
    reference = reference_engine.run()

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp)
        proc = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--child",
                str(checkpoint_dir),
                "1" if batched else "0",
            ],
            env=os.environ.copy(),
            capture_output=True,
            text=True,
        )
        if proc.returncode != -signal.SIGKILL:
            return fail(
                f"{leg}: child exited {proc.returncode}, expected SIGKILL"
                f"\n{proc.stderr}"
            )
        found = latest_valid(
            checkpoint_dir,
            TAG,
            config_fingerprint=config_fingerprint(config),
            run=run_signature(reference_engine),
        )
        if found is None:
            return fail(f"{leg}: no valid snapshot survived the kill")
        _, header, engine = found
        if header["round_index"] >= KILL_ROUND:
            return fail(
                f"{leg}: snapshot at round {header['round_index']} — the "
                f"kill at round {KILL_ROUND} should predate it"
            )
        resumed = engine.run()
        rc = compare(
            resumed, reference, engine.telemetry,
            reference_engine.telemetry, leg,
        )
        if rc:
            return rc
        print(
            f"ok kill-resume {leg} (killed r{KILL_ROUND}, resumed "
            f"r{header['round_index']}, pdr={resumed.delivery_rate:.4f})"
        )
    return 0


def check_null_equivalence() -> int:
    config = gate_config()
    plain_engine = gate_engine(config, batched=True)
    plain = plain_engine.run()
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_engine = gate_engine(config, batched=True)
        checkpointed = ckpt_engine.run(
            checkpoint_every=CKPT_EVERY, checkpoint_dir=Path(tmp),
            checkpoint_tag=TAG,
        )
        if not snapshot_paths(Path(tmp), TAG):
            return fail("null: checkpointing run wrote no snapshots")
        rc = compare(
            checkpointed, plain, ckpt_engine.telemetry,
            plain_engine.telemetry, "null",
        )
        if rc:
            return rc
    print("ok null (checkpointing run == plain run)")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[0] == "--child":
        child(Path(argv[1]), batched=argv[2] == "1")
        return 0
    return (
        check_null_equivalence()
        or check_kill_resume(batched=True)
        or check_kill_resume(batched=False)
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
