"""Tests for the shared compressed/tolerant JSONL layer (repro.telemetry.jsonl)."""

import gzip
import json

import pytest

from repro.telemetry.jsonl import (
    COMPRESSION_CHOICES,
    CompressionUnavailableError,
    JsonlWriter,
    compression_suffix,
    detect_compression,
    read_jsonl_tolerant,
    read_text_tolerant,
    resolve_compression,
    zstd_module,
)

HAVE_ZSTD = zstd_module() is not None

CODECS = ["none", "gz"] + (["zst"] if HAVE_ZSTD else [])


class TestResolveCompression:
    def test_none_means_plain(self):
        assert resolve_compression(None) == "none"

    def test_explicit_codecs_pass_through(self):
        assert resolve_compression("none") == "none"
        assert resolve_compression("gz") == "gz"

    def test_auto_degrades_or_prefers_zstd(self):
        # Mirrors the kernel-backend policy: auto picks the best
        # available codec and never raises.
        assert resolve_compression("auto") == ("zst" if HAVE_ZSTD else "gz")

    @pytest.mark.skipif(HAVE_ZSTD, reason="zstd binding installed")
    def test_explicit_zst_without_binding_fails_loudly(self):
        with pytest.raises(CompressionUnavailableError, match="zstandard"):
            resolve_compression("zst")

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError, match="compression"):
            resolve_compression("lz4")

    def test_choices_cover_suffixes(self):
        for codec in COMPRESSION_CHOICES:
            if codec == "auto":
                continue
            assert compression_suffix(codec) in ("", ".gz", ".zst")


class TestDetectCompression:
    def test_magic_bytes_beat_suffix(self, tmp_path):
        # A gzip stream under a misleading name is still gzip.
        p = tmp_path / "lies.jsonl"
        p.write_bytes(gzip.compress(b'{"a": 1}\n'))
        assert detect_compression(p) == "gz"

    def test_plain_file(self, tmp_path):
        p = tmp_path / "plain.jsonl"
        p.write_text('{"a": 1}\n')
        assert detect_compression(p) == "none"

    def test_missing_file_falls_back_to_suffix(self, tmp_path):
        assert detect_compression(tmp_path / "new.jsonl.gz") == "gz"
        assert detect_compression(tmp_path / "new.jsonl.zst") == "zst"
        assert detect_compression(tmp_path / "new.jsonl") == "none"


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODECS)
    def test_write_read(self, tmp_path, codec):
        p = tmp_path / f"t.jsonl{compression_suffix(codec)}"
        rows = [{"i": i, "v": f"row{i}"} for i in range(5)]
        with JsonlWriter(p, compression=codec) as fh:
            for row in rows:
                fh.write_record(row)
        assert read_jsonl_tolerant(p) == rows

    @pytest.mark.parametrize("codec", CODECS)
    def test_append_starts_new_member(self, tmp_path, codec):
        # The shard resume protocol: atomic rewrite, then append
        # sessions.  Concatenated members must read back as one stream.
        p = tmp_path / "t.jsonl"
        with JsonlWriter(p, compression=codec) as fh:
            fh.write_record({"member": 1})
        with JsonlWriter(p, compression=codec, append=True) as fh:
            fh.write_record({"member": 2})
        assert read_jsonl_tolerant(p) == [{"member": 1}, {"member": 2}]

    @pytest.mark.parametrize("codec", CODECS)
    def test_flush_makes_lines_visible(self, tmp_path, codec):
        # A reader (or a crash) must see every flushed line without
        # waiting for close.
        p = tmp_path / "t.jsonl"
        fh = JsonlWriter(p, compression=codec)
        try:
            fh.write_record({"i": 1})
            fh.flush()
            assert read_jsonl_tolerant(p) == [{"i": 1}]
        finally:
            fh.close()

    def test_gzip_bytes_are_stable(self, tmp_path):
        # mtime=0 keeps compressed artifacts byte-reproducible — the
        # determinism gates compare artifact bytes.
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for p in (a, b):
            with JsonlWriter(p, compression="gz") as fh:
                fh.write_record({"same": "payload"})
        assert a.read_bytes() == b.read_bytes()

    def test_writer_requires_resolved_codec(self, tmp_path):
        with pytest.raises(ValueError, match="resolve_compression"):
            JsonlWriter(tmp_path / "t.jsonl", compression="auto")

    @pytest.mark.skipif(HAVE_ZSTD, reason="zstd binding installed")
    def test_writer_zst_without_binding_raises(self, tmp_path):
        with pytest.raises(CompressionUnavailableError):
            JsonlWriter(tmp_path / "t.jsonl", compression="zst")


class TestTornTails:
    def test_plain_torn_final_line_dropped(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"i": 1}\n{"i": 2}\n{"i": 3, "tor')
        assert read_jsonl_tolerant(p) == [{"i": 1}, {"i": 2}]

    def test_plain_interior_corruption_raises(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"i": 1}\nGARBAGE\n{"i": 3}\n')
        with pytest.raises(ValueError, match="malformed JSONL at line 2"):
            read_jsonl_tolerant(p)

    def test_gz_truncated_final_member_keeps_prefix(self, tmp_path):
        # A crash mid-append truncates the final gzip member; every
        # complete earlier member (and any complete lines the torn one
        # produced) must survive.
        p = tmp_path / "t.jsonl"
        with JsonlWriter(p, compression="gz") as fh:
            fh.write_record({"i": 1})
        whole = p.read_bytes()
        tail = gzip.compress(json.dumps({"i": 2}).encode() + b"\n")
        p.write_bytes(whole + tail[: len(tail) - 4])  # chop the tail
        rows = read_jsonl_tolerant(p)
        assert rows[0] == {"i": 1}

    def test_gz_flushed_lines_survive_member_truncation(self, tmp_path):
        # Kill-while-writing: flushed sync points keep earlier lines
        # decodable even though the member never closed.
        p = tmp_path / "t.jsonl"
        fh = JsonlWriter(p, compression="gz")
        fh.write_record({"i": 1})
        fh.flush()
        raw = p.read_bytes()  # snapshot before the member is finalised
        fh.close()
        p.write_bytes(raw)  # "crash": the close bytes never landed
        assert read_jsonl_tolerant(p) == [{"i": 1}]

    @pytest.mark.skipif(not HAVE_ZSTD, reason="no zstd binding")
    def test_zst_truncated_final_frame_keeps_prefix(self, tmp_path):
        p = tmp_path / "t.jsonl"
        with JsonlWriter(p, compression="zst") as fh:
            fh.write_record({"i": 1})
        whole = p.read_bytes()
        p.write_bytes(whole[: len(whole) - 3])
        rows = read_jsonl_tolerant(p)
        assert rows and rows[0] == {"i": 1}

    def test_text_tolerant_replaces_bad_utf8(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_bytes(b'{"i": 1}\n\xff\xfe')
        text = read_text_tolerant(p)
        assert text.startswith('{"i": 1}')
