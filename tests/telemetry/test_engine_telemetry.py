"""Engine-level telemetry: phase coverage, counter fidelity, and the
cardinal rule that instrumentation never changes simulation results."""

import pytest

from repro.core import QLECProtocol
from repro.simulation import SimulationEngine, run_simulation
from repro.telemetry import TIME_PREFIX, Telemetry, deterministic_view
from tests.conftest import make_config


@pytest.fixture(scope="module")
def instrumented():
    tel = Telemetry()
    result = run_simulation(make_config(seed=3), QLECProtocol(), telemetry=tel)
    return tel, result


class TestExtras:
    def test_extras_carry_snapshot_and_manifest(self, instrumented):
        tel, result = instrumented
        payload = result.extras["telemetry"]
        assert payload["metrics"] == tel.snapshot()
        assert payload["manifest"]["kind"] == "manifest"
        assert payload["manifest"]["protocol"] == "qlec"
        assert payload["manifest"]["seed"] == 3

    def test_no_extras_without_telemetry(self):
        result = run_simulation(make_config(seed=3), QLECProtocol())
        assert "telemetry" not in result.extras


class TestPhaseTimers:
    def test_expected_phases_present(self, instrumented):
        tel, _ = instrumented
        snap = tel.snapshot()
        for phase in (
            "setup", "ch_select", "generate", "relay_choice", "discharge",
            "channel", "queue_offer", "estimator", "service", "uplink",
            "round_end",
        ):
            assert f"time/phase/{phase}" in snap, phase

    def test_phases_cover_round_time(self, instrumented):
        """Lap markers partition the round, so per-phase totals must sum
        to >= 90 % of the measured round wall time (the observability
        acceptance criterion)."""
        tel, _ = instrumented
        snap = tel.snapshot()
        phase_total = sum(
            m["value"] for name, m in snap.items()
            if name.startswith("time/phase/")
        )
        round_total = snap["time/round"]["total"]
        assert round_total > 0.0
        assert phase_total >= 0.90 * round_total

    def test_round_gauge_counts_rounds(self, instrumented):
        tel, result = instrumented
        assert tel.snapshot()["time/round"]["count"] == result.rounds_executed


class TestCounterFidelity:
    def test_packet_counters_match_result(self, instrumented):
        tel, result = instrumented
        snap = tel.snapshot()
        p = result.packets
        assert snap["packets/generated"]["value"] == p.generated
        assert snap["packets/delivered"]["value"] == p.delivered
        assert snap["packets/dropped_channel"]["value"] == p.dropped_channel
        assert snap["packets/dropped_queue"]["value"] == p.dropped_queue
        assert snap["packets/dropped_dead"]["value"] == p.dropped_dead
        assert snap["packets/expired"]["value"] == p.expired

    def test_energy_categories_match_ledger(self, instrumented):
        tel, result = instrumented
        snap = tel.snapshot()
        by_cat = (
            snap["energy/tx_j"]["value"]
            + snap["energy/rx_j"]["value"]
            + snap["energy/da_j"]["value"]
        )
        assert by_cat == pytest.approx(result.total_energy, rel=1e-9)

    def test_rounds_counter(self, instrumented):
        tel, result = instrumented
        assert tel.snapshot()["rounds"]["value"] == result.rounds_executed

    def test_channel_attempts_bounded_by_acks(self, instrumented):
        tel, _ = instrumented
        snap = tel.snapshot()
        assert 0 < snap["channel/acks"]["value"] <= snap["channel/attempts"]["value"]

    def test_queue_peak_histogram_totals(self, instrumented):
        tel, result = instrumented
        h = tel.snapshot()["queue/peak"]
        assert sum(h["buckets"]) == h["count"] > 0


class TestDeterminismPreserved:
    def test_results_identical_with_and_without_telemetry(self):
        """Telemetry must not touch any RNG stream: summaries are
        bit-identical whether instrumentation is on or off."""
        plain = run_simulation(make_config(seed=11), QLECProtocol())
        instr = run_simulation(
            make_config(seed=11), QLECProtocol(), telemetry=Telemetry()
        )
        a, b = plain.summary(), instr.summary()
        assert a == b

    def test_scalar_batched_snapshots_agree_deterministically(self):
        """Both engine paths count the same packets/energy/drops."""
        snaps = {}
        for batched in (True, False):
            tel = Telemetry()
            engine = SimulationEngine(
                make_config(seed=4), QLECProtocol(), batched=batched,
                telemetry=tel,
            )
            engine.run()
            snaps[batched] = deterministic_view(tel.snapshot())
        assert snaps[True] == snaps[False]

    def test_time_prefix_convention(self, instrumented):
        """Every wall-clock metric lives under time/ so the
        deterministic view is exactly the seeded-RNG-determined part."""
        tel, _ = instrumented
        view = deterministic_view(tel.snapshot())
        assert all(not name.startswith(TIME_PREFIX) for name in view)
        assert "packets/generated" in view
