"""Tests for the lap-clock phase timers and the null telemetry object."""

from repro.telemetry import NULL, NullTelemetry, Telemetry


class TestTelemetry:
    def test_laps_partition_elapsed_time(self):
        tel = Telemetry()
        t0 = tel.now()
        tel.lap_start()
        for _ in range(100):
            tel.lap("a")
            tel.lap("b")
        elapsed = tel.now() - t0
        snap = tel.snapshot()
        attributed = snap["time/phase/a"]["value"] + snap["time/phase/b"]["value"]
        assert attributed <= elapsed
        assert attributed >= 0.0

    def test_lap_creates_prefixed_counter(self):
        tel = Telemetry()
        tel.lap_start()
        tel.lap("setup")
        assert "time/phase/setup" in tel.registry

    def test_phase_cache_reuses_counter(self):
        tel = Telemetry()
        tel.lap_start()
        tel.lap("x")
        c = tel.registry.get("time/phase/x")
        tel.lap("x")
        assert tel.registry.get("time/phase/x") is c
        assert c.value >= 0.0

    def test_span_times_block(self):
        tel = Telemetry()
        with tel.span("rl/train"):
            pass
        snap = tel.snapshot()
        assert snap["time/rl/train"]["value"] >= 0.0

    def test_registry_passthrough(self):
        tel = Telemetry()
        tel.counter("c").add(2)
        tel.gauge("g").observe(1.0)
        tel.histogram("h", (0, 1)).observe(0.5)
        snap = tel.snapshot()
        assert snap["c"]["value"] == 2
        assert snap["g"]["count"] == 1
        assert snap["h"]["count"] == 1

    def test_merge_folds_registries(self):
        a, b = Telemetry(), Telemetry()
        a.counter("x").add(1)
        b.counter("x").add(2)
        a.merge(b)
        assert a.snapshot()["x"]["value"] == 3

    def test_enabled_flag(self):
        assert Telemetry().enabled is True


class TestNullTelemetry:
    def test_singleton_disabled(self):
        assert NULL.enabled is False
        assert isinstance(NULL, NullTelemetry)

    def test_all_hooks_are_noops(self):
        NULL.lap_start()
        NULL.lap("anything")
        with NULL.span("anything"):
            pass
        assert NULL.now() == 0.0
        assert NULL.snapshot() == {}

    def test_no_registry(self):
        assert NULL.registry is None
