"""Tests for config fingerprints and run manifests."""

import json

import pytest

from repro import __version__
from repro.telemetry import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    config_fingerprint,
    run_manifest,
)
from tests.conftest import make_config


class TestConfigFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(make_config()) == config_fingerprint(make_config())

    def test_sensitive_to_any_tunable(self):
        base = config_fingerprint(make_config())
        assert config_fingerprint(make_config(seed=1)) != base
        assert config_fingerprint(make_config(n_nodes=31)) != base
        assert config_fingerprint(make_config(mean_interarrival=8.0)) != base

    def test_format(self):
        fp = config_fingerprint(make_config())
        assert len(fp) == 16
        int(fp, 16)  # hex digits only


class TestRunManifest:
    def test_required_fields(self):
        m = run_manifest(make_config(seed=3), "qlec")
        assert m["kind"] == MANIFEST_KIND
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["package"] == "repro"
        assert m["version"] == __version__
        assert m["protocol"] == "qlec"
        assert m["seed"] == 3
        assert m["n_nodes"] == 30
        assert m["rounds"] == 5

    def test_json_serialisable(self):
        m = run_manifest(make_config(), "qlec")
        assert json.loads(json.dumps(m)) == m

    def test_extra_keys_merge(self):
        m = run_manifest(make_config(), "qlec", extra={"note": "test"})
        assert m["note"] == "test"

    def test_extra_cannot_shadow(self):
        with pytest.raises(ValueError):
            run_manifest(make_config(), "qlec", extra={"seed": 99})
