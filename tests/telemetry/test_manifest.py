"""Tests for config fingerprints and run manifests."""

import json

import pytest

from repro import __version__
from repro.telemetry import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    SHARD_MANIFEST_KIND,
    config_fingerprint,
    run_manifest,
    shard_manifest,
    stable_fingerprint,
)
from tests.conftest import make_config


class TestConfigFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(make_config()) == config_fingerprint(make_config())

    def test_sensitive_to_any_tunable(self):
        base = config_fingerprint(make_config())
        assert config_fingerprint(make_config(seed=1)) != base
        assert config_fingerprint(make_config(n_nodes=31)) != base
        assert config_fingerprint(make_config(mean_interarrival=8.0)) != base

    def test_format(self):
        fp = config_fingerprint(make_config())
        assert len(fp) == 16
        int(fp, 16)  # hex digits only


class TestRunManifest:
    def test_required_fields(self):
        m = run_manifest(make_config(seed=3), "qlec")
        assert m["kind"] == MANIFEST_KIND
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["package"] == "repro"
        assert m["version"] == __version__
        assert m["protocol"] == "qlec"
        assert m["seed"] == 3
        assert m["n_nodes"] == 30
        assert m["rounds"] == 5

    def test_json_serialisable(self):
        m = run_manifest(make_config(), "qlec")
        assert json.loads(json.dumps(m)) == m

    def test_extra_keys_merge(self):
        m = run_manifest(make_config(), "qlec", extra={"note": "test"})
        assert m["note"] == "test"

    def test_extra_cannot_shadow(self):
        with pytest.raises(ValueError):
            run_manifest(make_config(), "qlec", extra={"seed": 99})

    def test_backend_recorded_resolved_never_auto(self):
        m = run_manifest(make_config(), "qlec")  # config backend is "auto"
        assert m["backend"] != "auto"
        from repro.kernels import backend_names

        assert m["backend"] in backend_names()

    def test_backend_explicit_passthrough(self):
        m = run_manifest(make_config(), "qlec", backend="numpy")
        assert m["backend"] == "numpy"

    def test_backend_versions_recorded(self):
        m = run_manifest(make_config(), "qlec")
        versions = m["backend_versions"]
        import numpy as np

        assert versions["numpy"] == np.__version__
        # Key present even when the optional dep is absent (value null).
        assert "numba" in versions


class TestStableFingerprint:
    def test_insensitive_to_key_order(self):
        assert stable_fingerprint({"a": 1, "b": 2}) == stable_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert stable_fingerprint({"a": 1}) != stable_fingerprint({"a": 2})

    def test_format(self):
        fp = stable_fingerprint({"x": [1, 2.5, "s"]})
        assert len(fp) == 16
        int(fp, 16)

    def test_config_fingerprint_is_stable_fingerprint(self):
        import dataclasses

        cfg = make_config()
        assert config_fingerprint(cfg) == stable_fingerprint(
            dataclasses.asdict(cfg)
        )


class TestShardManifest:
    SPEC = {"protocols": ["direct"], "lambdas": [4.0], "seeds": [0]}

    def test_required_fields(self):
        m = shard_manifest(self.SPEC, stable_fingerprint(self.SPEC), 2, 3)
        assert m["kind"] == SHARD_MANIFEST_KIND
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["version"] == __version__
        assert (m["shard"], m["num_shards"]) == (2, 3)
        assert m["spec"] == self.SPEC
        assert json.loads(json.dumps(m)) == m

    def test_merged_marker_allowed(self):
        m = shard_manifest(self.SPEC, stable_fingerprint(self.SPEC), 0, 0)
        assert (m["shard"], m["num_shards"]) == (0, 0)

    @pytest.mark.parametrize("shard,total", [(0, 3), (4, 3), (-1, 1)])
    def test_out_of_range_rejected(self, shard, total):
        with pytest.raises(ValueError):
            shard_manifest(self.SPEC, "ab" * 8, shard, total)
