"""Tests for the mergeable metric primitives.

The contract under test is the one the process-pool fan-in relies on:
merge is order-insensitive (``merge(a, b) == merge(b, a)``), merging an
empty metric is the identity, and everything pickles.
"""

import pickle

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    deterministic_view,
    merge_snapshots,
)


def make_registry_a():
    reg = MetricRegistry()
    reg.counter("packets/generated").add(10)
    reg.counter("time/phase/channel").add(0.25)
    g = reg.gauge("queue/utilization")
    g.observe(0.5)
    g.observe(0.75)
    reg.histogram("queue/peak", (0, 1, 2, 4)).observe_many([0, 1, 3, 9])
    return reg


def make_registry_b():
    reg = MetricRegistry()
    reg.counter("packets/generated").add(7)
    reg.counter("packets/delivered").add(5)
    g = reg.gauge("queue/utilization")
    g.observe(0.25)
    reg.histogram("queue/peak", (0, 1, 2, 4)).observe_many([2, 2])
    return reg


class TestCounter:
    def test_add_accumulates(self):
        c = Counter()
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_merge_commutes(self):
        a, b = Counter(3), Counter(4)
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab == ba == Counter(7)

    def test_empty_merge_identity(self):
        c = Counter(3)
        c.merge(Counter())
        assert c == Counter(3)

    def test_snapshot_round_trip(self):
        c = Counter(9)
        assert Counter.from_snapshot(c.snapshot()) == c


class TestGauge:
    def test_summary_stats(self):
        g = Gauge()
        g.observe_many([1.0, 2.0, 3.0])
        assert (g.count, g.total, g.min, g.max) == (3, 6.0, 1.0, 3.0)
        assert g.mean == 2.0

    def test_merge_commutes(self):
        a, b = Gauge(), Gauge()
        a.observe_many([1.0, 5.0])
        b.observe(3.0)
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab == ba
        assert ab.min == 1.0 and ab.max == 5.0 and ab.count == 3

    def test_empty_merge_identity(self):
        a = Gauge()
        a.observe(2.0)
        before = a.copy()
        a.merge(Gauge())
        assert a == before

    def test_empty_gauge_snapshot_round_trips(self):
        g = Gauge()
        assert Gauge.from_snapshot(g.snapshot()) == g

    def test_snapshot_round_trip(self):
        g = Gauge()
        g.observe_many([4.0, -1.0])
        assert Gauge.from_snapshot(g.snapshot()) == g


class TestHistogram:
    def test_bucket_boundaries(self):
        """Bucket i counts edges[i-1] < v <= edges[i]; overflow last."""
        h = Histogram((0, 1, 2, 4))
        h.observe_many([0, 1, 2, 3, 4, 5])
        assert h.buckets == [1, 1, 1, 2, 1]
        assert h.count == 6
        assert h.total == 15.0

    def test_bucket_sum_equals_count(self):
        h = Histogram((1, 2, 4, 8))
        h.observe_many(range(20))
        assert sum(h.buckets) == h.count == 20

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1, 1, 2))
        with pytest.raises(ValueError):
            Histogram(())

    def test_merge_commutes(self):
        a, b = Histogram((0, 2, 4)), Histogram((0, 2, 4))
        a.observe_many([1, 3, 5])
        b.observe_many([0, 2])
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab == ba
        assert ab.buckets == [1, 2, 1, 1]

    def test_merge_rejects_different_edges(self):
        a, b = Histogram((0, 1)), Histogram((0, 2))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_merge_identity(self):
        a = Histogram((0, 1))
        a.observe(0.5)
        before = a.copy()
        a.merge(Histogram((0, 1)))
        assert a == before

    def test_snapshot_round_trip(self):
        h = Histogram((0, 1, 2))
        h.observe_many([0.5, 1.5, 7.0])
        assert Histogram.from_snapshot(h.snapshot()) == h


class TestMetricRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricRegistry()
        reg.histogram("h", (0, 1))
        with pytest.raises(ValueError):
            reg.histogram("h", (0, 2))

    def test_merge_commutes(self):
        ab = make_registry_a().merge(make_registry_b())
        ba = make_registry_b().merge(make_registry_a())
        assert ab == ba
        assert ab.get("packets/generated").value == 17

    def test_merge_is_union(self):
        merged = make_registry_a().merge(make_registry_b())
        assert "packets/delivered" in merged
        assert "time/phase/channel" in merged

    def test_empty_merge_identity(self):
        a = make_registry_a()
        assert a.merge(MetricRegistry()) == make_registry_a()
        assert MetricRegistry().merge(make_registry_a()) == make_registry_a()

    def test_merge_does_not_alias_other(self):
        """Merging an absent name copies the metric, never shares it."""
        a, b = MetricRegistry(), MetricRegistry()
        b.counter("x").add(1)
        a.merge(b)
        b.counter("x").add(10)
        assert a.get("x").value == 1

    def test_pickle_round_trip(self):
        reg = make_registry_a()
        clone = pickle.loads(pickle.dumps(reg))
        assert clone == reg

    def test_snapshot_round_trip(self):
        reg = make_registry_a()
        assert MetricRegistry.from_snapshot(reg.snapshot()) == reg

    def test_snapshot_keys_sorted(self):
        snap = make_registry_a().snapshot()
        assert list(snap) == sorted(snap)


class TestSnapshotHelpers:
    def test_merge_snapshots_commutes(self):
        a = make_registry_a().snapshot()
        b = make_registry_b().snapshot()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_merge_snapshots_empty_identity(self):
        a = make_registry_a().snapshot()
        assert merge_snapshots(a, {}) == a
        assert merge_snapshots() == {}

    def test_merge_snapshots_associative(self):
        a = make_registry_a().snapshot()
        b = make_registry_b().snapshot()
        c = MetricRegistry()
        c.counter("packets/generated").add(100)
        c = c.snapshot()
        assert merge_snapshots(merge_snapshots(a, b), c) == merge_snapshots(
            a, merge_snapshots(b, c)
        )

    def test_deterministic_view_strips_time(self):
        view = deterministic_view(make_registry_a().snapshot())
        assert "time/phase/channel" not in view
        assert "packets/generated" in view


class TestNondeterministicPrefixes:
    """deterministic_view strips every NONDETERMINISTIC_PREFIXES name."""

    def test_strips_mem_and_rss_keeps_prof_kernels(self):
        from repro.telemetry import NONDETERMINISTIC_PREFIXES

        reg = MetricRegistry()
        reg.counter("prof/kernels/distance_block/calls").add(3)
        reg.gauge("mem/resident_mb").observe(6.2)
        reg.gauge("prof/rss/mb").observe(240.0)
        reg.counter("time/phase/setup").add(0.1)
        reg.counter("packets/generated").add(10)
        view = deterministic_view(reg.snapshot())
        assert set(view) == {
            "prof/kernels/distance_block/calls", "packets/generated",
        }
        assert NONDETERMINISTIC_PREFIXES == ("time/", "mem/", "prof/rss")
