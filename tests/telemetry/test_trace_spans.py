"""Tests for hierarchical span tracing (repro.telemetry.trace)."""

import dataclasses
import json

import pytest

from repro.core import QLECProtocol
from repro.faults import build_fault_plan
from repro.simulation import run_simulation
from repro.simulation.engine import SimulationEngine
from repro.telemetry import (
    NULL_TRACER,
    SpanTracer,
    merge_trace_summaries,
    read_trace_jsonl,
    rss_mb,
)
from repro.telemetry.trace import INSTANT_KIND, SPAN_KIND, TRACE_SUMMARY_KIND
from tests.conftest import make_config


def _structure(tracer):
    """Events minus wall-clock — the deterministic part."""
    return [
        {k: v for k, v in ev.items() if k not in ("ts", "dur")}
        for ev in tracer.events
    ]


class TestSpanMechanics:
    def test_begin_end_nesting_and_parents(self):
        trc = SpanTracer()
        run_id = trc.begin("run", cat="run")
        round_id = trc.begin("round", cat="round", args={"round": 0})
        assert trc.end() == round_id
        assert trc.end() == run_id
        by_id = {ev["id"]: ev for ev in trc.events}
        assert by_id[run_id]["parent"] is None
        assert by_id[round_id]["parent"] == run_id
        # Inner span closes first, so it is emitted first.
        assert [ev["id"] for ev in trc.events] == [round_id, run_id]

    def test_lap_emits_phase_span_under_stack_top(self):
        trc = SpanTracer()
        rid = trc.begin("round", cat="round")
        trc.lap_start()
        trc.lap("setup")
        trc.end()
        phase = next(ev for ev in trc.events if ev["cat"] == "phase")
        assert phase["name"] == "setup"
        assert phase["parent"] == rid
        assert phase["dur"] >= 0

    def test_kernel_spans_reparent_to_closing_phase(self):
        trc = SpanTracer()
        trc.begin("round", cat="round")
        trc.lap_start()
        t0 = trc.now()
        trc.kernel("distance_block", t0, 0.001, 90, 1440)
        trc.lap("ch_select")
        trc.end()
        kernel = next(ev for ev in trc.events if ev["cat"] == "kernel")
        phase = next(ev for ev in trc.events if ev["cat"] == "phase")
        assert kernel["parent"] == phase["id"]
        assert kernel["args"] == {"elements": 90, "bytes": 1440}

    def test_instant_parents_to_open_span(self):
        trc = SpanTracer()
        rid = trc.begin("round", cat="round")
        trc.instant("fault/crash", cat="fault", args={"round": 3, "killed": 1})
        trc.end()
        inst = next(ev for ev in trc.events if ev["kind"] == INSTANT_KIND)
        assert inst["parent"] == rid
        assert inst["args"]["killed"] == 1

    def test_bounded_buffer_counts_drops(self):
        trc = SpanTracer(max_events=2)
        trc.begin("run")
        for i in range(5):
            trc.instant(f"i{i}")
        trc.end()  # run span itself dropped too: buffer already full
        assert len(trc.events) == 2
        assert trc.dropped == 4
        assert trc.summary()["dropped"] == 4

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(max_events=0)

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            SpanTracer().end()

    def test_null_tracer_hooks_are_noops(self):
        NULL_TRACER.lap_start()
        NULL_TRACER.lap("phase")
        NULL_TRACER.kernel("m", 0.0, 0.0, 0, 0)
        NULL_TRACER.instant("x")
        assert NULL_TRACER.begin("run") == 0
        assert NULL_TRACER.end() == 0
        assert NULL_TRACER.events == []
        assert not NULL_TRACER.enabled


class TestSummaryMerge:
    def _summary(self, names):
        trc = SpanTracer()
        for n in names:
            trc.begin(n)
            trc.end()
        return trc.summary()

    def test_merge_is_commutative(self):
        a = self._summary(["round", "round", "run"])
        b = self._summary(["round", "uplink"])
        assert merge_trace_summaries(a, b) == merge_trace_summaries(b, a)

    def test_empty_merge_is_identity(self):
        a = self._summary(["run"])
        merged = merge_trace_summaries(a, merge_trace_summaries())
        assert merged["spans_by_name"] == a["spans_by_name"]
        assert merged["events"] == a["events"]


class TestExports:
    def _traced_run(self, **kwargs):
        trc = SpanTracer()
        run_simulation(
            make_config(rounds=3, **kwargs), QLECProtocol(), tracer=trc
        )
        return trc

    def test_jsonl_round_trip(self, tmp_path):
        trc = self._traced_run()
        path = tmp_path / "trace.jsonl"
        trc.write_jsonl(path)
        loaded = read_trace_jsonl(path)
        assert loaded["manifest"]["kind"] == "manifest"
        assert loaded["summary"]["kind"] == TRACE_SUMMARY_KIND
        assert len(loaded["events"]) == len(trc.events)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "manifest"

    def test_read_tolerates_torn_tail(self, tmp_path):
        trc = self._traced_run()
        path = tmp_path / "trace.jsonl"
        trc.write_jsonl(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "id":')  # torn final line
        loaded = read_trace_jsonl(path)
        assert len(loaded["events"]) == len(trc.events)

    def test_chrome_export_valid_and_monotone(self):
        trc = self._traced_run()
        doc = json.loads(trc.to_chrome())
        events = doc["traceEvents"]
        assert events, "empty chrome trace"
        data = [e for e in events if e["ph"] != "M"]
        ts = [e["ts"] for e in data]
        assert ts == sorted(ts)  # monotone on the single tid
        assert all(e["ts"] >= 0 for e in data)
        assert all(e.get("dur", 0) >= 0 for e in data)
        assert all(e["tid"] == 0 and e["pid"] == 0 for e in data)
        assert {e["ph"] for e in data} <= {"X", "i"}

    def test_chrome_write(self, tmp_path):
        trc = self._traced_run()
        path = tmp_path / "trace.chrome.json"
        trc.write_chrome(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestEngineIntegration:
    def _chaos_config(self):
        cfg = make_config(rounds=6)
        return dataclasses.replace(cfg, faults=build_fault_plan("ch-kill", cfg))

    def test_tracing_does_not_perturb_results(self):
        cfg = self._chaos_config()
        traced = run_simulation(cfg, QLECProtocol(), tracer=SpanTracer())
        plain = run_simulation(cfg, QLECProtocol())
        assert traced.total_energy == plain.total_energy
        assert traced.packets == plain.packets
        assert traced.faults == plain.faults

    def test_span_identities_deterministic(self):
        cfg = self._chaos_config()
        tracers = []
        for _ in range(2):
            trc = SpanTracer()
            run_simulation(cfg, QLECProtocol(), tracer=trc)
            tracers.append(trc)
        assert _structure(tracers[0]) == _structure(tracers[1])

    def test_hierarchy_and_fault_instants(self):
        cfg = self._chaos_config()
        trc = SpanTracer()
        run_simulation(cfg, QLECProtocol(), tracer=trc)
        spans = {ev["id"]: ev for ev in trc.events if ev["kind"] == SPAN_KIND}
        cats = {ev["cat"] for ev in trc.events}
        assert {"run", "round", "phase", "kernel"} <= cats
        run_spans = [s for s in spans.values() if s["cat"] == "run"]
        round_spans = [s for s in spans.values() if s["cat"] == "round"]
        assert len(run_spans) == 1
        assert len(round_spans) == cfg.rounds
        assert all(s["parent"] == run_spans[0]["id"] for s in round_spans)
        # The acceptance property: fault instants sit inside the round
        # span whose round index they carry.
        faults = [
            ev for ev in trc.events
            if ev["kind"] == INSTANT_KIND and ev["cat"] == "fault"
        ]
        assert faults, "ch-kill plan produced no fault instants"
        for inst in faults:
            parent = spans[inst["parent"]]
            assert parent["cat"] == "round"
            assert parent["args"]["round"] == inst["args"]["round"]
            assert parent["ts"] <= inst["ts"] <= parent["ts"] + parent["dur"]

    def test_engine_fills_tracer_manifest(self):
        trc = SpanTracer()
        engine = SimulationEngine(make_config(), QLECProtocol(), tracer=trc)
        assert trc.manifest is engine.manifest
        assert trc.manifest["kind"] == "manifest"

    def test_mem_sample_instants_present(self):
        trc = SpanTracer()
        run_simulation(make_config(rounds=3), QLECProtocol(), tracer=trc)
        mems = [ev for ev in trc.events if ev["cat"] == "mem"]
        assert mems  # round 0 always samples (round_index % 8 == 0)
        assert "resident_mb" in mems[0]["args"]


def test_rss_mb_returns_positive_or_none():
    value = rss_mb()
    assert value is None or value > 0
