"""Tests for the first-order radio model (Eq. 6, Eq. 18)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RadioConfig
from repro.energy.radio import (
    FirstOrderRadio,
    aggregate_energy,
    amplifier_energy,
    receive_energy,
    transmit_energy,
)

RADIO = RadioConfig()
BITS = 4000


class TestAmplifierEnergy:
    def test_free_space_below_d0(self):
        d = RADIO.d0 / 2
        expected = BITS * RADIO.eps_fs * d * d
        assert amplifier_energy(BITS, d, RADIO) == pytest.approx(expected)

    def test_multipath_above_d0(self):
        d = 2 * RADIO.d0
        expected = BITS * RADIO.eps_mp * d ** 4
        assert amplifier_energy(BITS, d, RADIO) == pytest.approx(expected)

    def test_continuous_at_crossover(self):
        """eps_fs * d0^2 == eps_mp * d0^4 by construction of d0."""
        eps = 1e-6
        below = amplifier_energy(BITS, RADIO.d0 - eps, RADIO)
        above = amplifier_energy(BITS, RADIO.d0 + eps, RADIO)
        assert below == pytest.approx(above, rel=1e-3)

    def test_zero_distance_costs_nothing(self):
        assert amplifier_energy(BITS, 0.0, RADIO) == 0.0

    def test_vectorized_matches_scalar(self):
        ds = np.array([0.0, 10.0, RADIO.d0, 150.0, 400.0])
        vec = amplifier_energy(BITS, ds, RADIO)
        scal = [amplifier_energy(BITS, float(d), RADIO) for d in ds]
        np.testing.assert_allclose(vec, scal)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            amplifier_energy(BITS, -1.0, RADIO)

    @given(st.floats(min_value=0.0, max_value=1e4), st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_distance(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert amplifier_energy(BITS, lo, RADIO) <= amplifier_energy(
            BITS, hi, RADIO
        ) + 1e-30


class TestTransmitReceive:
    def test_transmit_includes_circuit_cost(self):
        d = 50.0
        assert transmit_energy(BITS, d, RADIO) == pytest.approx(
            BITS * RADIO.e_elec + amplifier_energy(BITS, d, RADIO)
        )

    def test_receive_is_distance_free(self):
        assert receive_energy(BITS, RADIO) == pytest.approx(BITS * RADIO.e_elec)

    def test_aggregate_uses_e_da(self):
        assert aggregate_energy(BITS, RADIO) == pytest.approx(BITS * RADIO.e_da)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            receive_energy(-1, RADIO)
        with pytest.raises(ValueError):
            aggregate_energy(-1, RADIO)


class TestFirstOrderRadio:
    def test_round_energy_formula(self):
        """Eq. (6) expanded by hand for a known instance."""
        radio = FirstOrderRadio(RADIO)
        n, k = 100, 5
        d_bs, d_ch_sq = 100.0, 900.0
        expected = BITS * (
            2 * n * RADIO.e_elec
            + n * RADIO.e_da
            + k * RADIO.eps_mp * d_bs ** 4
            + n * RADIO.eps_fs * d_ch_sq
        )
        assert radio.round_energy(BITS, n, k, d_bs, d_ch_sq) == pytest.approx(expected)

    def test_round_energy_rejects_bad_counts(self):
        radio = FirstOrderRadio(RADIO)
        with pytest.raises(ValueError):
            radio.round_energy(BITS, 0, 5, 100.0, 900.0)
        with pytest.raises(ValueError):
            radio.round_energy(BITS, 100, 0, 100.0, 900.0)

    def test_default_config(self):
        assert FirstOrderRadio().config.e_elec == RADIO.e_elec

    def test_shortcuts_delegate(self):
        radio = FirstOrderRadio(RADIO)
        assert radio.tx(BITS, 30.0) == pytest.approx(transmit_energy(BITS, 30.0, RADIO))
        assert radio.rx(BITS) == pytest.approx(receive_energy(BITS, RADIO))
        assert radio.da(BITS) == pytest.approx(aggregate_energy(BITS, RADIO))
        assert radio.amp(BITS, 30.0) == pytest.approx(
            amplifier_energy(BITS, 30.0, RADIO)
        )
        assert radio.d0 == RADIO.d0
