"""Tests for energy harvesting and battery recharge."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.energy.battery import EnergyLedger
from repro.energy.harvesting import (
    ConstantHarvester,
    HarvestingConfig,
    SolarHarvester,
    build_harvester,
)
from repro.simulation.engine import run_simulation
from tests.conftest import make_config


class TestRecharge:
    def test_credits_energy(self):
        led = EnergyLedger(np.full(3, 1.0))
        led.discharge(0, 0.5, "tx")
        banked = led.recharge(0.2)
        assert led.residual[0] == pytest.approx(0.7)
        assert banked == pytest.approx(0.2)  # others were full

    def test_caps_at_capacity(self):
        led = EnergyLedger(np.full(2, 1.0))
        assert led.recharge(5.0) == 0.0
        np.testing.assert_allclose(led.residual, 1.0)

    def test_revives_nodes(self):
        led = EnergyLedger(np.full(2, 1.0), death_line=0.3)
        led.discharge(0, 0.8, "tx")
        assert not led.is_alive(0)
        led.recharge(0.5, revive=True)
        assert led.is_alive(0)

    def test_no_revive_option(self):
        led = EnergyLedger(np.full(2, 1.0), death_line=0.3)
        led.discharge(0, 0.8, "tx")
        led.recharge(0.5, revive=False)
        assert not led.is_alive(0)

    def test_rejects_negative(self):
        led = EnergyLedger(np.full(2, 1.0))
        with pytest.raises(ValueError):
            led.recharge(-0.1)

    def test_gross_vs_net_accounting(self):
        led = EnergyLedger(np.full(1, 1.0))
        led.discharge(0, 0.4, "tx")
        led.recharge(0.4)
        assert led.total_spent == pytest.approx(0.4)   # gross
        assert led.total_consumed == pytest.approx(0.0)  # net


class TestHarvesters:
    def test_constant_income(self):
        h = ConstantHarvester(np.random.default_rng(0), 0.01)
        np.testing.assert_allclose(h.income(4, 0), 0.01)

    def test_solar_zero_at_night(self):
        h = SolarHarvester(np.random.default_rng(1), 0.01, rounds_per_day=10)
        # Second half of the period is night (sin < 0 clipped).
        assert h.income(5, 7).sum() == 0.0

    def test_solar_positive_at_noon(self):
        h = SolarHarvester(np.random.default_rng(2), 0.01, rounds_per_day=12)
        assert h.income(5, 3).sum() > 0.0

    def test_solar_long_run_mean_matches(self):
        rng = np.random.default_rng(3)
        h = SolarHarvester(rng, 0.01, rounds_per_day=10)
        incomes = [h.income(100, r).mean() for r in range(2000)]
        assert float(np.mean(incomes)) == pytest.approx(0.01, rel=0.15)

    def test_apply_credits_ledger(self):
        led = EnergyLedger(np.full(3, 1.0))
        led.discharge(np.arange(3), 0.5, "tx")
        h = ConstantHarvester(np.random.default_rng(4), 0.1)
        banked = h.apply(led, 0)
        assert banked == pytest.approx(0.3)

    def test_build_dispatch(self):
        rng = np.random.default_rng(5)
        assert isinstance(
            build_harvester(HarvestingConfig(model="constant"), rng),
            ConstantHarvester,
        )
        assert isinstance(
            build_harvester(HarvestingConfig(model="solar"), rng), SolarHarvester
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HarvestingConfig(model="fusion")
        with pytest.raises(ValueError):
            HarvestingConfig(mean_income=-1.0)
        with pytest.raises(ValueError):
            HarvestingConfig(rounds_per_day=0)


class TestEngineIntegration:
    def test_harvesting_extends_survival(self):
        base = make_config(
            seed=5, initial_energy=0.02, rounds=15, mean_interarrival=2.0
        )
        plain = run_simulation(base, QLECProtocol())
        harvested = run_simulation(
            base.replace(
                harvesting=HarvestingConfig(model="constant", mean_income=0.005)
            ),
            QLECProtocol(),
        )
        assert harvested.n_alive_final >= plain.n_alive_final

    def test_harvested_run_keeps_invariants(self):
        config = make_config(seed=6).replace(
            harvesting=HarvestingConfig(model="solar", mean_income=0.002)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_gross_energy_still_positive_with_harvesting(self):
        config = make_config(seed=7).replace(
            harvesting=HarvestingConfig(model="constant", mean_income=0.05)
        )
        result = run_simulation(config, QLECProtocol())
        assert result.total_energy > 0.0
