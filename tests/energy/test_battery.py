"""Tests for the vectorized battery ledger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.battery import EnergyLedger


def make_ledger(n=5, initial=1.0, death_line=0.0):
    return EnergyLedger(np.full(n, initial), death_line=death_line)


class TestConstruction:
    def test_heterogeneous_initial(self):
        led = EnergyLedger(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(led.initial, [1.0, 2.0, 3.0])

    def test_rejects_nonpositive_energy(self):
        with pytest.raises(ValueError):
            EnergyLedger(np.array([1.0, 0.0]))

    def test_rejects_initial_below_death_line(self):
        with pytest.raises(ValueError):
            EnergyLedger(np.array([1.0, 0.05]), death_line=0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EnergyLedger(np.array([]))

    def test_views_are_read_only(self):
        led = make_ledger()
        with pytest.raises(ValueError):
            led.residual[0] = 0.0
        with pytest.raises(ValueError):
            led.alive[0] = False


class TestDischarge:
    def test_single_node(self):
        led = make_ledger()
        led.discharge(2, 0.25, "tx")
        assert led.residual[2] == pytest.approx(0.75)
        assert led.residual[0] == 1.0

    def test_vectorized_mask(self):
        led = make_ledger()
        mask = np.array([True, False, True, False, True])
        led.discharge(mask, 0.1, "rx")
        np.testing.assert_allclose(led.residual, [0.9, 1.0, 0.9, 1.0, 0.9])

    def test_floor_at_zero(self):
        led = make_ledger()
        led.discharge(0, 5.0, "tx")
        assert led.residual[0] == 0.0

    def test_death_at_death_line(self):
        led = make_ledger(death_line=0.2)
        led.discharge(0, 0.85, "tx")
        assert not led.is_alive(0)
        assert led.any_dead

    def test_dead_node_frozen(self):
        led = make_ledger(death_line=0.5)
        led.discharge(0, 0.6, "tx")
        frozen = led.residual[0]
        led.discharge(0, 0.2, "tx")
        assert led.residual[0] == frozen

    def test_negative_amount_rejected(self):
        led = make_ledger()
        with pytest.raises(ValueError):
            led.discharge(0, -0.1)

    def test_unknown_category_rejected(self):
        led = make_ledger()
        with pytest.raises(ValueError):
            led.discharge(0, 0.1, "warp")

    def test_category_accounting_sums_to_consumed(self):
        led = make_ledger()
        led.discharge(0, 0.1, "tx")
        led.discharge(1, 0.2, "rx")
        led.discharge(2, 0.05, "da")
        assert led.spent_tx + led.spent_rx + led.spent_da == pytest.approx(
            led.total_consumed
        )

    def test_clipped_discharge_records_actual_spend(self):
        """When a node floors at zero, only the real joules count."""
        led = make_ledger(initial=0.3)
        led.discharge(0, 1.0, "tx")
        assert led.spent_tx == pytest.approx(0.3)
        assert led.total_consumed == pytest.approx(0.3)


class TestDerived:
    def test_consumption_ratio(self):
        led = EnergyLedger(np.array([1.0, 2.0]))
        led.discharge(0, 0.5, "tx")
        led.discharge(1, 0.5, "tx")
        np.testing.assert_allclose(led.consumption_ratio(), [0.5, 0.25])

    def test_average_energy_counts_dead_nodes(self):
        led = make_ledger(n=2, death_line=0.5)
        led.discharge(0, 0.8, "tx")  # dies with 0.2 left
        assert led.average_energy() == pytest.approx((0.2 + 1.0) / 2)

    def test_snapshot_is_a_copy(self):
        led = make_ledger()
        snap = led.snapshot()
        led.discharge(0, 0.5, "tx")
        assert snap[0] == 1.0

    def test_n_alive(self):
        led = make_ledger(n=3, death_line=0.9)
        led.discharge(1, 0.5, "tx")
        assert led.n_alive == 2


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.floats(min_value=0.0, max_value=0.4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_never_negative_and_monotone(self, ops):
        """Property: residuals stay in [0, initial] and never increase."""
        led = make_ledger(n=8, initial=1.0, death_line=0.1)
        prev = led.snapshot()
        for idx, amount in ops:
            led.discharge(idx, amount, "tx")
            cur = led.snapshot()
            assert np.all(cur >= 0.0)
            assert np.all(cur <= prev + 1e-12)
            prev = cur
        assert led.total_consumed == pytest.approx(
            led.total_initial - led.total_residual
        )
