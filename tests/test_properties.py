"""Cross-module property-based invariants (hypothesis).

Each property here spans more than one subsystem — the single-module
properties live next to their modules.  Kept on modest example counts:
every example is a real (small) simulation or a full selection round.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QLECProtocol
from repro.core.selection import ImprovedDEECSelector
from repro.core.theory import cluster_radius
from repro.simulation import run_simulation
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestSelectionProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=8),
        r=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_selection_always_valid(self, seed, k, r):
        """For any round and k: heads are alive, unique, d_c-spaced,
        and exactly min(k, feasible) many under promotion."""
        state = NetworkState(make_config(n_nodes=30, seed=seed, n_clusters=k))
        state.round_index = r
        selector = ImprovedDEECSelector(k)
        result = selector.select(state)
        heads = result.heads
        assert len(np.unique(heads)) == heads.size
        assert state.ledger.alive[heads].all()
        assert heads.size <= 30
        d_c = cluster_radius(k, state.config.deployment.side)
        pos = state.nodes.positions[heads]
        for i in range(heads.size):
            for j in range(i + 1, heads.size):
                assert np.linalg.norm(pos[i] - pos[j]) > d_c

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_selection_deterministic_given_state(self, seed):
        """Identical states and streams produce identical heads."""
        a = NetworkState(make_config(seed=seed))
        b = NetworkState(make_config(seed=seed))
        ha = ImprovedDEECSelector(3).select(a).heads
        hb = ImprovedDEECSelector(3).select(b).heads
        np.testing.assert_array_equal(ha, hb)


class TestSimulationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        lam=st.floats(min_value=1.0, max_value=32.0),
        energy=st.floats(min_value=0.005, max_value=1.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_full_run_invariants(self, seed, lam, energy):
        """Any scenario: accounting closes, bounds hold, nothing NaN."""
        config = make_config(
            n_nodes=12, rounds=3, seed=seed,
            mean_interarrival=lam, initial_energy=energy,
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        p = result.packets
        assert p.generated == p.delivered + p.dropped
        assert 0.0 <= result.delivery_rate <= 1.0
        assert np.isfinite(result.total_energy)
        assert result.total_energy <= 12 * energy + 1e-9  # can't spend more than carried

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_energy_monotone_in_traffic(self, seed):
        """More offered load never costs less energy (same seed)."""
        lo = run_simulation(
            make_config(n_nodes=15, rounds=3, seed=seed, mean_interarrival=16.0),
            QLECProtocol(),
        )
        hi = run_simulation(
            make_config(n_nodes=15, rounds=3, seed=seed, mean_interarrival=2.0),
            QLECProtocol(),
        )
        assert hi.packets.generated >= lo.packets.generated
        if hi.packets.generated > lo.packets.generated:
            assert hi.total_energy >= lo.total_energy

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        retries=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=8, deadline=None)
    def test_latency_at_least_one_slot(self, seed, retries):
        config = make_config(n_nodes=12, rounds=3, seed=seed).replace(
            max_retries=retries
        )
        result = run_simulation(config, QLECProtocol())
        assert all(lat >= 1 for lat in result.packets.latencies)


class TestProtocolFairnessProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_same_deployment_across_protocols(self, seed):
        """Protocol choice never perturbs the deployment or traffic
        streams — the foundation of every paired comparison."""
        from repro.baselines import KMeansProtocol

        from repro.simulation.engine import SimulationEngine

        a = SimulationEngine(make_config(seed=seed), QLECProtocol())
        b = SimulationEngine(make_config(seed=seed), KMeansProtocol())
        np.testing.assert_array_equal(
            a.state.nodes.positions, b.state.nodes.positions
        )
        active = np.ones(a.state.n, dtype=bool)
        np.testing.assert_array_equal(
            a.traffic.arrivals(active), b.traffic.arrivals(active)
        )
