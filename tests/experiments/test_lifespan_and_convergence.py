"""Tests for the lifespan-curve and convergence-X drivers, plus the
FND/HND/LND metrics they rely on."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.experiments import (
    LifespanCurveConfig,
    measure_x,
    render_convergence_study,
    run_convergence_study,
    run_lifespan_curves,
)
from repro.simulation import run_simulation
from tests.conftest import make_config


class TestLifespanMilestones:
    def make_lethal_result(self):
        config = make_config(
            seed=4, initial_energy=0.01, rounds=20, mean_interarrival=2.0
        )
        return run_simulation(config, QLECProtocol())

    def test_milestone_ordering(self):
        result = self.make_lethal_result()
        fnd = result.first_death_round
        hnd = result.half_death_round
        lnd = result.last_death_round
        assert fnd is not None
        if hnd is not None:
            assert fnd <= hnd
        if lnd is not None and hnd is not None:
            assert hnd <= lnd

    def test_alive_curve_monotone_without_harvesting(self):
        result = self.make_lethal_result()
        curve = result.alive_curve()
        assert len(curve) == result.rounds_executed
        assert np.all(np.diff(curve) <= 0)

    def test_censored_when_nobody_dies(self):
        config = make_config(seed=5, initial_energy=5.0, rounds=3)
        result = run_simulation(config, QLECProtocol())
        assert result.first_death_round is None
        assert result.half_death_round is None
        assert result.last_death_round is None


class TestLifespanCurveDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_lifespan_curves(
            LifespanCurveConfig(
                protocols=("qlec", "kmeans"),
                seeds=(0,),
                rounds=12,
                initial_energy=0.03,
                mean_interarrival=2.0,
            )
        )

    def test_curves_shape(self, result):
        assert set(result.curves) == {"qlec", "kmeans"}
        assert result.curves["qlec"].shape == (12,)

    def test_milestones_present(self, result):
        for name in ("qlec", "kmeans"):
            fnd, hnd, lnd = result.milestones[name]
            assert np.isfinite(fnd) or np.isnan(fnd)

    def test_render(self, result):
        text = result.render()
        assert "alive nodes per round" in text
        assert "FND" in text and "HND" in text


class TestConvergenceX:
    def test_expected_mode_converges_fast(self):
        row = measure_x(n_nodes=40, k=4, mode="expected")
        assert row.sweeps <= 5
        assert row.x_updates == row.sweeps * (40 - row.k)

    def test_sampled_mode_needs_many_more_updates(self):
        """The paper's 'X much larger than N' regime."""
        expected = measure_x(n_nodes=40, k=4, mode="expected")
        sampled = measure_x(n_nodes=40, k=4, mode="sampled")
        assert sampled.x_updates > 5 * expected.x_updates
        assert sampled.x_over_n > 10.0

    def test_sampled_contraction_matches_learning_rate(self):
        """Per-sweep contraction ~ (1 - lr) for the partial TD step."""
        row = measure_x(n_nodes=40, k=4, mode="sampled", learning_rate=0.3)
        assert row.contraction_rate == pytest.approx(0.7, abs=0.1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_x(mode="psychic")

    def test_study_and_render(self):
        rows = run_convergence_study(n_values=(30,), modes=("expected",))
        text = render_convergence_study(rows)
        assert "X / N" in text
        assert len(rows) == 1
