"""Tests for the experiment drivers (small instances for speed)."""

import numpy as np
import pytest

from repro.experiments import (
    ABLATION_VARIANTS,
    Fig3Config,
    Fig4Config,
    measure_qlearning_updates,
    measure_selection_scaling,
    render_ablation,
    render_complexity_report,
    run_ablation,
    run_fig3,
    run_fig4,
    run_kopt_validation,
)


class TestFig3Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(
            Fig3Config(
                lambdas=(4.0, 16.0),
                seeds=(0,),
                rounds=4,
                serial=True,
            )
        )

    def test_all_panels_present(self, result):
        for panel in (result.pdr, result.energy, result.lifespan, result.latency):
            assert set(panel) == {"qlec", "fcm", "kmeans"}
            assert all(len(v) == 2 for v in panel.values())

    def test_pdr_in_unit_interval(self, result):
        for series in result.pdr.values():
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_render_contains_all_figures(self, result):
        text = result.render()
        assert "Fig. 3(a)" in text
        assert "Fig. 3(b)" in text
        assert "Fig. 3(c)" in text

    def test_sweep_rows_kept(self, result):
        assert len(result.sweep.rows) == 3 * 2 * 1


class TestFig4Driver:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig4(
            Fig4Config(n_nodes=150, n_clusters=14, rounds=3, seed=1)
        )

    def test_consumption_ratio_valid(self, report):
        c = report.consumption_ratio
        assert c.shape == (150,)
        assert np.all((c >= 0.0) & (c <= 1.0))

    def test_balance_in_bounds(self, report):
        assert 0.0 < report.balance_index <= 1.0

    def test_quadrants_shape(self, report):
        assert report.quadrant_means.shape == (4, 4)

    def test_render(self, report):
        text = report.render()
        assert "Fig. 4" in text
        assert "quadrant" in text

    def test_comparison_optional(self):
        report = run_fig4(
            Fig4Config(
                n_nodes=100, n_clusters=9, rounds=2, seed=2, compare=("kmeans",)
            )
        )
        assert set(report.comparison) == {"qlec", "kmeans"}


class TestKoptDriver:
    def test_agreement_on_table2(self):
        report = run_kopt_validation(mc_samples=50_000)
        assert report.matches
        assert 10.0 < report.k_closed_form < 13.0

    def test_lemma1_agreement(self):
        report = run_kopt_validation(mc_samples=50_000)
        assert report.lemma1_monte_carlo == pytest.approx(
            report.lemma1_analytic, rel=0.02
        )

    def test_render(self):
        report = run_kopt_validation(mc_samples=10_000)
        assert "Theorem 1" in report.render()


class TestComplexityDriver:
    def test_selection_scaling_rows(self):
        rows = measure_selection_scaling(n_values=(30, 60), rounds=4)
        assert len(rows) == 2
        assert all(r.seconds > 0 for r in rows)

    def test_qlearning_cost_identity(self):
        """Lemma 3: exactly k+1 Q evaluations per V update."""
        row = measure_qlearning_updates()
        assert row.evaluations_per_update == pytest.approx(row.k + 1)

    def test_render(self):
        rows = measure_selection_scaling(n_values=(30,), rounds=2)
        q = measure_qlearning_updates()
        text = render_complexity_report(rows, q)
        assert "Lemma 2" in text and "Lemma 3" in text


class TestAblationDriver:
    def test_small_ablation_runs(self):
        variants = {
            k: v
            for k, v in ABLATION_VARIANTS.items()
            if k in ("qlec (full)", "direct")
        }
        rows = run_ablation(variants, seeds=(0,), rounds=3)
        assert [r.variant for r in rows] == ["qlec (full)", "direct"]
        assert all(0.0 <= r.pdr <= 1.0 for r in rows)

    def test_render(self):
        variants = {"direct": ABLATION_VARIANTS["direct"]}
        text = render_ablation(run_ablation(variants, seeds=(0,), rounds=2))
        assert "ablation" in text.lower()
