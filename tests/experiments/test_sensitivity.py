"""Tests for the hyperparameter sensitivity study."""

import pytest

from repro.experiments import (
    SENSITIVITY_AXES,
    render_sensitivity,
    run_sensitivity,
)
from repro.experiments.sensitivity import _patched_config


class TestPatching:
    def test_gamma_patch(self):
        config = _patched_config("gamma", 0.5, 4.0, 0)
        assert config.qlearning.gamma == 0.5

    def test_alpha2_patches_beta2_too(self):
        config = _patched_config("alpha2", 2.0, 4.0, 0)
        assert config.qlearning.alpha2 == 2.0
        assert config.qlearning.beta2 == 2.0

    def test_estimator_patches_top_level(self):
        config = _patched_config("estimator_shared", False, 4.0, 0)
        assert config.estimator_shared is False

    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError):
            _patched_config("warp_factor", 9, 4.0, 0)

    def test_patch_preserves_everything_else(self):
        config = _patched_config("bs_penalty", 10.0, 4.0, 0)
        assert config.qlearning.gamma == 0.95
        assert config.deployment.n_nodes == 100


class TestStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_sensitivity(
            axes=("gamma", "estimator_shared"), seeds=(0,)
        )

    def test_all_values_covered(self, rows):
        gammas = [r.value for r in rows if r.axis == "gamma"]
        assert gammas == list(SENSITIVITY_AXES["gamma"][0])

    def test_default_flagged_once_per_axis(self, rows):
        for axis in ("gamma", "estimator_shared"):
            defaults = [r for r in rows if r.axis == axis and r.is_default]
            assert len(defaults) == 1

    def test_metrics_in_range(self, rows):
        for r in rows:
            assert 0.0 <= r.pdr <= 1.0
            assert r.energy > 0.0
            assert 0.0 < r.balance <= 1.0

    def test_plateau_around_default(self, rows):
        """Robustness: no perturbation collapses QLEC (pdr stays within
        15 points of the default's on this scenario)."""
        default_pdr = next(
            r.pdr for r in rows if r.axis == "gamma" and r.is_default
        )
        for r in rows:
            assert r.pdr > default_pdr - 0.15

    def test_render(self, rows):
        text = render_sensitivity(rows)
        assert "sensitivity" in text
        assert "gamma" in text
