"""End-to-end shape tests: the qualitative claims of the paper's
evaluation must hold on the Table-2 scenario.

These are the "did we actually reproduce the paper" tests.  They run
the real 100-node scenario (3 seeds per point) so they are the slowest
tests in the suite — marked ``slow`` for optional deselection.
"""

import numpy as np
import pytest

from repro.analysis import sweep_protocols

pytestmark = pytest.mark.slow

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def congested():
    """lambda = 4 (busy but not saturated): the discriminating regime."""
    return sweep_protocols(
        protocols=("qlec", "fcm", "kmeans"),
        lambdas=(4.0,),
        seeds=SEEDS,
        serial=True,
    )


@pytest.fixture(scope="module")
def idle():
    return sweep_protocols(
        protocols=("qlec", "fcm", "kmeans"),
        lambdas=(16.0,),
        seeds=SEEDS,
        serial=True,
    )


class TestFig3aShape:
    def test_qlec_highest_pdr_under_congestion(self, congested):
        q = congested.aggregate("pdr", "qlec", 4.0)
        f = congested.aggregate("pdr", "fcm", 4.0)
        k = congested.aggregate("pdr", "kmeans", 4.0)
        assert q > f
        assert q > k

    def test_fcm_loses_over_ten_percent_when_congested(self, congested):
        """Paper §5.2: the FCM scheme "tends to discard more than 10%
        packets when the network is congested"."""
        assert congested.aggregate("pdr", "fcm", 4.0) < 0.9

    def test_qlec_near_perfect_when_idle(self, idle):
        assert idle.aggregate("pdr", "qlec", 16.0) > 0.95


class TestFig3bShape:
    def test_qlec_consumes_less_than_fcm(self, congested):
        """Paper: the hierarchical FCM network "consumes more energy to
        deliver packets" than QLEC."""
        assert congested.aggregate("energy_J", "qlec", 4.0) < congested.aggregate(
            "energy_J", "fcm", 4.0
        )

    def test_qlec_best_energy_per_delivered_packet(self, congested):
        def epp(protocol):
            rows = congested.filtered(protocol=protocol)
            return float(
                np.mean([r["energy_J"] / max(r["delivered"], 1) for r in rows])
            )

        assert epp("qlec") < epp("fcm")
        assert epp("qlec") < epp("kmeans")


class TestFig3cShape:
    def test_qlec_longest_lifespan(self, congested):
        q = congested.aggregate("lifespan", "qlec", 4.0)
        f = congested.aggregate("lifespan", "fcm", 4.0)
        k = congested.aggregate("lifespan", "kmeans", 4.0)
        assert q >= f
        assert q > k

    def test_kmeans_dies_first(self, congested):
        """The energy-blind geometric baseline burns its heads."""
        k = congested.aggregate("lifespan", "kmeans", 4.0)
        q = congested.aggregate("lifespan", "qlec", 4.0)
        assert k < 0.6 * q


class TestFig4Shape:
    def test_qlec_most_even_energy_balance(self, congested):
        q = congested.aggregate("balance_index", "qlec", 4.0)
        f = congested.aggregate("balance_index", "fcm", 4.0)
        k = congested.aggregate("balance_index", "kmeans", 4.0)
        assert q > f
        assert q > k


class TestLatencyClaim:
    def test_qlec_latency_not_worse_than_fcm(self, congested):
        """Abstract: QLEC outperforms on transmission latency (the
        multi-hop FCM hierarchy pays extra hops)."""
        assert congested.aggregate(
            "latency_slots", "qlec", 4.0
        ) <= congested.aggregate("latency_slots", "fcm", 4.0)
