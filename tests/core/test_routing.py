"""Tests for the Q-routing layer (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.rewards import RewardModel
from repro.core.routing import QRouter
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def make_router(**router_kwargs):
    config = make_config(n_nodes=20, n_clusters=3, seed=5)
    state = NetworkState(config)
    rewards = RewardModel(
        config.qlearning,
        state.radio,
        config.traffic.packet_bits,
        energy_scale=float(state.ledger.initial.mean()),
    )
    router = QRouter(state, rewards, config.qlearning, **router_kwargs)
    return state, router


HEADS = np.array([2, 7, 11])


class TestQValues:
    def test_action_set_is_heads_plus_bs(self):
        state, router = make_router()
        q, targets = router.q_values(0, HEADS)
        assert q.shape == (4,)
        assert list(targets) == [2, 7, 11, state.bs_index]

    def test_bs_action_heavily_penalised(self):
        _, router = make_router()
        q, targets = router.q_values(0, HEADS)
        assert q[-1] == min(q)
        assert q[-1] < q[:-1].min() - 50.0

    def test_evaluation_counter_tracks_k_plus_1(self):
        _, router = make_router()
        router.q_values(0, HEADS)
        router.q_values(1, HEADS)
        assert router.q_evaluations == 2 * (len(HEADS) + 1)

    def test_q_reflects_link_estimates(self):
        """Tanking the ACK estimate of one head must lower its Q."""
        state, router = make_router()
        q_before, _ = router.q_values(0, HEADS)
        for _ in range(30):
            state.link_estimator.update(0, 7, False)
        q_after, _ = router.q_values(0, HEADS)
        assert q_after[1] < q_before[1]


class TestChoose:
    def test_choose_returns_head_not_bs(self):
        state, router = make_router()
        choice = router.choose(0, HEADS)
        assert choice in set(HEADS.tolist())

    def test_choose_updates_v_to_max_q(self):
        _, router = make_router()
        q, _ = router.q_values(0, HEADS)
        router_fresh = router  # same state; V was not yet written for 0
        router_fresh.choose(0, HEADS)
        assert router_fresh.v[0] == pytest.approx(float(q.max()), rel=1e-9)

    def test_empty_heads_falls_back_to_bs(self):
        state, router = make_router()
        assert router.choose(0, np.array([], dtype=int)) == state.bs_index

    def test_v_update_counted(self):
        _, router = make_router()
        router.choose(0, HEADS)
        router.choose(1, HEADS)
        assert router.v.update_count == 2

    def test_sampled_td_moves_partially(self):
        _, router = make_router(learning_rate=0.5)
        q, _ = router.q_values(0, HEADS)
        router.choose(0, HEADS)
        assert router.v[0] == pytest.approx(0.5 * float(q.max()), rel=1e-6)

    def test_epsilon_explores(self):
        state, router = make_router(epsilon=1.0)
        rng = np.random.default_rng(0)
        picks = {router.choose(0, HEADS, rng=rng) for _ in range(60)}
        assert state.bs_index in picks  # pure exploration hits the BS too
        assert len(picks) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_router(epsilon=1.5)
        with pytest.raises(ValueError):
            make_router(learning_rate=0.0)


class TestCHBackup:
    def test_backup_writes_head_value(self):
        _, router = make_router()
        router.ch_backup(2)
        assert router.v[2] != 0.0
        assert router.v.update_count == 1

    def test_backup_contracts_to_fixed_point(self):
        """Iterating the head backup converges (gamma-contraction)."""
        _, router = make_router()
        prev = None
        for _ in range(500):
            router.ch_backup(2)
            cur = router.v[2]
            if prev is not None and abs(cur - prev) < 1e-12:
                break
            prev = cur
        else:
            pytest.fail("head backup did not converge")

    def test_compressed_bits_raise_head_value(self):
        """Pricing the uplink at compressed bits must give a head a
        better (or equal) value than full-size pricing would."""
        state, router = make_router()
        router.ch_backup(2)
        v_compressed = router.v[2]
        # Redo with a router whose compression ratio is 1 (no gain).
        config = state.config.replace(compression_ratio=0.999)
        state2 = NetworkState(config)
        rewards2 = RewardModel(
            config.qlearning, state2.radio, config.traffic.packet_bits,
            energy_scale=float(state2.ledger.initial.mean()),
        )
        router2 = QRouter(state2, rewards2, config.qlearning)
        router2.ch_backup(2)
        assert v_compressed >= router2.v[2]


class TestRelax:
    def test_relax_converges_and_counts(self):
        state, router = make_router()
        members = np.setdiff1d(np.arange(state.n), HEADS)
        sweeps = router.relax(members, HEADS)
        assert 1 <= sweeps < router.cfg.max_backups
        assert router.v.update_count == sweeps * members.size

    def test_relax_fixed_point_stable(self):
        state, router = make_router()
        members = np.setdiff1d(np.arange(state.n), HEADS)
        router.relax(members, HEADS)
        v_before = router.v.values.copy()
        router.relax(members, HEADS)
        np.testing.assert_allclose(router.v.values, v_before, atol=1e-5)

    def test_relax_empty_inputs(self):
        _, router = make_router()
        assert router.relax(np.array([], dtype=int), HEADS) == 0
        assert router.relax(np.array([0]), np.array([], dtype=int)) == 0
