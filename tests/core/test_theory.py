"""Tests for the paper's analytic results (Eq. 5, Lemma 1, Theorem 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RadioConfig
from repro.core.theory import (
    cluster_radius,
    expected_sq_distance_to_ch,
    mean_distance_to_point,
    optimal_cluster_count,
    optimal_cluster_count_int,
    round_energy,
    round_energy_curve,
)


class TestClusterRadius:
    def test_eq5_value(self):
        # d_c = cbrt(3 / (4 pi k)) * M
        assert cluster_radius(5, 200.0) == pytest.approx(
            (3.0 / (4.0 * math.pi * 5)) ** (1 / 3) * 200.0
        )

    def test_k_balls_match_cube_volume(self):
        """Defining property of Eq. (5): k * (4/3) pi d_c^3 == M^3."""
        k, side = 7, 150.0
        d_c = cluster_radius(k, side)
        assert k * (4.0 / 3.0) * math.pi * d_c ** 3 == pytest.approx(side ** 3)

    def test_radius_shrinks_with_k(self):
        assert cluster_radius(10, 100.0) < cluster_radius(2, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_radius(0, 100.0)
        with pytest.raises(ValueError):
            cluster_radius(1, -1.0)


class TestLemma1:
    def test_closed_form_equals_ball_second_moment(self):
        """E{d^2} over a uniform ball of radius d_c is (3/5) d_c^2;
        Lemma 1's constant folds Eq. (5) into that."""
        k, side = 5, 200.0
        d_c = cluster_radius(k, side)
        assert expected_sq_distance_to_ch(k, side) == pytest.approx(
            0.6 * d_c ** 2
        )

    def test_monte_carlo_agreement(self):
        k, side = 4, 120.0
        d_c = cluster_radius(k, side)
        rng = np.random.default_rng(0)
        r = d_c * rng.random(200_000) ** (1 / 3)
        assert expected_sq_distance_to_ch(k, side) == pytest.approx(
            float((r ** 2).mean()), rel=0.01
        )

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_decreases_with_k(self, k):
        side = 100.0
        assert expected_sq_distance_to_ch(k + 1, side) < expected_sq_distance_to_ch(
            k, side
        )


class TestTheorem1:
    def test_closed_form_is_argmin_of_eq6(self):
        """The optimisation claim itself, checked numerically."""
        n, side, bits = 100, 200.0, 4000.0
        d_bs = 96.0
        k_cf = optimal_cluster_count(n, side, d_bs)
        ks = np.arange(1, 40)
        curve = round_energy_curve(bits, n, ks, side, d_bs)
        k_num = int(ks[np.argmin(curve)])
        assert abs(k_cf - k_num) <= 1.0

    @given(
        st.integers(min_value=20, max_value=600),
        st.floats(min_value=50.0, max_value=500.0),
        st.floats(min_value=30.0, max_value=400.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_argmin_property_random_instances(self, n, side, d_bs):
        k_cf = optimal_cluster_count(n, side, d_bs)
        if not 1.5 <= k_cf <= 80:  # keep the numeric scan tractable
            return
        ks = np.arange(1, min(int(2 * k_cf) + 10, n) + 1)
        curve = round_energy_curve(4000.0, n, ks, side, d_bs)
        k_num = int(ks[np.argmin(curve)])
        # The scan is clamped to k <= n, so compare against the
        # feasible-range projection of the continuous argmin.
        assert abs(min(k_cf, float(n)) - k_num) <= 1.0

    def test_table2_instance_is_about_11(self):
        """With Table 2's constants and a centred BS the closed form
        gives ~11 (the paper quotes ~5; see EXPERIMENTS.md)."""
        d_bs = mean_distance_to_point(200.0, (100.0, 100.0, 100.0),
                                      n_samples=100_000, rng=0)
        k = optimal_cluster_count(100, 200.0, d_bs)
        assert 10.0 < k < 13.0

    def test_int_version_clamps(self):
        assert optimal_cluster_count_int(3, 200.0, 1e-3) == 3  # huge k clamps to N
        assert optimal_cluster_count_int(100, 1e-3, 1e6) == 1  # tiny k clamps to 1

    def test_scaling_with_eps_ratio(self):
        """k_opt ~ (eps_fs / eps_mp)^(3/5) at fixed d_toBS."""
        base = RadioConfig()
        boosted = RadioConfig(eps_fs=base.eps_fs * 2)
        k1 = optimal_cluster_count(100, 200.0, 96.0, base)
        k2 = optimal_cluster_count(100, 200.0, 96.0, boosted)
        assert k2 / k1 == pytest.approx(2 ** 0.6, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_cluster_count(0, 200.0, 96.0)
        with pytest.raises(ValueError):
            optimal_cluster_count(10, 200.0, 0.0)


class TestRoundEnergy:
    def test_positive_and_finite(self):
        e = round_energy(4000.0, 100, 5, 200.0, 96.0)
        assert 0.0 < e < 1.0

    def test_curve_matches_scalar(self):
        ks = np.array([1, 5, 9])
        curve = round_energy_curve(4000.0, 100, ks, 200.0, 96.0)
        scal = [round_energy(4000.0, 100, int(k), 200.0, 96.0) for k in ks]
        np.testing.assert_allclose(curve, scal)

    def test_curve_rejects_bad_k(self):
        with pytest.raises(ValueError):
            round_energy_curve(4000.0, 100, np.array([0, 1]), 200.0, 96.0)


class TestMeanDistance:
    def test_centre_of_unit_cube(self):
        """Known constant: E||U - centre|| ~= 0.4803 for the unit cube."""
        d = mean_distance_to_point(1.0, (0.5, 0.5, 0.5), n_samples=300_000, rng=1)
        assert d == pytest.approx(0.4803, abs=0.005)

    def test_scales_linearly_with_side(self):
        d1 = mean_distance_to_point(1.0, (0.5, 0.5, 0.5), n_samples=100_000, rng=2)
        d2 = mean_distance_to_point(10.0, (5.0, 5.0, 5.0), n_samples=100_000, rng=2)
        assert d2 == pytest.approx(10 * d1, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_distance_to_point(0.0, (0, 0, 0))
        with pytest.raises(ValueError):
            mean_distance_to_point(1.0, (0, 0, 0), n_samples=0)
