"""Tests for the assembled QLEC protocol (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import QLECProtocol, SelectionConfig
from repro.core.theory import optimal_cluster_count_int
from repro.simulation.engine import SimulationEngine
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestResolveK:
    def test_explicit_argument_wins(self):
        state = NetworkState(make_config(n_clusters=3))
        assert QLECProtocol(n_clusters=7).resolve_k(state) == 7

    def test_config_value_next(self):
        state = NetworkState(make_config(n_clusters=3))
        assert QLECProtocol().resolve_k(state) == 3

    def test_theorem1_fallback(self):
        config = make_config(n_clusters=3).replace(n_clusters=None)
        state = NetworkState(config)
        expected = optimal_cluster_count_int(
            state.n, config.deployment.side, state.topology.mean_d_to_bs,
            config.radio,
        )
        assert QLECProtocol().resolve_k(state) == expected


class TestProtocolLifecycle:
    def test_requires_prepare(self):
        state = NetworkState(make_config())
        with pytest.raises(AssertionError):
            QLECProtocol().select_cluster_heads(state)

    def test_prepare_builds_components(self):
        state = NetworkState(make_config())
        proto = QLECProtocol()
        proto.prepare(state)
        assert proto.selector is not None
        assert proto.router is not None
        assert proto.k == 3

    def test_select_returns_k_heads(self):
        state = NetworkState(make_config())
        proto = QLECProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert heads.size == 3

    def test_choose_relay_prefers_heads_over_bs(self):
        state = NetworkState(make_config())
        proto = QLECProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        members = np.setdiff1d(np.arange(state.n), heads)
        qlens = np.zeros(heads.size, dtype=int)
        for node in members[:10]:
            relay = proto.choose_relay(state, int(node), heads, qlens)
            assert relay != state.bs_index

    def test_round_end_updates_head_values(self):
        state = NetworkState(make_config())
        proto = QLECProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        before = proto.v_update_count
        proto.on_round_end(state, heads)
        assert proto.v_update_count == before + heads.size

    def test_v_update_count_zero_before_prepare(self):
        assert QLECProtocol().v_update_count == 0


class TestFullRun:
    def test_engine_run_is_sane(self):
        result = SimulationEngine(make_config(seed=2), QLECProtocol()).run()
        assert result.protocol == "qlec"
        assert 0.0 <= result.delivery_rate <= 1.0
        assert result.total_energy > 0.0
        assert result.v_update_total > 0

    def test_selection_flags_propagate(self):
        config = make_config(seed=2)
        proto = QLECProtocol(
            selection=SelectionConfig(use_redundancy_reduction=False)
        )
        result = SimulationEngine(config, proto).run()
        assert result.packets.generated > 0

    def test_sampled_variant_runs(self):
        result = SimulationEngine(
            make_config(seed=2), QLECProtocol(learning_rate=0.3)
        ).run()
        assert 0.0 <= result.delivery_rate <= 1.0

    def test_avoids_direct_bs_traffic(self):
        """With heads available, the Eq. (19) penalty keeps member
        packets off the BS: direct deliveries happen only via 1-hop
        fallbacks which greedy QLEC never takes."""
        config = make_config(seed=3, mean_interarrival=8.0)
        engine = SimulationEngine(config, QLECProtocol())
        result = engine.run()
        # Every delivered packet took >= 2 hops (member->head->BS).
        assert result.packets.mean_hops >= 1.9
