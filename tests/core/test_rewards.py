"""Tests for the QLEC reward model (Eqs. 16-20), checked against the
formulas expanded by hand."""

import numpy as np
import pytest

from repro.config import QLearningConfig, RadioConfig
from repro.core.rewards import RewardModel
from repro.energy.radio import FirstOrderRadio

BITS = 4000


def make_model(**qkwargs):
    q = QLearningConfig(energy_scale=1.0, cost_scale=1.0, **qkwargs)
    return RewardModel(q, FirstOrderRadio(RadioConfig()), BITS)


class TestNormalisation:
    def test_x_divides_by_energy_scale(self):
        q = QLearningConfig(energy_scale=2.0)
        m = RewardModel(q, FirstOrderRadio(), BITS)
        assert m.x(1.0) == pytest.approx(0.5)

    def test_auto_energy_scale_from_network(self):
        q = QLearningConfig()  # energy_scale None -> use constructor arg
        m = RewardModel(q, FirstOrderRadio(), BITS, energy_scale=4.0)
        assert m.x(2.0) == pytest.approx(0.5)

    def test_y_is_amp_over_cost_ref(self):
        q = QLearningConfig(cost_scale=1.0)
        radio = FirstOrderRadio()
        m = RewardModel(q, radio, BITS)
        assert m.y(50.0) == pytest.approx(radio.amp(BITS, 50.0))

    def test_default_cost_scale_normalises_knee(self):
        q = QLearningConfig()  # cost_scale None -> amp at 1.5 d0
        radio = FirstOrderRadio()
        m = RewardModel(q, radio, BITS)
        assert m.y(1.5 * radio.d0) == pytest.approx(1.0)

    def test_bits_override(self):
        m = make_model()
        assert m.y(100.0, bits=BITS / 2) == pytest.approx(m.y(100.0) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardModel(QLearningConfig(), FirstOrderRadio(), 0)
        with pytest.raises(ValueError):
            RewardModel(QLearningConfig(energy_scale=-1.0), FirstOrderRadio(), BITS)


class TestEq17SuccessReward:
    def test_hand_expanded(self):
        m = make_model(g=0.2, alpha1=0.5, alpha2=2.0)
        d = 30.0
        y = float(m.y(d))
        expected = -0.2 + 0.5 * (1.0 + 2.0) - 2.0 * y
        assert m.success_reward(1.0, 2.0, d) == pytest.approx(expected)

    def test_eq19_bs_penalty(self):
        m = make_model(bs_penalty=50.0)
        d = 30.0
        base = float(m.success_reward(1.0, 0.0, d))
        with_bs = float(
            m.success_reward(1.0, 0.0, d, is_bs=np.array([True]))[0]
        )
        assert with_bs == pytest.approx(base - 50.0)

    def test_vectorized_over_targets(self):
        m = make_model()
        r = m.success_reward(1.0, np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        assert r.shape == (2,)
        assert r[0] != r[1]

    def test_prefers_high_energy_heads(self):
        m = make_model()
        r = m.success_reward(1.0, np.array([0.5, 2.0]), np.array([30.0, 30.0]))
        assert r[1] > r[0]

    def test_prefers_near_heads(self):
        m = make_model()
        r = m.success_reward(1.0, np.array([1.0, 1.0]), np.array([10.0, 150.0]))
        assert r[0] > r[1]


class TestEq20FailureReward:
    def test_hand_expanded(self):
        m = make_model(g=0.2, beta1=0.3, beta2=1.5)
        d = 40.0
        expected = -0.2 + 0.3 * 1.0 - 1.5 * float(m.y(d))
        assert m.failure_reward(1.0, d) == pytest.approx(expected)

    def test_failure_below_success_for_default_weights(self):
        """Losing the packet must never beat delivering it (given a
        live destination with any energy)."""
        m = make_model()
        d = 60.0
        assert float(m.failure_reward(1.0, d)) < float(
            m.success_reward(1.0, 1.0, d)
        )


class TestEq16ExpectedReward:
    def test_is_convex_combination(self):
        m = make_model()
        d, e_src, e_dst = 50.0, 1.0, 2.0
        r_s = float(m.success_reward(e_src, e_dst, d))
        r_f = float(m.failure_reward(e_src, d))
        for p in (0.0, 0.3, 1.0):
            expected = p * r_s + (1 - p) * r_f
            assert m.expected_reward(p, e_src, e_dst, d) == pytest.approx(expected)

    def test_monotone_in_p(self):
        m = make_model()
        r_lo = float(m.expected_reward(0.2, 1.0, 1.0, 50.0))
        r_hi = float(m.expected_reward(0.9, 1.0, 1.0, 50.0))
        assert r_hi > r_lo

    def test_rejects_invalid_probability(self):
        m = make_model()
        with pytest.raises(ValueError):
            m.expected_reward(1.5, 1.0, 1.0, 50.0)
