"""Tests for improved-DEEC cluster-head selection (Algorithms 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    ImprovedDEECSelector,
    SelectionConfig,
    energy_threshold,
    rotation_threshold,
)
from repro.core.theory import cluster_radius
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestEnergyThreshold:
    def test_eq4_values(self):
        init = np.array([1.0, 2.0])
        # r = R/2 -> factor 1 - 1/4 = 0.75
        np.testing.assert_allclose(energy_threshold(10, 20, init), [0.75, 1.5])

    def test_full_at_round_zero(self):
        np.testing.assert_allclose(energy_threshold(0, 20, np.array([1.0])), [1.0])

    def test_zero_at_final_round(self):
        np.testing.assert_allclose(energy_threshold(20, 20, np.array([1.0])), [0.0])

    def test_clamps_past_horizon(self):
        assert energy_threshold(50, 20, np.array([1.0]))[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_threshold(1, 0, np.array([1.0]))
        with pytest.raises(ValueError):
            energy_threshold(-1, 10, np.array([1.0]))


class TestRotationThreshold:
    def test_eq3_at_phase_zero(self):
        """r mod (1/p) == 0 -> T = p."""
        p = np.array([0.1])
        assert rotation_threshold(p, 0)[0] == pytest.approx(0.1)

    def test_grows_within_epoch(self):
        p = np.array([0.1])
        t_early = rotation_threshold(p, 1)[0]
        t_late = rotation_threshold(p, 9)[0]
        assert t_late > t_early > 0.1

    def test_certain_at_epoch_end(self):
        """Late in the window the threshold saturates at 1."""
        p = np.array([0.5])
        assert rotation_threshold(p, 1)[0] == pytest.approx(1.0)

    @given(
        st.floats(min_value=1e-3, max_value=0.999),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_a_probability(self, p, r):
        t = rotation_threshold(np.array([p]), r)[0]
        assert 0.0 <= t <= 1.0

    def test_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            rotation_threshold(np.array([0.0]), 0)
        with pytest.raises(ValueError):
            rotation_threshold(np.array([1.5]), 0)


def fresh_state(**kwargs) -> NetworkState:
    return NetworkState(make_config(n_nodes=40, n_clusters=4, **kwargs))


class TestImprovedDEECSelector:
    def test_selects_alive_unique_heads(self):
        state = fresh_state()
        sel = ImprovedDEECSelector(4)
        result = sel.select(state)
        assert result.k >= 1
        assert len(np.unique(result.heads)) == result.k
        assert state.ledger.alive[result.heads].all()

    def test_promotion_tops_up_to_k(self):
        """Round 0: residual == threshold, so the random draw plus
        promotion must still produce exactly k heads."""
        state = fresh_state()
        sel = ImprovedDEECSelector(4)
        assert sel.select(state).k == 4

    def test_redundancy_reduction_enforces_spacing(self):
        state = fresh_state()
        sel = ImprovedDEECSelector(4)
        heads = sel.select(state).heads
        d_c = cluster_radius(4, state.config.deployment.side)
        pos = state.nodes.positions[heads]
        for i in range(len(heads)):
            for j in range(i + 1, len(heads)):
                assert np.linalg.norm(pos[i] - pos[j]) > d_c

    def test_no_spacing_without_reduction(self):
        state = fresh_state()
        cfg = SelectionConfig(use_redundancy_reduction=False)
        sel = ImprovedDEECSelector(4, cfg)
        result = sel.select(state)
        assert result.suppressed.size == 0

    def test_dead_nodes_never_selected(self):
        state = fresh_state()
        state.ledger.discharge(np.arange(20), 10.0, "tx")  # kill half
        sel = ImprovedDEECSelector(4)
        heads = sel.select(state).heads
        assert np.all(heads >= 20)

    def test_energy_threshold_excludes_drained_nodes(self):
        state = fresh_state()
        state.round_index = 1
        # Drain node 0 well below the Eq. (4) threshold at r=1.
        state.ledger.discharge(0, 0.15, "tx")
        sel = ImprovedDEECSelector(
            4, SelectionConfig(use_rotation=False, fallback_promotion=False)
        )
        p = sel._probabilities(state)
        eligible = sel._eligibility(state, p)
        assert not eligible[0]

    def test_rotation_blocks_recent_heads(self):
        state = fresh_state()
        state.last_ch_round[:] = 0  # everyone just served
        state.round_index = 1
        sel = ImprovedDEECSelector(
            4,
            SelectionConfig(use_energy_threshold=False, fallback_promotion=False),
        )
        p = sel._probabilities(state)
        assert not sel._eligibility(state, p).any()

    def test_measured_energy_estimate_keeps_expected_k(self):
        """With measured E_bar, sum(p_i) == k (the telescoping claim)."""
        state = fresh_state()
        sel = ImprovedDEECSelector(4, SelectionConfig(energy_estimate="measured"))
        p = sel._probabilities(state)
        assert p.sum() == pytest.approx(4.0, rel=1e-6)

    def test_linear_estimate_uses_eq2(self):
        state = fresh_state()
        state.round_index = 0
        sel = ImprovedDEECSelector(4, SelectionConfig(energy_estimate="linear"))
        p = sel._probabilities(state)
        # At r=0 Eq. (2) equals the true average, so sums to k as well.
        assert p.sum() == pytest.approx(4.0, rel=1e-6)

    def test_hello_charging_spends_energy(self):
        state = fresh_state()
        before = state.ledger.total_residual
        sel = ImprovedDEECSelector(
            4, SelectionConfig(charge_control_traffic=True)
        )
        sel.select(state)
        assert state.ledger.total_residual < before

    def test_no_hello_charge_by_default(self):
        state = fresh_state()
        before = state.ledger.total_residual
        ImprovedDEECSelector(4).select(state)
        assert state.ledger.total_residual == before

    def test_selector_validation(self):
        with pytest.raises(ValueError):
            ImprovedDEECSelector(0)
        with pytest.raises(ValueError):
            SelectionConfig(energy_estimate="bogus")
        with pytest.raises(ValueError):
            SelectionConfig(hello_bits=0)

    def test_all_dead_network_yields_no_heads(self):
        state = fresh_state()
        state.ledger.discharge(np.arange(state.n), 10.0, "tx")
        result = ImprovedDEECSelector(4).select(state)
        assert result.k == 0

    def test_heads_rotate_across_rounds(self):
        """Energy-aware rotation: over several rounds with drain, the
        union of heads is much larger than k."""
        state = fresh_state()
        sel = ImprovedDEECSelector(4)
        seen = set()
        for r in range(6):
            state.round_index = r
            result = sel.select(state)
            seen.update(int(h) for h in result.heads)
            state.mark_cluster_heads(result.heads)
            # Heads pay a visible cost so the next election avoids them.
            state.ledger.discharge(result.heads, 0.02, "tx")
        assert len(seen) >= 10
