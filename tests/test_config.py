"""Tests for repro.config: validation, Table-2 values, derived quantities."""

import dataclasses
import math

import pytest

from repro.config import (
    DeploymentConfig,
    QLearningConfig,
    QueueConfig,
    RadioConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
)


class TestRadioConfig:
    def test_defaults_match_table2(self):
        r = RadioConfig()
        assert r.eps_fs == pytest.approx(10e-12)
        assert r.eps_mp == pytest.approx(0.0013e-12)

    def test_d0_formula(self):
        r = RadioConfig()
        assert r.d0 == pytest.approx(math.sqrt(10.0 / 0.0013))

    def test_d0_scales_with_constants(self):
        r = RadioConfig(eps_fs=4e-12, eps_mp=1e-12)
        assert r.d0 == pytest.approx(2.0)

    @pytest.mark.parametrize("field", ["e_elec", "e_da", "eps_fs", "eps_mp"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            RadioConfig(**{field: 0.0})


class TestQLearningConfig:
    def test_table2_weights(self):
        q = QLearningConfig()
        assert (q.alpha1, q.alpha2, q.beta1, q.beta2) == (0.05, 1.05, 0.05, 1.05)
        assert q.gamma == 0.95

    def test_gamma_bounds(self):
        with pytest.raises(ValueError):
            QLearningConfig(gamma=1.5)
        with pytest.raises(ValueError):
            QLearningConfig(gamma=-0.1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QLearningConfig(alpha1=-0.1)

    def test_tol_positive(self):
        with pytest.raises(ValueError):
            QLearningConfig(tol=0.0)


class TestTrafficConfig:
    def test_rate_is_reciprocal_of_lambda(self):
        t = TrafficConfig(mean_interarrival=8.0)
        assert t.rate_per_slot == pytest.approx(0.125)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            TrafficConfig(mean_interarrival=0.0)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            TrafficConfig(slots_per_round=0)


class TestDeploymentConfig:
    def test_bs_defaults_to_cube_centre(self):
        d = DeploymentConfig(side=100.0)
        assert d.bs == (50.0, 50.0, 50.0)

    def test_explicit_bs_position(self):
        d = DeploymentConfig(bs_position=(1.0, 2.0, 3.0))
        assert d.bs == (1.0, 2.0, 3.0)

    def test_death_line_must_be_below_initial(self):
        with pytest.raises(ValueError):
            DeploymentConfig(initial_energy=1.0, death_line=1.0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            DeploymentConfig(n_nodes=0)


class TestQueueConfig:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            QueueConfig(capacity=-1)

    def test_rejects_zero_service(self):
        with pytest.raises(ValueError):
            QueueConfig(service_rate=0)

    def test_rejects_negative_bs_capacity(self):
        with pytest.raises(ValueError):
            QueueConfig(bs_capacity_per_slot=-1)


class TestSimulationConfig:
    def test_compression_ratio_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(compression_ratio=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(compression_ratio=1.5)

    def test_replace_returns_modified_copy(self):
        c = SimulationConfig(rounds=10)
        c2 = c.replace(rounds=33)
        assert c.rounds == 10 and c2.rounds == 33

    def test_estimator_alpha_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(estimator_alpha=0.0)

    def test_max_retries_nonnegative(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_retries=-1)

    def test_frozen(self):
        c = SimulationConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            c.rounds = 5

    def test_backend_default_is_auto(self):
        assert SimulationConfig().backend == "auto"

    def test_backend_rejects_non_string(self):
        with pytest.raises(ValueError):
            SimulationConfig(backend="")
        with pytest.raises(ValueError):
            SimulationConfig(backend=None)  # type: ignore[arg-type]

    def test_backend_is_part_of_fingerprint(self):
        from repro.telemetry import config_fingerprint

        a = SimulationConfig(backend="numpy")
        b = SimulationConfig(backend="numba")
        assert config_fingerprint(a) != config_fingerprint(b)


class TestPaperConfig:
    def test_headline_values(self):
        c = paper_config()
        assert c.deployment.n_nodes == 100
        assert c.deployment.side == 200.0
        assert c.n_clusters == 5
        assert c.rounds == 20
        assert c.compression_ratio == 0.5
        assert c.qlearning.gamma == 0.95

    def test_lambda_passthrough(self):
        assert paper_config(mean_interarrival=2.5).traffic.mean_interarrival == 2.5

    def test_literal_table2_energy_accepted(self):
        assert paper_config(initial_energy=5.0).deployment.initial_energy == 5.0
