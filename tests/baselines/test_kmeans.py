"""Tests for the from-scratch k-means and its protocol wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kmeans import (
    KMeansProtocol,
    kmeans,
    kmeans_plus_plus_init,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def blob_data(rng, centres=((0, 0, 0), (50, 50, 50), (0, 50, 0)), per=20):
    pts = np.concatenate(
        [rng.normal(c, 1.0, size=(per, 3)) for c in centres]
    )
    return pts


class TestKMeansPlusPlus:
    def test_returns_k_centroids_from_data(self):
        rng = np.random.default_rng(0)
        pts = blob_data(rng)
        cents = kmeans_plus_plus_init(pts, 3, rng)
        assert cents.shape == (3, 3)
        # Each centroid is an actual data point.
        for c in cents:
            assert np.any(np.all(np.isclose(pts, c), axis=1))

    def test_spreads_across_blobs(self):
        rng = np.random.default_rng(1)
        pts = blob_data(rng)
        cents = kmeans_plus_plus_init(pts, 3, rng)
        d = np.linalg.norm(cents[:, None] - cents[None, :], axis=2)
        assert d[np.triu_indices(3, 1)].min() > 10.0

    def test_duplicate_points_handled(self):
        pts = np.zeros((5, 3))
        cents = kmeans_plus_plus_init(pts, 3, np.random.default_rng(0))
        assert cents.shape == (3, 3)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((2, 3)), 3, np.random.default_rng(0))


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(2)
        pts = blob_data(rng)
        result = kmeans(pts, 3, rng=3)
        assert result.converged
        # Each blob maps to exactly one label.
        labels = [set(result.labels[i * 20:(i + 1) * 20].tolist()) for i in range(3)]
        assert all(len(ls) == 1 for ls in labels)
        assert len(set.union(*labels)) == 3

    def test_k1_centroid_is_mean(self):
        rng = np.random.default_rng(3)
        pts = rng.random((30, 3))
        result = kmeans(pts, 1, rng=0)
        np.testing.assert_allclose(result.centroids[0], pts.mean(axis=0), atol=1e-9)

    def test_k_equals_n(self):
        rng = np.random.default_rng(4)
        pts = rng.random((6, 3)) * 100
        result = kmeans(pts, 6, rng=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_explicit_init_respected(self):
        pts = np.array([[0.0, 0, 0], [1.0, 0, 0], [10.0, 0, 0], [11.0, 0, 0]])
        init = np.array([[0.5, 0, 0], [10.5, 0, 0]])
        result = kmeans(pts, 2, init=init)
        assert result.converged
        assert set(result.labels[:2].tolist()) != set(result.labels[2:].tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3)), 1)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 3)), 2, max_iter=0)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 3)), 2, init=np.zeros((3, 3)))

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_inertia_bounded_by_total_variance(self, seed, k):
        """Property: inertia <= sum of squared deviations from the
        global mean (k=1 solution)."""
        rng = np.random.default_rng(seed)
        pts = rng.random((25, 3)) * 10
        result = kmeans(pts, k, rng=seed)
        total = float(((pts - pts.mean(axis=0)) ** 2).sum())
        assert result.inertia <= total + 1e-6

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        pts = rng.random((40, 3))
        a = kmeans(pts, 4, rng=9)
        b = kmeans(pts, 4, rng=9)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestKMeansProtocol:
    def test_static_mode_keeps_heads(self):
        state = NetworkState(make_config(seed=1))
        proto = KMeansProtocol()  # static
        proto.prepare(state)
        heads0 = proto.select_cluster_heads(state)
        state.round_index = 1
        heads1 = proto.select_cluster_heads(state)
        np.testing.assert_array_equal(heads0, heads1)

    def test_adaptive_mode_reclusters_over_alive(self):
        state = NetworkState(make_config(seed=1))
        proto = KMeansProtocol(recluster_every=1)
        proto.prepare(state)
        heads0 = proto.select_cluster_heads(state)
        state.ledger.discharge(heads0, 10.0, "tx")  # kill all heads
        state.round_index = 1
        heads1 = proto.select_cluster_heads(state)
        assert not np.intersect1d(heads0, heads1).size

    def test_member_joins_home_head(self):
        state = NetworkState(make_config(seed=1))
        proto = KMeansProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        node = int(np.setdiff1d(np.arange(state.n), heads)[0])
        relay = proto.choose_relay(state, node, heads, np.zeros(heads.size))
        assert relay == int(proto._home_head[node])

    def test_stranded_member_goes_direct(self):
        state = NetworkState(make_config(seed=1))
        proto = KMeansProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        node = int(np.setdiff1d(np.arange(state.n), heads)[0])
        home = int(proto._home_head[node])
        state.ledger.discharge(home, 10.0, "tx")  # kill the home head
        relay = proto.choose_relay(state, node, heads, np.zeros(heads.size))
        assert relay == state.bs_index

    def test_full_simulation_runs(self):
        result = SimulationEngine(make_config(seed=4), KMeansProtocol()).run()
        assert 0.0 <= result.delivery_rate <= 1.0

    def test_rejects_bad_recluster(self):
        with pytest.raises(ValueError):
            KMeansProtocol(recluster_every=0)
